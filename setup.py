"""Shim for legacy editable installs (offline host lacks the wheel package).

Packaging is pinned explicitly so runtime artifacts can never ride
along into a distribution: the train-on-first-use model checkpoints
(``repro/models/_cache/``) and the memoized scenario results
(``repro/eval/_cache/``) live *inside* package directories, and
namespace-package auto-discovery with default package data would
happily ship gigabytes of a developer's local cache.  Both are
.gitignored; this keeps them out of wheels/sdists too.

Set ``REPRO_KERNEL_COMPILE=1`` to mypyc-compile the kernel engine
(``repro/netsim/kernel.py``) during the build.  The flag is opt-in and
soft: without mypyc installed (this offline host), or without the flag,
the same module installs as pure Python and runs identically -- the
compiled build is a CI/perf concern, never a correctness one
(``KERNEL_COMPILED`` reports which build is live).
"""
import os

from setuptools import find_namespace_packages, setup

ext_modules = []
if os.environ.get("REPRO_KERNEL_COMPILE") == "1":
    try:
        from mypyc.build import mypycify
    except ImportError:
        print("REPRO_KERNEL_COMPILE=1 set but mypyc is not installed; "
              "building the pure-Python kernel instead")
    else:
        ext_modules = mypycify(
            ["src/repro/netsim/kernel.py"],
            opt_level="3",
            multi_file=False,
        )

setup(
    package_dir={"": "src"},
    packages=find_namespace_packages(
        "src", exclude=["*._cache", "*._cache.*"]),
    include_package_data=False,
    exclude_package_data={"": ["_cache/*", "_cache/**", "*.json"]},
    ext_modules=ext_modules,
)
