"""Shim for legacy editable installs (offline host lacks the wheel package)."""
from setuptools import setup

setup()
