"""Shim for legacy editable installs (offline host lacks the wheel package).

Packaging is pinned explicitly so runtime artifacts can never ride
along into a distribution: the train-on-first-use model checkpoints
(``repro/models/_cache/``) and the memoized scenario results
(``repro/eval/_cache/``) live *inside* package directories, and
namespace-package auto-discovery with default package data would
happily ship gigabytes of a developer's local cache.  Both are
.gitignored; this keeps them out of wheels/sdists too.
"""
from setuptools import find_namespace_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_namespace_packages(
        "src", exclude=["*._cache", "*._cache.*"]),
    include_package_data=False,
    exclude_package_data={"": ["_cache/*", "_cache/**", "*.json"]},
)
