"""Multi-link topologies: named links, per-flow paths, and builders.

The paper evaluates on single-bottleneck dumbbells, but online
adaptation is most stressed by paths with *several* queues (DeepCC's
multi-hop contention, the "parking lot" of the multi-path CC
literature).  This module generalises the simulation substrate from
"all flows share one link list" to a declarative topology:

* :class:`Topology` -- live named :class:`~repro.netsim.link.Link`
  objects plus named paths (ordered link subsets with a return delay);
  :class:`~repro.netsim.network.Simulation` consumes it directly, so
  different flows traverse different link subsets with per-flow base
  RTTs.
* :class:`LinkDef` / :class:`PathDef` / :class:`TopologySpec` -- the
  picklable, fingerprintable description scenario grids carry; a spec
  ``build()``s a fresh live topology per run (deterministic given the
  seed).
* :func:`dumbbell`, :func:`chain`, :func:`parking_lot`,
  :func:`dumbbell_asymmetric` -- builders for the standard shapes: one
  bottleneck, N bottlenecks in series, N bottlenecks in series with
  single-hop cross traffic, and a dumbbell whose reverse direction is
  its own (typically slower) queued link.

Every path carries an ordered *reverse* link list that acks and loss
notices physically transit hop by hop (see
:meth:`repro.netsim.network.Simulation._advance_packet`, the unified
per-hop scheduler for both directions).  Paths that do not wire one
get a :class:`~repro.netsim.link.PropagationLink` pseudo-link
reproducing the legacy scalar ``return_delay`` timing bit-for-bit;
wiring real links instead makes ack-path queueing, ack compression,
ack *loss*, and asymmetric satellite/cable routes emergent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.netsim.faults import FaultProcess, coerce_faults
from repro.netsim.link import Link, PropagationLink
from repro.netsim.rngstreams import stream_rng
from repro.netsim.traces import ConstantTrace, make_trace, mbps_to_pps

__all__ = ["Path", "Topology", "LinkDef", "PathDef", "TopologySpec",
           "dumbbell", "chain", "parking_lot", "dumbbell_asymmetric"]

#: Queue floor when sizing buffers from a BDP multiple (shared with
#: :meth:`repro.eval.runner.EvalNetwork.queue_size`, which must size
#: identically for the dumbbell-vs-single-link parity guarantee).
MIN_QUEUE_PACKETS = 4


@dataclass(frozen=True)
class Path:
    """A resolved forward route plus the resolved reverse route.

    ``reverse_links`` is never empty: paths without explicit reverse
    wiring carry a single pure-propagation
    :class:`~repro.netsim.link.PropagationLink` whose delay is the
    legacy ``return_delay``.  ``reverse_link_names`` is empty exactly
    in that pseudo-link case.
    """

    name: str
    link_names: tuple
    links: tuple
    #: One-way propagation delay of the ack path, seconds (sum of the
    #: reverse links' propagation delays).
    return_delay: float
    reverse_link_names: tuple = ()
    reverse_links: tuple = ()
    #: Wire size of this path's acknowledgements, bytes; ``None``
    #: falls back to the engine-wide
    #: :data:`repro.netsim.network.ACK_BYTES`.
    ack_bytes: int | None = None

    @property
    def forward_delay(self) -> float:
        return sum(link.delay for link in self.links)

    @property
    def base_rtt(self) -> float:
        """Round-trip propagation time (no queueing) along this path."""
        return self.forward_delay + self.return_delay


class Topology:
    """Named links and the named paths flows take across them.

    Parameters
    ----------
    links:
        Mapping of link name to :class:`Link` (insertion order is the
        canonical link order).
    paths:
        Mapping of path name to an ordered sequence of link names.
    default_path:
        Path used by flows that do not name one; defaults to the first
        path.
    return_delays:
        Optional per-path return propagation delay in seconds
        (asymmetric routes without reverse queueing).  Paths not listed
        are symmetric: the return delay equals the forward propagation
        delay.
    reverse_paths:
        Optional mapping of path name to an ordered sequence of link
        names the path's acks and loss notices traverse.  Listed paths
        get real reverse-direction queueing (their return delay is the
        reverse links' propagation sum); unlisted paths keep a
        pure-propagation pseudo-link.  A path cannot appear in both
        ``return_delays`` and ``reverse_paths``.
    ack_bytes:
        Optional per-path ack wire size in bytes, overriding the
        engine-wide :data:`repro.netsim.network.ACK_BYTES` for the
        listed paths.
    """

    def __init__(self, links: dict, paths: dict, default_path: str | None = None,
                 return_delays: dict | None = None,
                 reverse_paths: dict | None = None,
                 ack_bytes: dict | None = None):
        if not links:
            raise ValueError("a topology needs at least one link")
        if not paths:
            raise ValueError("a topology needs at least one path")
        self.links = dict(links)
        return_delays = return_delays or {}
        reverse_paths = reverse_paths or {}
        ack_bytes = ack_bytes or {}
        both = sorted(set(return_delays) & set(reverse_paths))
        if both:
            raise ValueError(f"path(s) {both} give both return_delays and "
                             f"reverse_paths; pick one")
        for label, mapping in (("return_delays", return_delays),
                               ("reverse_paths", reverse_paths),
                               ("ack_bytes", ack_bytes)):
            unknown = sorted(set(mapping) - set(paths))
            if unknown:
                raise KeyError(f"{label} names unknown path(s) {unknown}; "
                               f"known: {sorted(paths)}")
        for name, value in ack_bytes.items():
            if int(value) <= 0:
                raise ValueError(f"ack_bytes of path {name!r} must be "
                                 f"positive, got {value!r}")
        self.paths: dict[str, Path] = {}
        for name, link_names in paths.items():
            link_names = tuple(link_names)
            if not link_names:
                raise ValueError(f"path {name!r} traverses no links")
            missing = [ln for ln in link_names if ln not in self.links]
            if missing:
                raise KeyError(
                    f"path {name!r} references unknown link(s) {missing}; "
                    f"known: {sorted(self.links)}")
            path_links = tuple(self.links[ln] for ln in link_names)
            if name in reverse_paths:
                reverse_names = tuple(reverse_paths[name])
                if not reverse_names:
                    raise ValueError(f"reverse path of {name!r} traverses "
                                     f"no links")
                missing = [ln for ln in reverse_names if ln not in self.links]
                if missing:
                    raise KeyError(
                        f"reverse path of {name!r} references unknown "
                        f"link(s) {missing}; known: {sorted(self.links)}")
                reverse_links = tuple(self.links[ln] for ln in reverse_names)
                return_delay = sum(link.delay for link in reverse_links)
            else:
                reverse_names = ()
                return_delay = return_delays.get(
                    name, sum(link.delay for link in path_links))
                reverse_links = (PropagationLink(float(return_delay),
                                                 name=f"{name}:return"),)
            path_ack = ack_bytes.get(name)
            self.paths[name] = Path(name=name, link_names=link_names,
                                    links=path_links,
                                    return_delay=float(return_delay),
                                    reverse_link_names=reverse_names,
                                    reverse_links=reverse_links,
                                    ack_bytes=(None if path_ack is None
                                               else int(path_ack)))
        if default_path is None:
            default_path = next(iter(self.paths))
        if default_path not in self.paths:
            raise KeyError(f"default path {default_path!r} is not a path; "
                           f"known: {sorted(self.paths)}")
        self.default_path = default_path

    def path(self, name: str | None = None) -> Path:
        """Resolve a path by name (``None`` -> the default path)."""
        if name is None:
            name = self.default_path
        try:
            return self.paths[name]
        except KeyError:
            raise KeyError(f"unknown path {name!r}; "
                           f"known: {sorted(self.paths)}") from None

    def all_links(self) -> list[Link]:
        return list(self.links.values())

    def reset(self) -> None:
        """Clear queue state and counters on every link."""
        for link in self.links.values():
            link.reset()

    # --- constructors ------------------------------------------------------

    @classmethod
    def single_path(cls, links: list[Link], name: str = "path") -> "Topology":
        """The legacy shape: every flow traverses every link in order."""
        named = {link.name or f"link{i}": link for i, link in enumerate(links)}
        if len(named) != len(links):
            raise ValueError("duplicate link names")
        return cls(named, {name: tuple(named)})

    @classmethod
    def parking_lot(cls, links: list[Link]) -> "Topology":
        """N links in series: a ``through`` path plus per-hop ``crossN``."""
        named = {link.name or f"hop{i}": link for i, link in enumerate(links)}
        if len(named) != len(links):
            raise ValueError("duplicate link names")
        names = list(named)
        paths = {"through": tuple(names)}
        for i, link_name in enumerate(names):
            paths[f"cross{i}"] = (link_name,)
        return cls(named, paths, default_path="through")


# --- declarative layer -------------------------------------------------------


@dataclass(frozen=True)
class LinkDef:
    """Declarative description of one link.

    ``bandwidth_mbps`` is the constant capacity, and stays the *nominal*
    capacity for controller sizing and BDP-relative buffers when a named
    ``trace`` overrides the actual capacity process.  ``queue_packets``
    sizes the buffer absolutely; otherwise ``buffer_bdp`` multiples of
    the BDP of the longest path through this link are used.

    ``faults`` is a tuple of declarative fault specs (see
    :mod:`repro.netsim.faults`) attached to the built link as one
    :class:`~repro.netsim.faults.FaultProcess`; the empty default keeps
    the link on the fault-free fast path, bit-identical to the golden
    traces.
    """

    name: str
    bandwidth_mbps: float = 20.0
    delay_ms: float = 10.0
    buffer_bdp: float = 1.0
    queue_packets: int | None = None
    loss_rate: float = 0.0
    trace: str | None = None
    faults: tuple = ()

    def __post_init__(self):
        # Accept a bare spec or any iterable; fingerprints and builds
        # must see one canonical tuple (mirrors PathDef's coercions).
        object.__setattr__(self, "faults", coerce_faults(self.faults))


@dataclass(frozen=True)
class PathDef:
    """Declarative path: ordered link names plus the reverse route.

    ``reverse_links`` names the links acks/loss notices traverse (real
    reverse-path queueing); ``return_delay_ms`` instead keeps the
    reverse direction pure propagation at the given delay.  Giving
    neither means a symmetric pure-propagation return.  Giving both is
    an error -- a wired reverse path's return delay *is* its links'
    propagation sum.

    ``ack_bytes`` sets this path's acknowledgement wire size, scaling
    the service acks demand from queued reverse links; ``None`` uses
    the engine-wide :data:`repro.netsim.network.ACK_BYTES` default.
    """

    name: str
    links: tuple
    return_delay_ms: float | None = None
    reverse_links: tuple | None = None
    ack_bytes: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "links", tuple(self.links))
        if self.ack_bytes is not None:
            # Coerce here so the spec, its fingerprint, and the built
            # topology all agree on one value (a float would fingerprint
            # raw but run truncated).
            object.__setattr__(self, "ack_bytes", int(self.ack_bytes))
            if self.ack_bytes <= 0:
                raise ValueError(f"path {self.name!r}: ack_bytes must be "
                                 f"positive, got {self.ack_bytes!r}")
        if self.reverse_links is not None:
            object.__setattr__(self, "reverse_links",
                               tuple(self.reverse_links))
            if not self.reverse_links:
                raise ValueError(
                    f"path {self.name!r}: reverse_links must name at least "
                    f"one link (omit it for a pure-propagation return)")
            if self.return_delay_ms is not None:
                raise ValueError(
                    f"path {self.name!r}: give either reverse_links or "
                    f"return_delay_ms, not both")


@dataclass(frozen=True)
class TopologySpec:
    """Picklable topology description consumed by scenario grids.

    ``build()`` produces a fresh live :class:`Topology` whose link RNGs
    derive deterministically from the given seed, so a scenario's
    results are reproducible and identical across serial and parallel
    execution.
    """

    name: str
    links: tuple
    paths: tuple
    default_path: str = ""

    def __post_init__(self):
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "paths", tuple(self.paths))
        if not self.links:
            raise ValueError("a topology spec needs at least one link")
        if not self.paths:
            raise ValueError("a topology spec needs at least one path")
        link_names = [ld.name for ld in self.links]
        if len(set(link_names)) != len(link_names):
            raise ValueError(f"duplicate link names in {link_names}")
        path_names = [p.name for p in self.paths]
        if len(set(path_names)) != len(path_names):
            raise ValueError(f"duplicate path names in {path_names}")
        for p in self.paths:
            missing = [ln for ln in p.links if ln not in link_names]
            if missing:
                raise ValueError(f"path {p.name!r} references unknown "
                                 f"link(s) {missing}")
            if p.reverse_links is not None:
                missing = [ln for ln in p.reverse_links
                           if ln not in link_names]
                if missing:
                    raise ValueError(
                        f"reverse path of {p.name!r} references unknown "
                        f"link(s) {missing}")
        if self.default_path and self.default_path not in path_names:
            raise ValueError(f"default path {self.default_path!r} is not "
                             f"one of {path_names}")

    # --- lookups -----------------------------------------------------------

    def path(self, name: str | None = None) -> PathDef:
        if name is None:
            name = self.default_path or self.paths[0].name
        for p in self.paths:
            if p.name == name:
                return p
        raise KeyError(f"unknown path {name!r}; "
                       f"known: {[p.name for p in self.paths]}")

    def path_names(self) -> tuple:
        return tuple(p.name for p in self.paths)

    def _link(self, name: str) -> LinkDef:
        for ld in self.links:
            if ld.name == name:
                return ld
        raise KeyError(f"unknown link {name!r}")

    def path_one_way_ms(self, name: str | None = None) -> float:
        """Forward propagation delay of a path, milliseconds."""
        return sum(self._link(ln).delay_ms for ln in self.path(name).links)

    def path_return_ms(self, name: str | None = None) -> float:
        """Return-direction propagation delay of a path, milliseconds."""
        p = self.path(name)
        if p.reverse_links is not None:
            return sum(self._link(ln).delay_ms for ln in p.reverse_links)
        if p.return_delay_ms is not None:
            return p.return_delay_ms
        return self.path_one_way_ms(p.name)

    def path_rtt_s(self, name: str | None = None) -> float:
        """Round-trip propagation time of a path, seconds."""
        p = self.path(name)
        return (self.path_one_way_ms(p.name) + self.path_return_ms(p.name)) / 1000.0

    def path_bottleneck_mbps(self, name: str | None = None) -> float:
        """Nominal bottleneck capacity along a path (Mbps)."""
        return min(self._link(ln).bandwidth_mbps for ln in self.path(name).links)

    def path_loss_rate(self, name: str | None = None) -> float:
        """End-to-end random-loss probability along a path."""
        survival = 1.0
        for ln in self.path(name).links:
            survival *= 1.0 - self._link(ln).loss_rate
        return 1.0 - survival

    # --- realisation -------------------------------------------------------

    def _bdp_rtt_s(self, link_name: str) -> float:
        """RTT used for this link's BDP-relative buffer: the longest
        round-trip of any path traversing the link in either direction
        (falls back to the link's own round trip if no path uses it)."""
        rtts = [self.path_rtt_s(p.name) for p in self.paths
                if link_name in p.links
                or (p.reverse_links is not None and link_name in p.reverse_links)]
        if rtts:
            return max(rtts)
        return 2.0 * self._link(link_name).delay_ms / 1000.0

    def build(self, packet_bytes: int = 1500, seed: int = 0,
              trace_cache: dict | None = None) -> Topology:
        """Instantiate live links (deterministic RNGs) and paths.

        ``trace_cache`` memoizes named-trace construction across builds
        (frozen read-only instances; see
        :func:`repro.netsim.traces.make_trace`) -- batched multi-cell
        execution passes one cache for a whole batch.
        """
        links: dict[str, Link] = {}
        for i, ld in enumerate(self.links):
            pps = mbps_to_pps(ld.bandwidth_mbps, packet_bytes)
            trace = (make_trace(ld.trace, cache=trace_cache) if ld.trace
                     else ConstantTrace(pps))
            queue = ld.queue_packets
            if queue is None:
                bdp = pps * self._bdp_rtt_s(ld.name)
                queue = max(int(round(ld.buffer_bdp * bdp)), MIN_QUEUE_PACKETS)
            link = Link(
                trace=trace, delay=ld.delay_ms / 1000.0, queue_size=queue,
                loss_rate=ld.loss_rate,
                rng=stream_rng("link.loss", seed, index=i), name=ld.name)
            if ld.faults:
                # Keyed like link.loss by (seed, position) so identical
                # schedules replay bit-for-bit across serial, parallel,
                # and batched execution.
                link.fault = FaultProcess(ld.faults, seed=seed, index=i)
            links[ld.name] = link
        paths = {p.name: p.links for p in self.paths}
        return_delays = {p.name: p.return_delay_ms / 1000.0
                         for p in self.paths if p.return_delay_ms is not None}
        reverse_paths = {p.name: p.reverse_links for p in self.paths
                         if p.reverse_links is not None}
        ack_bytes = {p.name: p.ack_bytes for p in self.paths
                     if p.ack_bytes is not None}
        return Topology(links, paths,
                        default_path=self.default_path or self.paths[0].name,
                        return_delays=return_delays,
                        reverse_paths=reverse_paths,
                        ack_bytes=ack_bytes)

    def with_reverse_paths(self, reverse: dict,
                           name: str | None = None) -> "TopologySpec":
        """New spec with the given paths' reverse routing replaced.

        ``reverse`` maps path names to either an ordered tuple of link
        names (wire real reverse-path queueing) or ``None`` (strip the
        wiring back to a pure-propagation pseudo-link *with the same
        return propagation delay*, i.e. the scenario's queue-free
        twin).  This is what the :class:`~repro.eval.scenarios
        .ScenarioSuite` ``reverse_paths`` axis applies per grid cell.
        """
        known = {p.name for p in self.paths}
        unknown = sorted(set(reverse) - known)
        if unknown:
            raise KeyError(f"unknown path(s) {unknown}; known: {sorted(known)}")
        paths = []
        for p in self.paths:
            if p.name not in reverse:
                paths.append(p)
                continue
            value = reverse[p.name]
            if value is None:
                paths.append(replace(p, reverse_links=None,
                                     return_delay_ms=self.path_return_ms(p.name)))
            else:
                paths.append(replace(p, return_delay_ms=None,
                                     reverse_links=tuple(value)))
        return replace(self, paths=tuple(paths), name=name or self.name)

    def with_faults(self, faults: dict,
                    name: str | None = None) -> "TopologySpec":
        """New spec with the given links' fault schedules replaced.

        ``faults`` maps link names to a fault spec, an iterable of
        specs, or ``None``/``()`` (strip the link back to fault-free).
        This is what the :class:`~repro.eval.scenarios.ScenarioSuite`
        ``faults`` axis applies per grid cell.
        """
        known = {ld.name for ld in self.links}
        unknown = sorted(set(faults) - known)
        if unknown:
            raise KeyError(f"unknown link(s) {unknown}; known: {sorted(known)}")
        links = []
        for ld in self.links:
            if ld.name in faults:
                links.append(replace(ld, faults=coerce_faults(faults[ld.name])))
            else:
                links.append(ld)
        return replace(self, links=tuple(links), name=name or self.name)


def _per_hop(value, hops: int, label: str) -> list:
    """Broadcast a scalar (or validate a sequence) across ``hops``."""
    if isinstance(value, (list, tuple)):
        if len(value) != hops:
            raise ValueError(f"{label} has {len(value)} entries for "
                             f"{hops} hops")
        return list(value)
    return [value] * hops


def _hop_links(hops: int, bandwidth_mbps, delay_ms, buffer_bdp,
               queue_packets, loss_rate, trace) -> tuple:
    bws = _per_hop(bandwidth_mbps, hops, "bandwidth_mbps")
    delays = _per_hop(delay_ms, hops, "delay_ms")
    buffers = _per_hop(buffer_bdp, hops, "buffer_bdp")
    queues = _per_hop(queue_packets, hops, "queue_packets")
    losses = _per_hop(loss_rate, hops, "loss_rate")
    traces = _per_hop(trace, hops, "trace")
    return tuple(LinkDef(name=f"hop{i}", bandwidth_mbps=float(bws[i]),
                         delay_ms=float(delays[i]), buffer_bdp=float(buffers[i]),
                         queue_packets=queues[i], loss_rate=float(losses[i]),
                         trace=traces[i])
                 for i in range(hops))


def dumbbell(bandwidth_mbps: float = 20.0, delay_ms: float = 10.0,
             buffer_bdp: float = 1.0, queue_packets: int | None = None,
             loss_rate: float = 0.0, trace: str | None = None,
             name: str | None = None) -> TopologySpec:
    """One shared bottleneck -- the paper's evaluation shape."""
    links = _hop_links(1, bandwidth_mbps, delay_ms, buffer_bdp,
                       queue_packets, loss_rate, trace)
    return TopologySpec(name=name or "dumbbell", links=links,
                        paths=(PathDef("through", ("hop0",)),))


def chain(hops: int, bandwidth_mbps=20.0, delay_ms=10.0, buffer_bdp=1.0,
          queue_packets=None, loss_rate=0.0, trace=None,
          name: str | None = None) -> TopologySpec:
    """``hops`` bottlenecks in series; one path traverses them all.

    Per-hop parameters accept a scalar (broadcast) or a sequence of
    length ``hops``.
    """
    if hops < 1:
        raise ValueError("need at least one hop")
    links = _hop_links(hops, bandwidth_mbps, delay_ms, buffer_bdp,
                       queue_packets, loss_rate, trace)
    return TopologySpec(name=name or f"chain{hops}", links=links,
                        paths=(PathDef("through", tuple(ld.name for ld in links)),))


def parking_lot(hops: int, bandwidth_mbps=20.0, delay_ms=10.0, buffer_bdp=1.0,
                queue_packets=None, loss_rate=0.0, trace=None,
                name: str | None = None) -> TopologySpec:
    """The classic multi-bottleneck contention shape.

    A ``through`` path traverses all ``hops`` links; each hop ``i``
    additionally carries single-hop cross traffic on path ``cross{i}``.
    """
    if hops < 2:
        raise ValueError("a parking lot needs at least two hops")
    links = _hop_links(hops, bandwidth_mbps, delay_ms, buffer_bdp,
                       queue_packets, loss_rate, trace)
    paths = [PathDef("through", tuple(ld.name for ld in links))]
    paths += [PathDef(f"cross{i}", (links[i].name,)) for i in range(hops)]
    return TopologySpec(name=name or f"parking-lot{hops}", links=links,
                        paths=tuple(paths), default_path="through")


def dumbbell_asymmetric(bandwidth_mbps: float = 20.0, delay_ms: float = 10.0,
                        reverse_bandwidth_mbps: float | None = None,
                        reverse_delay_ms: float | None = None,
                        buffer_bdp: float = 1.0,
                        reverse_buffer_bdp: float | None = None,
                        queue_packets: int | None = None,
                        reverse_queue_packets: int | None = None,
                        loss_rate: float = 0.0, trace: str | None = None,
                        reverse_trace: str | None = None,
                        ack_bytes: int | None = None,
                        name: str | None = None) -> TopologySpec:
    """A dumbbell whose reverse direction is its own queued link.

    The ``through`` path sends data over ``fwd`` and its acks over
    ``rev``; the ``reverse`` path is the mirror image, so a flow placed
    on it congests the ack path of ``through`` traffic -- the
    ADSL/cable/satellite ack-compression shape.  ``reverse_bandwidth``
    defaults to a tenth of the forward capacity (the classic asymmetric
    access ratio) and ``reverse_delay`` to the forward delay.
    ``ack_bytes`` overrides both paths' ack wire size (stacks with fat
    ack frames congest the skinny uplink proportionally sooner).
    """
    if reverse_bandwidth_mbps is None:
        reverse_bandwidth_mbps = bandwidth_mbps / 10.0
    if reverse_delay_ms is None:
        reverse_delay_ms = delay_ms
    if reverse_buffer_bdp is None:
        reverse_buffer_bdp = buffer_bdp
    links = (
        LinkDef(name="fwd", bandwidth_mbps=float(bandwidth_mbps),
                delay_ms=float(delay_ms), buffer_bdp=float(buffer_bdp),
                queue_packets=queue_packets, loss_rate=float(loss_rate),
                trace=trace),
        LinkDef(name="rev", bandwidth_mbps=float(reverse_bandwidth_mbps),
                delay_ms=float(reverse_delay_ms),
                buffer_bdp=float(reverse_buffer_bdp),
                queue_packets=reverse_queue_packets,
                loss_rate=float(loss_rate), trace=reverse_trace),
    )
    paths = (PathDef("through", ("fwd",), reverse_links=("rev",),
                     ack_bytes=ack_bytes),
             PathDef("reverse", ("rev",), reverse_links=("fwd",),
                     ack_bytes=ack_bytes))
    return TopologySpec(name=name or "dumbbell-asym", links=links,
                        paths=paths, default_path="through")
