"""Gym-style congestion-control environments.

Two layers, mirroring the paper's Fig. 2:

* :class:`CongestionControlEnv` is the single-objective substrate
  (Fig. 2a -- what Aurora trains on): state is the eta-history of
  network statistics, the action is the continuous rate adjustment of
  Eq. 1, and ``step`` returns the *raw reward components* so callers
  can apply any utility.
* :class:`MoccEnv` (Fig. 2b) augments the state with the application
  weight vector and computes the dynamic reward of Eq. 2:

      r_t = w_thr * O_thr + w_lat * O_lat + w_loss * O_loss

  with O_thr = throughput/capacity, O_lat = base RTT / measured RTT,
  O_loss = 1 - lost/total, all normalised to [0, 1].

Each episode runs on a bottleneck link whose parameters are either
fixed (evaluation) or drawn from Table-3 ranges (training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NetworkParams, NetworkRanges, TRAINING_RANGES
from repro.netsim.history import StatHistory
from repro.netsim.link import Link
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.rngstreams import stream_rng
from repro.netsim.sender import ExternalRateController, MonitorIntervalStats
from repro.netsim.traces import BandwidthTrace, ConstantTrace, mbps_to_pps

__all__ = ["RewardComponents", "CongestionControlEnv", "MoccEnv", "apply_action"]


@dataclass(frozen=True)
class RewardComponents:
    """The three normalised performance measures of Eq. 2."""

    o_thr: float
    o_lat: float
    o_loss: float

    def weighted(self, weights) -> float:
        """Scalarise with a weight vector ``<w_thr, w_lat, w_loss>``."""
        w = np.asarray(weights, dtype=np.float64)
        return float(w[0] * self.o_thr + w[1] * self.o_lat + w[2] * self.o_loss)

    def as_array(self) -> np.ndarray:
        return np.array([self.o_thr, self.o_lat, self.o_loss])


def apply_action(rate: float, action: float, scale: float) -> float:
    """Eq. 1: multiplicative rate adjustment dampened by ``scale``.

    ``x_t = x_{t-1} * (1 + alpha*a)`` for ``a > 0`` and
    ``x_t = x_{t-1} / (1 - alpha*a)`` for ``a < 0``.
    """
    if action >= 0:
        return rate * (1.0 + scale * action)
    return rate / (1.0 - scale * action)


def components_from_stats(stats: MonitorIntervalStats) -> RewardComponents:
    """Compute O_thr, O_lat, O_loss for one monitor interval."""
    o_thr = stats.utilization
    if stats.mean_rtt is None or stats.mean_rtt <= 0:
        o_lat = 0.0
    else:
        o_lat = min(stats.base_rtt / stats.mean_rtt, 1.0)
    o_loss = 1.0 - stats.loss_rate
    return RewardComponents(o_thr=o_thr, o_lat=o_lat, o_loss=o_loss)


class CongestionControlEnv:
    """Single-flow bottleneck environment with a gym-like API.

    Parameters
    ----------
    params:
        Fixed network conditions; mutually exclusive with ``ranges``.
    ranges:
        If given, each ``reset()`` draws fresh conditions uniformly from
        these Table-3 ranges (the paper's randomised training).
    trace:
        Optional explicit bandwidth trace (overrides the bandwidth in
        ``params``); used by e.g. the Fig. 1a step-bandwidth experiment.
    history_length:
        eta, the number of statistic vectors in the state (Table 2: 10).
    action_scale:
        alpha in Eq. 1 (Table 2: 0.025).
    max_steps:
        Episode length in monitor intervals.
    mi_duration:
        Monitor-interval duration; defaults to the path's base RTT.
    """

    #: Action bound: sampled Gaussian actions are clipped to this range
    #: before Eq. 1 (keeps a single step's rate change bounded).
    ACTION_CLIP = 1e3

    def __init__(self, params: NetworkParams | None = None,
                 ranges: NetworkRanges | None = None,
                 trace: BandwidthTrace | None = None,
                 history_length: int = 10,
                 action_scale: float = 0.025,
                 max_steps: int = 400,
                 mi_duration: float | None = None,
                 packet_bytes: int = 1500,
                 queue_bdp_range: tuple[float, float] | None = None,
                 seed: int = 0):
        if params is None and ranges is None and trace is None:
            ranges = TRAINING_RANGES
        self.params = params
        self.ranges = ranges
        #: When set, the sampled queue size is re-drawn as a multiple of
        #: the episode's bandwidth-delay product.  Table 3's absolute
        #: range (up to 3000 packets at 1-5 Mbps) allows queues worth
        #: tens of seconds, where latency/loss penalties arrive too late
        #: to shape the policy within an episode; BDP-relative buffers
        #: keep the congestion signals observable while still covering
        #: shallow-to-bufferbloat regimes.
        self.queue_bdp_range = queue_bdp_range
        self.trace = trace
        self.history = StatHistory(history_length)
        self.action_scale = action_scale
        self.max_steps = max_steps
        self.mi_duration = mi_duration
        self.packet_bytes = packet_bytes
        self.rng = stream_rng("env.params", seed)

        self._sim: Simulation | None = None
        self._controller: ExternalRateController | None = None
        self._steps = 0
        self._episode_seed = seed

    # --- environment API -----------------------------------------------------

    @property
    def observation_dim(self) -> int:
        return self.history.dim

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial state vector."""
        self._episode_seed += 1
        params = self._draw_params()
        trace = self.trace
        if trace is None:
            trace = ConstantTrace(mbps_to_pps(params.bandwidth_mbps, self.packet_bytes))
        queue = params.queue_packets
        if self.queue_bdp_range is not None:
            bdp = trace.bandwidth_at(0.0) * 2.0 * params.latency_ms / 1000.0
            lo, hi = self.queue_bdp_range
            # Log-uniform: shallow and bufferbloat-deep buffers are both
            # well represented, so overdriving is punished somewhere in
            # the training distribution.
            factor = float(np.exp(self.rng.uniform(np.log(lo), np.log(hi))))
            queue = max(int(round(bdp * factor)), 2)
        link = Link(trace=trace, delay=params.latency_ms / 1000.0,
                    queue_size=queue, loss_rate=params.loss_rate,
                    rng=stream_rng("env.episode-link", self._episode_seed))
        capacity = trace.bandwidth_at(0.0)
        initial_rate = capacity * float(self.rng.uniform(0.3, 1.5))
        self._controller = ExternalRateController(initial_rate)
        mi = self.mi_duration if self.mi_duration is not None else max(link.base_rtt, 0.01)
        horizon = mi * (self.max_steps + 2)
        spec = FlowSpec(controller=self._controller, mi_duration=mi,
                        packet_bytes=self.packet_bytes)
        self._sim = Simulation(link, [spec], duration=horizon,
                               seed=self._episode_seed)
        self._mi = mi
        self._steps = 0
        self._active_params = params
        self.history.reset()
        # Warm-up: run one MI at the initial rate so the first state
        # reflects real measurements rather than the neutral fill.
        self._sim.run(until=self._mi)
        if self._flow.records:
            self.history.push(self._flow, self._flow.records[-1])
        return self.history.vector()

    def step(self, action: float):
        """Apply Eq. 1, simulate one MI, return the transition.

        Returns ``(state, components, done, info)`` where ``components``
        is a :class:`RewardComponents` -- callers scalarise it with
        their own objective (fixed for Aurora, dynamic for MOCC).
        """
        if self._sim is None or self._controller is None:
            raise RuntimeError("call reset() before step()")
        action = float(np.clip(action, -self.ACTION_CLIP, self.ACTION_CLIP))
        new_rate = apply_action(self._controller.rate, action, self.action_scale)
        self._controller.set_rate(new_rate)

        target = self._sim.now + self._mi
        before = len(self._flow.records)
        self._sim.run(until=target)
        if len(self._flow.records) > before:
            stats = self._flow.records[-1]
        else:  # Degenerate MI (no events); synthesise an empty interval.
            stats = self._flow.finish_mi(target, self._link_capacity(), self._sim.base_rtt,
                                         self._controller.rate)
        components = components_from_stats(stats)
        self.history.push(self._flow, stats)
        self._steps += 1
        done = self._steps >= self.max_steps
        info = {"stats": stats, "rate_pps": self._controller.rate,
                "params": self._active_params}
        return self.history.vector(), components, done, info

    # --- helpers ----------------------------------------------------------------

    @property
    def _flow(self):
        return self._sim.flows[0]

    def _link_capacity(self) -> float:
        return self._sim.links[0].bandwidth_at(self._sim.now)

    def _draw_params(self) -> NetworkParams:
        if self.params is not None:
            return self.params
        if self.ranges is not None:
            return self.ranges.sample(self.rng)
        # Trace-only configuration: defaults for delay/queue/loss.
        return NetworkParams(bandwidth_mbps=0.0, latency_ms=20.0,
                             queue_packets=1000, loss_rate=0.0)


class MoccEnv:
    """Preference-aware wrapper: MOCC's state + dynamic reward (Fig. 2b).

    ``reset(weights)`` fixes the application requirement for the
    episode; ``step`` returns the scalar reward of Eq. 2 along with the
    network-state vector and the weight vector (the two state inputs of
    the preference-conditioned policy).
    """

    def __init__(self, env: CongestionControlEnv):
        self.env = env
        self.weights = np.array([1 / 3, 1 / 3, 1 / 3])

    @property
    def observation_dim(self) -> int:
        return self.env.observation_dim

    @property
    def weight_dim(self) -> int:
        return 3

    def reset(self, weights) -> tuple[np.ndarray, np.ndarray]:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (3,):
            raise ValueError("weight vector must have three components")
        if not np.isclose(w.sum(), 1.0, atol=1e-6):
            raise ValueError("weights must sum to 1")
        self.weights = w
        obs = self.env.reset()
        return obs, self.weights.copy()

    def step(self, action: float):
        """Returns ``(obs, weights, reward, components, done, info)``."""
        obs, components, done, info = self.env.step(action)
        reward = components.weighted(self.weights)
        return obs, self.weights.copy(), reward, components, done, info
