"""Flow state, sender models and monitor-interval statistics.

A *flow* is one end-to-end sender/receiver pair driven by a congestion
controller.  Two sender models are supported, covering every scheme the
paper evaluates:

* **rate-paced** senders emit packets at the controller's pacing rate
  (PCC, BBR, Copa, Aurora, Orca's RL half, MOCC);
* **window-based** senders are ack-clocked against a congestion window
  (CUBIC, Vegas), paced within an RTT to avoid artificial bursts.

Statistics are aggregated per *monitor interval* (MI), the sensing
granularity of learning-based CC (§4.1): packets sent/acked/lost, mean
RTT, and the three state features the paper feeds its model --

* sending ratio ``l_t``      = packets sent / packets acked,
* latency ratio ``p_t``      = mean RTT of this MI / min mean RTT seen,
* latency gradient ``q_t``   = d RTT / dt (regression slope over acks).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["Controller", "ExternalRateController", "MonitorIntervalStats", "Flow"]

#: Feature caps keep state inputs bounded when an MI sees no acks.
SEND_RATIO_CAP = 5.0
LATENCY_RATIO_CAP = 10.0

#: Default wire size of an acknowledgement, bytes (re-exported as
#: :data:`repro.netsim.network.ACK_BYTES`); a topology path can
#: override it per flow via ``PathDef(ack_bytes=...)``.
ACK_BYTES = 40


class Controller:
    """Interface between a flow and its congestion-control algorithm.

    Subclasses set ``kind`` to ``"rate"`` or ``"window"`` and implement
    the corresponding property (:meth:`pacing_rate` or :meth:`cwnd`).
    Event hooks default to no-ops so simple controllers stay simple.
    """

    #: "rate" (pacing) or "window" (ack-clocked cwnd).
    kind = "rate"
    #: Human-readable scheme name, used in experiment tables.
    name = "controller"

    def on_flow_start(self, flow: "Flow", now: float) -> None:
        """Called once when the flow starts."""

    def on_ack(self, flow: "Flow", packet: Packet, now: float) -> None:
        """Called for every acknowledged packet."""

    def on_loss(self, flow: "Flow", packet: Packet, now: float) -> None:
        """Called when the sender learns a packet was lost."""

    def on_mi(self, flow: "Flow", stats: "MonitorIntervalStats", now: float) -> None:
        """Called at each monitor-interval boundary."""

    def pacing_rate(self, now: float) -> float:
        """Current pacing rate in packets/second (rate-based only)."""
        raise NotImplementedError

    def cwnd(self, now: float) -> float:
        """Current congestion window in packets (window-based only)."""
        raise NotImplementedError

    def inflight_cap(self, now: float) -> float | None:
        """Optional inflight backstop for rate-based controllers.

        BBR-style schemes pace by rate but still bound the data in
        flight (e.g. 2x BDP); return ``None`` for no cap.
        """
        return None


class ExternalRateController(Controller):
    """Rate controller whose rate is set from outside the simulation.

    This is the bridge used by the gym-style environments: the RL agent
    computes a rate between simulation steps and writes it here.
    """

    kind = "rate"
    name = "external"

    def __init__(self, initial_rate: float):
        self.rate = float(initial_rate)

    def pacing_rate(self, now: float) -> float:
        return self.rate

    def set_rate(self, rate: float) -> None:
        self.rate = float(rate)


@dataclass
class MonitorIntervalStats:
    """Sender-observable statistics for one monitor interval."""

    flow_id: int
    start: float
    end: float
    sent: int
    acked: int
    lost: int
    mean_rtt: float | None
    min_rtt: float | None
    #: Regression slope of RTT over ack time within the MI (s/s).
    latency_gradient: float
    #: Mean bottleneck capacity over the MI, packets/second.
    capacity_pps: float
    #: Round-trip propagation delay of the path (no queueing), seconds.
    base_rtt: float
    #: Packet size used by the flow, bytes.
    packet_bytes: int
    #: Pacing rate / effective send rate at the end of the MI (pps).
    rate_pps: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput_pps(self) -> float:
        """Delivered throughput (acknowledged packets over the MI)."""
        if self.duration <= 0:
            return 0.0
        return self.acked / self.duration

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_pps * self.packet_bytes * 8 / 1e6

    @property
    def utilization(self) -> float:
        """Delivered throughput over capacity, clipped to [0, 1]."""
        if self.capacity_pps <= 0:
            return 0.0
        return min(self.throughput_pps / self.capacity_pps, 1.0)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets known lost this MI."""
        total = self.lost + self.acked
        if total == 0:
            return 0.0
        return self.lost / total

    @property
    def latency_ratio_to_base(self) -> float:
        """Mean RTT over propagation RTT (the Fig. 5e-h metric)."""
        if self.mean_rtt is None or self.base_rtt <= 0:
            return LATENCY_RATIO_CAP
        return self.mean_rtt / self.base_rtt

    def send_ratio(self) -> float:
        """l_t = sent/acked, capped when nothing was acknowledged."""
        if self.acked == 0:
            return SEND_RATIO_CAP if self.sent > 0 else 1.0
        return min(self.sent / self.acked, SEND_RATIO_CAP)


class Flow:
    """Runtime state of one flow inside a simulation."""

    def __init__(self, flow_id: int, controller: Controller, packet_bytes: int = 1500,
                 start_time: float = 0.0, stop_time: float = float("inf"),
                 mi_duration: float | None = None, keep_packets: bool = False):
        self.flow_id = flow_id
        self.controller = controller
        #: Cached ``controller.kind == "window"`` -- read on every ack
        #: by the engine's ack-clocking check.
        self.is_window = controller.kind == "window"
        # Bound-method caches for the controller hooks the engine fires
        # per packet: one attribute walk here instead of two per event,
        # and hooks a controller never overrode stay ``None`` so the
        # engine skips the call outright (a no-op call and no call are
        # indistinguishable, so results are untouched).
        ctrl_type = type(controller)
        self.on_ack_cb = (controller.on_ack
                          if ctrl_type.on_ack is not Controller.on_ack
                          else None)
        self.on_loss_cb = (controller.on_loss
                           if ctrl_type.on_loss is not Controller.on_loss
                           else None)
        self.cwnd_fn = controller.cwnd if self.is_window else None
        self.pacing_fn = None if self.is_window else controller.pacing_rate
        self.cap_fn = (controller.inflight_cap
                       if not self.is_window and ctrl_type.inflight_cap
                       is not Controller.inflight_cap else None)
        self.packet_bytes = packet_bytes
        self.start_time = start_time
        self.stop_time = stop_time
        self.mi_duration = mi_duration  # None -> engine picks base RTT
        self.keep_packets = keep_packets

        # Sequence / inflight bookkeeping.
        self.next_seq = 0
        self.inflight = 0
        self.send_scheduled = False
        self.started = False
        self.stopped = False

        # Path assignment (set by the engine from the topology; the
        # defaults describe a standalone flow outside any simulation).
        self.path_name: str | None = None
        self.links: tuple = ()
        self.n_links = 0
        #: Ordered reverse links acks/loss notices transit (a single
        #: pure-propagation pseudo-link unless the topology wires a
        #: real reverse route).
        self.reverse_links: tuple = ()
        self.n_rev_links = 0
        #: Delay of the reverse direction when it is a single
        #: pure-propagation pseudo-link (``None`` when real reverse
        #: links are wired): the engine's inline ack fast path.
        self.pure_return_delay: float | None = None
        self.base_rtt = 0.0
        #: Propagation sum of the reverse links (no queueing).
        self.return_delay = 0.0
        self.max_rate = float("inf")
        #: Wire size of this flow's acknowledgements, bytes; the
        #: engine overrides it from the path's ``ack_bytes`` via
        #: :meth:`set_ack_bytes` when the topology sets one.
        self.ack_bytes = ACK_BYTES
        #: Service demand of one ack relative to a data packet,
        #: derived from ``ack_bytes`` (kept as a plain attribute -- it
        #: is read once per reverse hop event; update it through
        #: :meth:`set_ack_bytes`).
        self.ack_size = ACK_BYTES / packet_bytes
        #: Delivered packets whose acknowledgement was buffer-dropped
        #: on the reverse path, keyed by sequence number.  Acknowledged
        #: (and removed) when a later cumulative ack reaches the
        #: sender, or surfaced as a retransmit-timeout loss if none
        #: does (see ``Simulation._handle_ack`` / ``"rto"`` events).
        self.pending_acks: dict[int, Packet] = {}
        #: Latest scheduled arrival per hop and direction under the
        #: event-driven scheduler -- the monotonicity floors that keep
        #: this flow's dithered per-hop arrivals in FIFO order at every
        #: link (see ``Simulation._dither_arrival``).  Sized by
        #: :meth:`init_hop_floors` once the engine assigns the path.
        self.fwd_hop_floor: list[float] = []
        self.rev_hop_floor: list[float] = []

        #: Time of the last accounting event (send/ack/loss).  The final
        #: monitor interval closes at this time when acks straggle in
        #: after ``stop_time`` -- clamping to ``stop_time`` while still
        #: counting the late acks would inflate throughput/utilization
        #: for churned flows.
        self.last_event_time = start_time

        # Lifetime counters.
        self.total_sent = 0
        self.total_acked = 0
        self.total_lost = 0
        self.min_rtt_seen: float | None = None
        self.last_rtt: float | None = None
        self.srtt: float | None = None
        #: Online link-capacity estimate (max observed MI throughput, §4.1).
        self.max_throughput_seen: float = 0.0

        # Current-MI accumulators.  RTT samples stream into flat C
        # double arrays (time, rtt) instead of a list of tuples: one
        # unboxing append per ack, and closing an MI reduces zero-copy
        # ``np.frombuffer`` views of the same memory instead of
        # rebuilding numpy arrays from Python lists.  The min is
        # additionally tracked as a running scalar (order-independent,
        # so exact); the mean and the latency-gradient regression
        # deliberately stay numpy reductions over the buffer because
        # pairwise summation rounds differently from a scalar running
        # sum -- and MI statistics feed controller decisions, so the
        # golden-trace bit-identity guarantee
        # (tests/test_golden_traces.py) pins their floats.
        self.mi_start = start_time
        self.mi_sent = 0
        self.mi_acked = 0
        self.mi_lost = 0
        self._mi_times = array("d")
        self._mi_rtts = array("d")
        self._mi_min_rtt = float("inf")

        # History.
        self.records: list[MonitorIntervalStats] = []
        self.packets: list[Packet] = []
        self._min_mean_rtt: float | None = None

    def set_ack_bytes(self, ack_bytes: int) -> None:
        """Set the ack wire size, keeping ``ack_size`` consistent."""
        self.ack_bytes = ack_bytes
        self.ack_size = ack_bytes / self.packet_bytes

    def init_hop_floors(self) -> None:
        """(Re)initialise the per-hop arrival floors for the assigned path."""
        self.fwd_hop_floor = [0.0] * len(self.links)
        self.rev_hop_floor = [0.0] * len(self.reverse_links)

    @property
    def mi_rtt_samples(self) -> list[tuple[float, float]]:
        """Current-MI ``(ack_time, rtt)`` samples as a list (debug view).

        The engine streams samples into flat buffers; this property
        materialises them for tests and interactive inspection only --
        do not use it on a hot path.
        """
        return list(zip(self._mi_times, self._mi_rtts))

    # --- accounting hooks (called by the engine) ---------------------------

    def note_sent(self, packet: Packet) -> None:
        self.total_sent += 1
        self.mi_sent += 1
        self.inflight += 1
        if packet.send_time > self.last_event_time:
            self.last_event_time = packet.send_time
        if self.keep_packets:
            self.packets.append(packet)

    def note_ack(self, packet: Packet, now: float) -> None:
        self.total_acked += 1
        self.mi_acked += 1
        inflight = self.inflight - 1
        self.inflight = inflight if inflight > 0 else 0
        if now > self.last_event_time:
            self.last_event_time = now
        rtt = now - packet.send_time
        self.last_rtt = rtt
        srtt = self.srtt
        self.srtt = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt
        min_seen = self.min_rtt_seen
        if min_seen is None or rtt < min_seen:
            self.min_rtt_seen = rtt
        self._mi_times.append(now)
        self._mi_rtts.append(rtt)
        if rtt < self._mi_min_rtt:
            self._mi_min_rtt = rtt

    def note_loss(self, packet: Packet, now: float) -> None:
        self.total_lost += 1
        self.mi_lost += 1
        inflight = self.inflight - 1
        self.inflight = inflight if inflight > 0 else 0
        if now > self.last_event_time:
            self.last_event_time = now

    # --- monitor intervals ---------------------------------------------------

    def finish_mi(self, now: float, capacity_pps: float, base_rtt: float,
                  rate_pps: float) -> MonitorIntervalStats:
        """Close the current MI, appending and returning its statistics."""
        n = len(self._mi_rtts)
        if n:
            # Zero-copy float64 view of the streamed C array; then
            # np.add.reduce is the exact pairwise kernel ndarray.mean
            # wraps (umr_sum / count) minus the wrapper overhead, so
            # the quotient is bit-identical.
            rtts = np.frombuffer(self._mi_rtts)
            mean_rtt: float | None = float(np.add.reduce(rtts) / n)
            min_rtt: float | None = self._mi_min_rtt
            gradient = (_rtt_slope_arrays(np.frombuffer(self._mi_times), rtts)
                        if n > 1 else 0.0)
        else:
            mean_rtt = None
            min_rtt = None
            gradient = 0.0
        stats = MonitorIntervalStats(
            flow_id=self.flow_id, start=self.mi_start, end=now,
            sent=self.mi_sent, acked=self.mi_acked, lost=self.mi_lost,
            mean_rtt=mean_rtt, min_rtt=min_rtt, latency_gradient=gradient,
            capacity_pps=capacity_pps, base_rtt=base_rtt,
            packet_bytes=self.packet_bytes, rate_pps=rate_pps)
        if mean_rtt is not None:
            if self._min_mean_rtt is None or mean_rtt < self._min_mean_rtt:
                self._min_mean_rtt = mean_rtt
        if stats.duration > 0:
            self.max_throughput_seen = max(self.max_throughput_seen,
                                           stats.throughput_pps)
        self.records.append(stats)
        self.mi_start = now
        self.mi_sent = 0
        self.mi_acked = 0
        self.mi_lost = 0
        self._mi_times = array("d")
        self._mi_rtts = array("d")
        self._mi_min_rtt = float("inf")
        return stats

    def latency_ratio(self, stats: MonitorIntervalStats) -> float:
        """p_t = mean RTT of the MI over the best mean RTT seen so far."""
        if stats.mean_rtt is None or self._min_mean_rtt is None:
            return LATENCY_RATIO_CAP
        return min(stats.mean_rtt / self._min_mean_rtt, LATENCY_RATIO_CAP)

    # --- aggregates -----------------------------------------------------------

    def mean_throughput_pps(self) -> float:
        """Delivered throughput over the whole recorded run."""
        if not self.records:
            return 0.0
        total_acked = sum(r.acked for r in self.records)
        span = self.records[-1].end - self.records[0].start
        if span <= 0:
            return 0.0
        return total_acked / span

    def mean_utilization(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.utilization for r in self.records]))

    def mean_rtt(self) -> float | None:
        rtts = [r.mean_rtt for r in self.records if r.mean_rtt is not None]
        if not rtts:
            return None
        return float(np.mean(rtts))

    def overall_loss_rate(self) -> float:
        total = self.total_acked + self.total_lost
        if total == 0:
            return 0.0
        return self.total_lost / total


def _rtt_slope_arrays(times: np.ndarray, rtts: np.ndarray) -> float:
    """Least-squares slope of RTT vs. ack time over parallel arrays.

    ``np.add.reduce(x) / n`` is ``x.mean()`` without the wrapper (same
    pairwise kernel, bit-identical quotient).
    """
    n = times.shape[0]
    t_center = times - np.add.reduce(times) / n
    denom = float(np.dot(t_center, t_center))
    if denom <= 1e-12:
        return 0.0
    return float(np.dot(t_center, rtts - np.add.reduce(rtts) / n) / denom)


def _rtt_slope(samples: list[tuple[float, float]]) -> float:
    """Least-squares slope of RTT vs. ack time (the latency gradient).

    List-of-tuples convenience wrapper around :func:`_rtt_slope_arrays`
    (which is what the flow's streaming buffers feed directly).
    """
    if len(samples) < 2:
        return 0.0
    times = np.array([s[0] for s in samples])
    rtts = np.array([s[1] for s in samples])
    return _rtt_slope_arrays(times, rtts)
