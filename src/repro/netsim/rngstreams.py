"""The named RNG-stream registry: every generator has one owner.

Bit-reproducible simulation rests on a fixed census of random streams:
who owns each :class:`numpy.random.Generator`, what seed material it
was derived from, and why no two derivations can collide.  Before this
module that census lived in scattered ``np.random.default_rng(...)``
call sites -- ``default_rng(seed)`` here, ``default_rng((seed, i))``
there, ``default_rng(seed * 7919 + 1)`` in a third place -- with
nothing preventing two of them from quietly producing the *same*
bitstream (identical loss patterns on two links, a training episode
whose link stream equals another episode's pacing stream).

Every stream the ``netsim`` package constructs is now declared here as
a :class:`StreamDef` and minted through :func:`stream_rng`.  Each
declaration pins:

* ``name`` -- the registry key call sites reference;
* ``owner`` -- the attribute that holds (and alone drains) the stream;
* ``domain`` -- the seed space the derivation consumes (collisions are
  only meaningful within one domain: a scenario seed and a training
  episode seed never feed the same derivation comparison);
* ``derive`` -- how seed material becomes ``default_rng`` entropy.

The derivations are *frozen to the pre-registry call sites*: for every
stream, ``stream_rng(name, seed)`` feeds ``default_rng`` exactly the
entropy the old inline expression did, so the migration is bit
identical (``tests/test_golden_traces.py`` is the gate, and
``tests/test_rngstreams.py`` pins each equivalence directly).

Derivation kinds and their static disjointness rules (enforced by the
``rng-stream-ownership`` replint rule in
:mod:`repro.analysis.rules_dataflow`):

* ``raw``     -- entropy ``seed`` (a bare int);
* ``affine``  -- entropy ``seed * mul + add`` (an int: overlaps every
  other int-valued derivation in its domain unless the congruences are
  disjoint -- any accepted overlap must carry a ``collision_note``);
* ``salted``  -- entropy ``(seed, salt)`` (a 2-tuple; disjoint from
  every int derivation and from other salts);
* ``indexed`` -- entropy ``(seed, index)`` for a caller-supplied small
  index (a 2-tuple; collides with a ``salted`` stream only if the salt
  is small enough to be a plausible index, see
  :data:`INDEX_SALT_FLOOR`);
* ``named``   -- entropy ``(salt, crc32(name), 0)`` (a 3-tuple, seed
  free: deterministic fallback streams keyed by an object's name);
* ``salted-indexed`` -- entropy ``(seed, salt, index)`` (a 3-tuple
  carrying both a per-family salt and a caller index: disjoint from
  every 1- and 2-element derivation by arity, from sibling
  salted-indexed streams by salt, and from ``named`` streams -- the
  only other 3-tuples -- because no ``named`` stream shares a domain
  with a salted-indexed one).

``SeedSequence`` treats different entropy *values* -- including
different tuple arities -- as different streams, which is what makes
the per-kind disjointness arguments sound.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["StreamDef", "STREAMS", "INDEX_SALT_FLOOR", "derive_seed",
           "stream_rng", "stream_table"]

#: A ``salted`` stream whose salt is below this floor could collide
#: with an ``indexed`` stream in the same domain (indices are small
#: integers: link positions, flow ids).  Salts must clear it.
INDEX_SALT_FLOOR = 1 << 16


@dataclass(frozen=True)
class StreamDef:
    """One declared RNG stream: owner, seed domain, and derivation."""

    name: str
    #: The attribute (or scope) that holds and exclusively drains the
    #: stream -- documentation for humans and for the ownership rule.
    owner: str
    #: Seed space the derivation consumes; collision analysis compares
    #: only streams sharing a domain.
    domain: str
    #: Derivation kind: raw | affine | salted | indexed | named |
    #: salted-indexed.
    derive: str
    #: ``salted``/``named``: the tuple salt.  Must clear
    #: :data:`INDEX_SALT_FLOOR` when any ``indexed`` stream shares the
    #: domain.
    salt: int | None = None
    #: ``affine``: entropy = seed * mul + add.
    mul: int | None = None
    add: int | None = None
    #: One-line justification for a *known, accepted* seed-space
    #: overlap with another stream in the same domain.  The ownership
    #: rule fails on undocumented overlaps and on notes whose overlap
    #: no longer exists (a stale note is a finding, like a stale
    #: fingerprint exclusion).
    collision_note: str | None = None
    #: Why this stream exists / what it feeds.
    reason: str = ""


#: The package's stream census.  Adding a ``default_rng`` call site to
#: ``netsim`` without declaring it here is a replint finding.
STREAMS: tuple[StreamDef, ...] = (
    StreamDef(
        name="sim.pacing",
        owner="netsim.network.Simulation.rng",
        domain="scenario",
        derive="raw",
        reason="send-pacing jitter; the root per-scenario stream"),
    StreamDef(
        name="sim.hop-dither",
        owner="netsim.network.Simulation._hop_rng",
        domain="scenario",
        derive="salted", salt=0x517CC1B7,
        reason="per-hop forwarding dither; separate from sim.pacing so "
               "hop events cannot shift the send-jitter sequence"),
    StreamDef(
        name="link.loss",
        owner="netsim.topology.TopologySpec.build -> Link.rng",
        domain="scenario",
        derive="indexed",
        reason="per-link Bernoulli wire-loss draws, keyed by the "
               "link's position in the spec"),
    StreamDef(
        name="link.fault-flap",
        owner="netsim.faults.FaultProcess._flap_rng",
        domain="scenario",
        derive="salted-indexed", salt=0x464C4150,  # "FLAP"
        reason="per-link flap-window jitter draws, keyed like "
               "link.loss by the link's position; a dedicated stream "
               "(and a second one for the loss chain below) so fault "
               "schedules can never shift the wire-loss sequence"),
    StreamDef(
        name="link.fault-loss",
        owner="netsim.faults.FaultProcess._loss_rng",
        domain="scenario",
        derive="salted-indexed", salt=0x47454C4F,  # "GELO"
        reason="per-link Gilbert-Elliott chain draws (one transition "
               "per offered packet, plus a loss draw in lossy states), "
               "in transmit order"),
    StreamDef(
        name="link.default",
        owner="netsim.link.Link.rng (no-rng fallback)",
        domain="link-fallback",
        derive="named", salt=0x6C696E6B,  # "link"
        reason="deterministic fallback when a Link is constructed "
               "without a generator: derived from the link name so "
               "two anonymous links no longer share one bitstream"),
    StreamDef(
        name="env.params",
        owner="netsim.env.CongestionControlEnv.rng",
        domain="env",
        derive="raw",
        collision_note="env.episode-link's affine image {7919*s + 1} "
                       "intersects raw env seeds; accepted because the "
                       "two streams feed disjoint mechanisms (episode "
                       "parameter draws vs. link wire loss) and the "
                       "derivation is frozen for bit-identity with "
                       "pre-registry training runs",
        reason="Table-3 episode parameter sampling in the gym env"),
    StreamDef(
        name="env.episode-link",
        owner="netsim.env.CongestionControlEnv.reset -> Link.rng",
        domain="env",
        derive="affine", mul=7919, add=1,
        collision_note="see env.params: affine image intersects raw "
                       "env seeds; frozen legacy derivation, disjoint "
                       "consumers",
        reason="per-episode link wire-loss stream in the gym env"),
    StreamDef(
        name="trace.synth",
        owner="netsim.traces synthetic-trace factories",
        domain="trace",
        derive="raw",
        reason="pre-generated synthetic bandwidth processes "
               "(random-walk, LEO-handover); content is fingerprinted, "
               "so the stream must be a pure function of the trace "
               "seed"),
)

_BY_NAME = {s.name: s for s in STREAMS}


def derive_seed(name: str, seed: int | None = None, *, index: int | None = None,
                key: str | None = None):
    """Entropy :func:`numpy.random.default_rng` receives for a stream.

    Exposed separately from :func:`stream_rng` so tests (and the
    replint ownership rule) can reason about seed material without
    constructing generators.
    """
    try:
        stream = _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown RNG stream {name!r}; declared: "
                       f"{sorted(_BY_NAME)}") from None
    if stream.derive == "raw":
        if seed is None:
            raise ValueError(f"stream {name!r} derives from a seed")
        return seed
    if stream.derive == "affine":
        if seed is None:
            raise ValueError(f"stream {name!r} derives from a seed")
        return seed * stream.mul + stream.add
    if stream.derive == "salted":
        if seed is None:
            raise ValueError(f"stream {name!r} derives from a seed")
        return (seed, stream.salt)
    if stream.derive == "indexed":
        if seed is None or index is None:
            raise ValueError(f"stream {name!r} derives from (seed, index)")
        return (seed, index)
    if stream.derive == "named":
        if key is None:
            raise ValueError(f"stream {name!r} derives from a string key")
        return (stream.salt, zlib.crc32(key.encode("utf-8")), 0)
    if stream.derive == "salted-indexed":
        if seed is None or index is None:
            raise ValueError(
                f"stream {name!r} derives from (seed, salt, index)")
        return (seed, stream.salt, index)
    raise ValueError(f"stream {name!r} has unknown derivation "
                     f"{stream.derive!r}")  # pragma: no cover


def stream_rng(name: str, seed: int | None = None, *, index: int | None = None,
               key: str | None = None) -> np.random.Generator:
    """Mint the declared stream ``name`` from its seed material.

    This is the only sanctioned ``default_rng`` construction site in
    the ``netsim`` package (the ``rng-stream-ownership`` rule enforces
    it); everything else receives a ready generator via parameter.
    """
    return np.random.default_rng(derive_seed(name, seed, index=index, key=key))


def stream_table() -> tuple[StreamDef, ...]:
    """The declared streams, in registry order (for docs and lint)."""
    return STREAMS
