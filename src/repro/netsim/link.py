"""Bottleneck link model: FIFO queue, drop-tail buffer, random loss.

The link is modelled as a single FIFO server whose service rate follows
a :class:`~repro.netsim.traces.BandwidthTrace`.  Rather than keeping an
explicit packet queue, the link tracks the time at which the server
will next be idle (``busy_until``); the backlog at time ``t`` is then
``(busy_until - t) * rate``, which is exact for piecewise-constant
rates within a busy period and is the same technique Aurora's simulator
uses.  Drop-tail behaviour falls out naturally: a packet arriving when
the backlog is at the buffer limit is discarded.

Random loss is an independent Bernoulli drop applied *after* queueing
(i.e. on the wire), matching the "random loss rate" knob of Table 3 and
Fig. 5(c).

``transmit()`` is the single hottest call of the event engine (once
per packet per hop, both directions), so it is allocation-free: the
outcome is a plain ``(delivered, drop_kind, depart_time, queue_delay)``
tuple rather than a result object, constant-rate links read a cached
rate instead of calling through the trace, and the drop threshold is
precomputed.  :class:`PropagationLink` additionally exposes
``pure_delay`` so the engine can skip the offer entirely on
pure-propagation pseudo-links.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.rngstreams import stream_rng
from repro.netsim.traces import BandwidthTrace, ConstantTrace

__all__ = ["Link", "PropagationLink"]


class Link:
    """A unidirectional bottleneck link.

    Parameters
    ----------
    trace:
        Capacity process in packets/second (a plain float is promoted to
        a :class:`ConstantTrace`).
    delay:
        One-way propagation delay in seconds (applied after the queue).
    queue_size:
        Buffer limit in packets (drop-tail).  ``0`` means no buffering:
        any packet arriving while the server is busy is dropped.
    loss_rate:
        Bernoulli random-loss probability.
    rng:
        Random generator for loss draws (shared with the simulation for
        reproducibility).
    name:
        Optional label used by :class:`~repro.netsim.topology.Topology`
        for path wiring and diagnostics.
    """

    #: One-way delay of a pure-propagation pseudo-link, or ``None`` for
    #: a real queued link.  The engine fast-paths ``pure_delay`` links
    #: (arrival = now + delay) without an offer -- see
    #: :class:`PropagationLink`, which is the only subclass setting it.
    pure_delay: float | None = None

    def __init__(self, trace: BandwidthTrace | float, delay: float,
                 queue_size: int, loss_rate: float = 0.0,
                 rng: np.random.Generator | None = None, name: str = ""):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if queue_size < 0:
            raise ValueError("queue_size must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.trace = trace  # property: also refreshes the cached rate
        self.delay = float(delay)
        self.queue_size = int(queue_size)
        self.loss_rate = float(loss_rate)
        # Fallback stream derived from the link *name*: two differently
        # named links no longer share one bitstream (the old shared
        # ``default_rng(0)`` made their loss draws identical).  Links
        # that need correlated or seed-controlled loss pass ``rng``
        # explicitly, as every builder in :mod:`repro.netsim.topology`
        # does.
        self.rng = rng if rng is not None else stream_rng("link.default",
                                                          key=name)
        self.name = name
        self.busy_until = 0.0
        #: Optional :class:`~repro.netsim.faults.FaultProcess` attached
        #: by the topology builder.  ``None`` (the default) keeps
        #: ``transmit()`` on the exact pre-fault fast path -- one
        #: attribute load and a ``None`` check, no float or RNG
        #: changes -- so faults-off runs stay bit-identical to the
        #: golden traces.
        self.fault = None
        # Counters for diagnostics/tests.
        self.delivered = 0
        self.dropped_buffer = 0
        self.dropped_random = 0
        self.dropped_fault = 0
        #: Timestamp of the most recent ``transmit()`` offer.  A FIFO
        #: server only sees time-ordered arrivals; the eager transit
        #: scheme violates that on shared downstream hops (it offers
        #: future-stamped packets interleaved with present ones), which
        #: ``reordered`` counts.  The event-driven scheduler keeps this
        #: at zero on every link.
        self.last_arrival = float("-inf")
        self.reordered = 0

    @property
    def trace(self) -> BandwidthTrace:
        """Capacity process; assigning one refreshes the cached rate."""
        return self._trace

    @trace.setter
    def trace(self, trace: BandwidthTrace | float) -> None:
        if isinstance(trace, (int, float)):
            trace = ConstantTrace(float(trace))
        self._trace = trace
        #: Cached service rate for constant traces (``None`` = look the
        #: rate up through the trace per offer).  Saves two method
        #: calls per transmit on the constant-rate grids that dominate
        #: the evaluation matrix; kept coherent here so replacing the
        #: trace mid-experiment can never simulate a stale rate.
        self._const_rate = trace.constant_rate()

    # --- queue state ------------------------------------------------------

    def bandwidth_at(self, t: float) -> float:
        """Instantaneous service rate (packets/second).

        Brownout faults scale the rate inside their windows; the scale
        is validated positive, so callers dividing by this never see
        zero.
        """
        rate = self._const_rate
        if rate is None:
            rate = self.trace.bandwidth_at(t)
        fault = self.fault
        if fault is not None:
            rate *= fault.capacity_scale(t)
        return rate

    def queue_delay_at(self, t: float) -> float:
        """Waiting time a packet arriving at ``t`` would spend queued."""
        return max(0.0, self.busy_until - t)

    def backlog_at(self, t: float) -> float:
        """Approximate queue occupancy (packets) at time ``t``."""
        return self.queue_delay_at(t) * self.bandwidth_at(t)

    # --- transmission -----------------------------------------------------

    def transmit(self, t: float, size: float = 1.0) -> tuple:
        """Offer one packet to the link at time ``t``.

        ``size`` scales the service demand relative to a nominal data
        packet (1.0): acknowledgements transiting a reverse link pass
        their bytes-ratio (e.g. 40/1500) so they occupy the wire --
        and the backlog, measured in packet-equivalents -- in
        proportion to their actual size.

        Returns the tuple ``(delivered, drop_kind, depart_time,
        queue_delay)``; ``depart_time`` is the time the packet reaches
        the far end of the link (queue + service + propagation) when
        delivered.  For buffer drops ``depart_time`` is the moment of
        the drop (the packet never leaves); for random drops it is the
        time the packet would have arrived (the drop happens on the
        wire, so downstream loss detection sees the normal timing).
        """
        if self.fault is not None:
            return self._transmit_faulted(t, size)
        last = self.last_arrival
        if t < last - 1e-12:
            self.reordered += 1
        if t > last:
            self.last_arrival = t
        rate = self._const_rate
        if rate is None:
            rate = self.trace.bandwidth_at(t)
        service = size / rate
        busy = self.busy_until
        queue_delay = busy - t
        if queue_delay < 0.0:
            queue_delay = 0.0
        # The buffer holds `queue_size` waiting packet-equivalents; the
        # packet in service occupies the server, not the buffer.
        if queue_delay * rate >= self.queue_size + 1.0 - 1e-9:
            self.dropped_buffer += 1
            return (False, "buffer", t, queue_delay)
        self.busy_until = (busy if busy > t else t) + service
        depart = t + queue_delay + service + self.delay
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.dropped_random += 1
            return (False, "random", depart, queue_delay)
        self.delivered += 1
        return (True, None, depart, queue_delay)

    def _transmit_faulted(self, t: float, size: float = 1.0) -> tuple:
        """The fault-aware twin of :meth:`transmit` (cold side path).

        Same contract and same float arithmetic where faults are
        inactive, plus three fault effects in order:

        * a ``drop``-policy outage discards the packet at ``t`` with
          ``drop_kind == "fault"`` (the engines' non-random drop
          branches handle the timing, exactly like a buffer drop);
        * a ``queue``-policy outage floors the busy horizon at the
          recovery time -- arrivals park behind it and replay on
          recovery -- while the drop-tail test measures backlog from
          the recovery time, so dead air doesn't count as queued
          packets;
        * brownouts scale the service rate; Gilbert-Elliott chains add
          a wire loss (reported as ``"random"`` so downstream loss
          timing and ack parking behave like the existing wire loss,
          but counted in ``dropped_fault``).
        """
        last = self.last_arrival
        if t < last - 1e-12:
            self.reordered += 1
        if t > last:
            self.last_arrival = t
        fault = self.fault
        busy = self.busy_until
        backlog_base = t
        outage = fault.outage_at(t)
        if outage is not None:
            recovery, policy = outage
            if policy == "drop":
                self.dropped_fault += 1
                wait = busy - t
                return (False, "fault", t, wait if wait > 0.0 else 0.0)
            if busy < recovery:
                busy = recovery
            backlog_base = recovery
        rate = self._const_rate
        if rate is None:
            rate = self.trace.bandwidth_at(t)
        scale = fault.capacity_scale(t)
        if scale != 1.0:
            rate *= scale
        service = size / rate
        queue_delay = busy - t
        if queue_delay < 0.0:
            queue_delay = 0.0
        backlog_time = busy - backlog_base
        if backlog_time < 0.0:
            backlog_time = 0.0
        if backlog_time * rate >= self.queue_size + 1.0 - 1e-9:
            self.dropped_buffer += 1
            return (False, "buffer", t, queue_delay)
        self.busy_until = (busy if busy > t else t) + service
        depart = t + queue_delay + service + self.delay
        if fault.wire_loss(t):
            self.dropped_fault += 1
            return (False, "random", depart, queue_delay)
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.dropped_random += 1
            return (False, "random", depart, queue_delay)
        self.delivered += 1
        return (True, None, depart, queue_delay)

    def reset(self) -> None:
        """Clear queue state and counters."""
        self.busy_until = 0.0
        self.delivered = 0
        self.dropped_buffer = 0
        self.dropped_random = 0
        self.dropped_fault = 0
        self.last_arrival = float("-inf")
        self.reordered = 0
        if self.fault is not None:
            self.fault.reset()

    # --- convenience --------------------------------------------------------

    @property
    def base_rtt(self) -> float:
        """Round-trip propagation time across this link (no queueing)."""
        return 2.0 * self.delay

    def bdp_packets(self, t: float = 0.0) -> float:
        """Bandwidth-delay product in packets at time ``t``."""
        return self.bandwidth_at(t) * self.base_rtt


class PropagationLink(Link):
    """A pure-propagation pseudo-link: fixed delay, no queue, no drops.

    Topologies use one of these as the default *reverse* path so acks
    and loss notices transit the return direction through the same
    ``transmit()`` interface as data packets, while reproducing the
    legacy scalar-``return_delay`` timing exactly: every packet departs
    at ``t + delay``, bit-for-bit, regardless of load.  Wiring real
    :class:`Link` objects into a path's reverse list replaces this with
    emergent reverse-path queueing.

    ``pure_delay`` (the same delay, non-``None`` only here) lets the
    engine's per-hop scheduler compute that arrival arithmetic inline
    -- the zero-work fast path -- without the call; ``transmit()``
    stays for direct callers and keeps the identical contract.
    """

    def __init__(self, delay: float, name: str = ""):
        super().__init__(trace=ConstantTrace(1.0), delay=delay,
                         queue_size=0, name=name)
        self.pure_delay = self.delay

    def transmit(self, t: float, size: float = 1.0) -> tuple:
        # Stateless on purpose: infinite capacity, zero service time.
        return (True, None, t + self.delay, 0.0)

    def queue_delay_at(self, t: float) -> float:
        return 0.0
