"""Discrete-event packet-level network simulator.

This package is the reproduction of the training/evaluation substrate
the paper builds on OpenAI Gym + Aurora's simulator (§5): Internet-like
bottleneck links with configurable bandwidth (optionally time-varying
via traces), one-way propagation delay, a finite drop-tail FIFO queue,
and Bernoulli random loss.

Layers, bottom-up:

* :mod:`repro.netsim.rngstreams` -- the named RNG-stream registry:
  every generator the package constructs is declared there (owner,
  seed domain, derivation) and minted via :func:`stream_rng`.
* :mod:`repro.netsim.traces` -- bandwidth processes (constant, step,
  random-walk, piecewise).
* :mod:`repro.netsim.packet` -- packet records.
* :mod:`repro.netsim.faults` -- declarative per-link fault schedules
  (flaps, Gilbert-Elliott bursty loss, brownouts, blackouts) and their
  deterministic runtime (:class:`FaultProcess`).
* :mod:`repro.netsim.link` -- the bottleneck link model.
* :mod:`repro.netsim.sender` -- rate-paced and window (ack-clocked)
  senders, monitor-interval statistics.
* :mod:`repro.netsim.topology` -- named links + per-flow paths with
  reverse-link routing (dumbbell, N-hop chain, parking lot, asymmetric
  dumbbell) and their declarative, fingerprintable specs.
* :mod:`repro.netsim.network` -- the event-driven simulation engine
  routing any number of flows over a topology.
* :mod:`repro.netsim.history` -- the eta-length statistics history that
  forms the RL state (§4.1).
* :mod:`repro.netsim.env` -- gym-style environments:
  :class:`CongestionControlEnv` (raw) and :class:`MoccEnv`
  (preference-aware state + dynamic reward, Eq. 2).
"""

from repro.netsim.rngstreams import STREAMS, StreamDef, stream_rng
from repro.netsim.traces import (
    BandwidthTrace,
    ConstantTrace,
    PiecewiseTrace,
    RandomWalkTrace,
    StepTrace,
    mbps_to_pps,
    pps_to_mbps,
)
from repro.netsim.packet import Packet
from repro.netsim.faults import (
    BlackoutWindow,
    FaultProcess,
    GilbertElliottLoss,
    LinkFlapSchedule,
    RateBrownout,
    fault_signature,
)
from repro.netsim.link import Link, PropagationLink
from repro.netsim.sender import MonitorIntervalStats, Flow
from repro.netsim.topology import (
    LinkDef,
    Path,
    PathDef,
    Topology,
    TopologySpec,
    chain,
    dumbbell,
    dumbbell_asymmetric,
    parking_lot,
)
from repro.netsim.network import Simulation, FlowSpec, FlowRecord
from repro.netsim.history import StatHistory
from repro.netsim.env import CongestionControlEnv, MoccEnv, RewardComponents

#: Engine cores selectable through the scenario ``engine=`` axis.
ENGINES = ("reference", "kernel")


def engine_class(engine: str = "reference") -> type[Simulation]:
    """Resolve an ``engine=`` axis value to a simulation class.

    ``"reference"`` is the pure-Python :class:`Simulation` (default;
    the golden-trace source of truth); ``"kernel"`` is the array-backed
    accelerated core (:class:`repro.netsim.kernel.KernelSimulation`,
    bit-identical by contract, optionally mypyc-compiled).  The kernel
    module is imported lazily so the default path never pays for it.
    """
    if engine == "reference":
        return Simulation
    if engine == "kernel":
        from repro.netsim.kernel import KernelSimulation
        return KernelSimulation
    raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")

__all__ = [
    "STREAMS",
    "StreamDef",
    "stream_rng",
    "BandwidthTrace",
    "ConstantTrace",
    "StepTrace",
    "RandomWalkTrace",
    "PiecewiseTrace",
    "mbps_to_pps",
    "pps_to_mbps",
    "Packet",
    "BlackoutWindow",
    "FaultProcess",
    "GilbertElliottLoss",
    "LinkFlapSchedule",
    "RateBrownout",
    "fault_signature",
    "Link",
    "PropagationLink",
    "MonitorIntervalStats",
    "Flow",
    "Path",
    "Topology",
    "LinkDef",
    "PathDef",
    "TopologySpec",
    "chain",
    "dumbbell",
    "dumbbell_asymmetric",
    "parking_lot",
    "Simulation",
    "FlowSpec",
    "FlowRecord",
    "ENGINES",
    "engine_class",
    "StatHistory",
    "CongestionControlEnv",
    "MoccEnv",
    "RewardComponents",
]
