"""Fixed-length history of network statistics -- the RL state (§4.1).

The paper feeds the agent "a fixed-length history of network statistics
instead of the most recent one ... to capture the trends and changes of
network dynamics": ``g_(t,eta) = <g_{t-eta}, ..., g_t>`` where each
``g_t = <l_t, p_t, q_t>`` (sending ratio, latency ratio, latency
gradient).  History length ``eta = 10`` (Table 2).

**Deviation (documented in DESIGN.md):** a fourth statistic ``r_t`` --
the current pacing rate over the maximum throughput observed so far --
is appended to each vector.  The paper's three statistics are identical
at *every* sub-capacity operating point (send ratio 1, latency ratio 1,
gradient 0), so a policy cannot tell 10 % utilisation from 99 % and the
"hold the rate near capacity" optimum is unlearnable at small training
budgets.  The max-throughput normaliser is the paper's own online link
capacity estimator (§4.1), so ``r_t`` is sender-observable and
scale-free.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.netsim.sender import Flow, LATENCY_RATIO_CAP, MonitorIntervalStats

__all__ = ["StatHistory", "GRADIENT_SCALE", "RATE_RATIO_CAP"]

#: Latency gradients are tiny (seconds of RTT change per second); scale
#: them so all features share a comparable numeric range.
GRADIENT_SCALE = 10.0
#: Cap on the rate / max-throughput feature.
RATE_RATIO_CAP = 4.0


class StatHistory:
    """Sliding window of the last ``eta`` statistic vectors."""

    FEATURES = 4  # l_t, p_t, q_t, r_t

    def __init__(self, length: int):
        if length < 1:
            raise ValueError("history length must be >= 1")
        self.length = length
        self._window: deque[np.ndarray] = deque(maxlen=length)
        self.reset()

    def reset(self) -> None:
        """Fill with the neutral statistic <l=1, p=1, q=0, r=1>."""
        self._window.clear()
        for _ in range(self.length):
            self._window.append(np.array([1.0, 1.0, 0.0, 1.0]))

    def push(self, flow: Flow, stats: MonitorIntervalStats) -> None:
        """Append the statistics of one finished monitor interval."""
        send_ratio = stats.send_ratio()
        latency_ratio = flow.latency_ratio(stats)
        gradient = float(np.clip(stats.latency_gradient * GRADIENT_SCALE, -10.0, 10.0))
        max_thr = flow.max_throughput_seen
        if max_thr and max_thr > 0:
            rate_ratio = float(np.clip(stats.rate_pps / max_thr, 0.0, RATE_RATIO_CAP))
        else:
            rate_ratio = 1.0
        self._window.append(np.array([send_ratio, latency_ratio, gradient, rate_ratio]))

    def push_raw(self, send_ratio: float, latency_ratio: float, gradient: float,
                 rate_ratio: float = 1.0) -> None:
        """Append a raw statistic vector (used by tests and replayers)."""
        self._window.append(np.array([
            float(np.clip(send_ratio, 0.0, 10.0)),
            float(np.clip(latency_ratio, 0.0, LATENCY_RATIO_CAP)),
            float(np.clip(gradient, -10.0, 10.0)),
            float(np.clip(rate_ratio, 0.0, RATE_RATIO_CAP)),
        ]))

    def vector(self) -> np.ndarray:
        """Flattened state: ``4 * eta`` floats, oldest first."""
        return np.concatenate(list(self._window))

    @property
    def dim(self) -> int:
        return self.FEATURES * self.length
