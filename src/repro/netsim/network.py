"""The discrete-event simulation engine and flow topologies.

The engine advances a heap of timestamped events over the links of a
:class:`~repro.netsim.topology.Topology`.  Each flow follows a named
*path* (an ordered forward link subset plus an ordered reverse link
list its acks transit), so a single simulation can mix through traffic
and cross traffic over different link subsets in either direction --
single-bottleneck dumbbells (all the paper's experiments) are just the
one-link, one-path, propagation-return special case, and a plain
``Link`` or link list is still accepted and promoted to that shape.

Event kinds:

* ``send``  -- a flow attempts to emit its next packet;
* ``rcv``   -- the receiver observes the packet (or the gap a drop
  left) and emits the ack / loss notice onto the path's *reverse
  links*; deferring the reverse transit to this wall-clock moment
  keeps every link's arrival stream in time order, so acks compete
  honestly with reverse-direction data instead of poisoning shared
  queues with future-stamped transits;
* ``ack``   -- a delivered packet's acknowledgement reaches the sender,
  having transited the reverse links (queueing behind reverse cross
  traffic; pure propagation only on the default pseudo-link);
* ``loss``  -- the sender learns a packet was lost (about one path RTT
  after the drop, approximating duplicate-ack/timeout detection; the
  notice charges estimated queueing on the links past the drop and
  transits the reverse path like an ack);
* ``mi``    -- a flow's monitor-interval boundary.

The engine supports incremental execution (``run(until=...)``) so the
gym-style environments can interleave RL decisions with simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats
from repro.netsim.topology import Topology

__all__ = ["FlowSpec", "FlowRecord", "Simulation"]

#: Pacing-rate clamps (packets/second) applied when scheduling sends.
MIN_RATE_PPS = 0.5
#: Cap on rate relative to the path bottleneck's maximum capacity.
MAX_RATE_FACTOR = 8.0
#: Fallback monitor-interval duration when a path has zero delay.
MIN_MI_DURATION = 0.01
#: Wire size of an acknowledgement (bytes) -- scales the service an
#: ack/loss notice demands from a queued reverse link relative to the
#: flow's data packets.
ACK_BYTES = 40


@dataclass
class FlowSpec:
    """Declarative description of one flow for :class:`Simulation`.

    ``path`` names the topology path the flow traverses; ``None`` uses
    the topology's default path (the whole link list for the legacy
    single-path constructor).
    """

    controller: Controller
    start_time: float = 0.0
    stop_time: float = float("inf")
    packet_bytes: int = 1500
    mi_duration: float | None = None
    keep_packets: bool = False
    path: str | None = None


@dataclass
class FlowRecord:
    """Aggregate results of one flow after a simulation run."""

    flow_id: int
    scheme: str
    mean_throughput_pps: float
    mean_throughput_mbps: float
    mean_utilization: float
    mean_rtt: float | None
    base_rtt: float
    loss_rate: float
    records: list[MonitorIntervalStats] = field(repr=False, default_factory=list)

    @property
    def latency_ratio(self) -> float:
        """Mean RTT over propagation RTT (>= 1.0 in a healthy run)."""
        if self.mean_rtt is None or self.base_rtt <= 0:
            return float("inf")
        return self.mean_rtt / self.base_rtt


class Simulation:
    """Event-driven simulation of flows routed over a topology."""

    def __init__(self, links: Link | list[Link] | Topology, specs: list[FlowSpec],
                 duration: float, seed: int = 0, jitter: float = 0.02):
        if isinstance(links, Topology):
            self.topology = links
        else:
            link_list = [links] if isinstance(links, Link) else list(links)
            if not link_list:
                raise ValueError("need at least one link")
            self.topology = Topology.single_path(link_list)
        self.links = self.topology.all_links()
        self.duration = float(duration)
        self.jitter = float(jitter)
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self._heap: list[tuple[float, int, str, int, Packet | None]] = []
        self._seq = 0

        #: Base RTT of the topology's default path -- the single-path
        #: quantity legacy callers (gym envs, single-flow runners) read.
        self.base_rtt = self.topology.path().base_rtt

        self.flows: list[Flow] = []
        for spec in specs:
            path = self.topology.path(spec.path)
            flow = Flow(
                flow_id=len(self.flows), controller=spec.controller,
                packet_bytes=spec.packet_bytes, start_time=spec.start_time,
                stop_time=min(spec.stop_time, duration),
                mi_duration=spec.mi_duration, keep_packets=spec.keep_packets)
            flow.path_name = path.name
            flow.links = path.links
            flow.reverse_links = path.reverse_links
            flow.base_rtt = path.base_rtt
            flow.return_delay = path.return_delay
            flow.max_rate = MAX_RATE_FACTOR * min(
                link.trace.max_bandwidth() for link in path.links)
            if flow.mi_duration is None:
                flow.mi_duration = max(flow.base_rtt, MIN_MI_DURATION)
            self.flows.append(flow)
            self._push(spec.start_time, "start", flow.flow_id, None)

    # --- event plumbing -----------------------------------------------------

    def _push(self, time: float, kind: str, flow_id: int, packet: Packet | None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, flow_id, packet))

    def run(self, until: float | None = None) -> None:
        """Process events up to ``until`` (default: the full duration)."""
        horizon = self.duration if until is None else min(until, self.duration)
        while self._heap and self._heap[0][0] <= horizon:
            time, _, kind, flow_id, packet = heapq.heappop(self._heap)
            self.now = time
            flow = self.flows[flow_id]
            if kind == "start":
                self._handle_start(flow)
            elif kind == "send":
                self._handle_send(flow)
            elif kind == "rcv":
                self._handle_receive(flow, packet)
            elif kind == "ack":
                self._handle_ack(flow, packet)
            elif kind == "loss":
                self._handle_loss(flow, packet)
            elif kind == "mi":
                self._handle_mi(flow)
        self.now = max(self.now, horizon)

    def run_all(self) -> list[FlowRecord]:
        """Run to completion and return per-flow summaries."""
        self.run()
        self._finalize()
        return [self.summary(flow.flow_id) for flow in self.flows]

    def _finalize(self) -> None:
        for flow in self.flows:
            end = min(flow.stop_time, self.duration)
            if flow.started and (flow.mi_sent or flow.mi_acked or flow.mi_lost):
                # Acks/losses for packets sent before the stop keep
                # arriving (and being accounted) after ``stop_time``;
                # close the final MI at the true last-event time so a
                # churned flow's throughput is not inflated by a span
                # clamped short of its contents.
                end = min(max(end, flow.last_event_time), self.duration)
                if end > flow.mi_start:
                    self._close_mi(flow, end)

    # --- event handlers -------------------------------------------------------

    def _handle_start(self, flow: Flow) -> None:
        flow.started = True
        flow.mi_start = self.now
        flow.controller.on_flow_start(flow, self.now)
        self._push(self.now + flow.mi_duration, "mi", flow.flow_id, None)
        self._schedule_send(flow, self.now)

    def _handle_send(self, flow: Flow) -> None:
        flow.send_scheduled = False
        if flow.stopped or self.now >= flow.stop_time:
            return
        controller = flow.controller
        if controller.kind == "window":
            cwnd = controller.cwnd(self.now)
            if flow.inflight >= cwnd:
                return  # re-armed by the next ack/loss
            self._emit_packet(flow)
            if flow.inflight < cwnd:
                # Pace the remaining window over one smoothed RTT.
                srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
                gap = srtt / max(cwnd, 1.0)
                self._schedule_send(flow, self.now + gap)
        else:
            rate = controller.pacing_rate(self.now)
            rate = min(max(rate, MIN_RATE_PPS), flow.max_rate)
            cap = controller.inflight_cap(self.now)
            if cap is None or flow.inflight < cap:
                self._emit_packet(flow)
            # Small pacing jitter: without it, equal-rate flows phase-lock
            # (one flow's packet always reaches a full queue first and the
            # other takes every drop) -- an artifact no real pacer has.
            gap = (1.0 / rate) * (1.0 + self.jitter * (self.rng.random() - 0.5))
            self._schedule_send(flow, self.now + gap)

    def _schedule_send(self, flow: Flow, time: float) -> None:
        if flow.send_scheduled or flow.stopped:
            return
        if time >= flow.stop_time:
            return
        flow.send_scheduled = True
        self._push(max(time, self.now), "send", flow.flow_id, None)

    def _emit_packet(self, flow: Flow) -> None:
        packet = Packet(flow_id=flow.flow_id, seq=flow.next_seq,
                        send_time=self.now, size_bytes=flow.packet_bytes)
        flow.next_seq += 1
        flow.note_sent(packet)

        cursor = self.now
        queue_delay = 0.0
        delivered = True
        for hop, link in enumerate(flow.links):
            result = link.transmit(cursor)
            queue_delay += result.queue_delay
            if not result.delivered:
                delivered = False
                packet.dropped = True
                packet.drop_kind = result.drop_kind
                # The sender learns of the loss roughly when the gap
                # would have been observed at the receiver plus the
                # reverse-path transit.  A random drop happens on the
                # wire, so ``depart_time`` already carries the normal
                # queue + service + propagation timing of the dropping
                # link; a buffer drop never occupies the queue, so
                # charge the timing a surviving packet just behind it
                # would see.  The links past the drop charge their
                # *current* queue occupancy plus service, not bare
                # propagation -- the gap is observed at the receiver
                # only after the packets already queued downstream
                # drain ahead of it.
                if result.drop_kind == "random":
                    loss_cursor = result.depart_time
                else:
                    loss_cursor = cursor + result.queue_delay + link.delay
                for l in flow.links[hop + 1:]:
                    loss_cursor += (l.queue_delay_at(loss_cursor)
                                    + 1.0 / l.bandwidth_at(loss_cursor)
                                    + l.delay)
                self._push(loss_cursor, "rcv", flow.flow_id, packet)
                break
            cursor = result.depart_time
        packet.queue_delay = queue_delay

        if delivered:
            packet.arrival_time = cursor
            self._push(cursor, "rcv", flow.flow_id, packet)

    def _handle_receive(self, flow: Flow, packet: Packet) -> None:
        """The receiver observed a packet (or a drop's gap): send the
        ack / loss notice back over the flow's reverse links."""
        arrival, queue_delay = self._transit_reverse(flow, self.now)
        if packet.dropped:
            self._push(arrival, "loss", flow.flow_id, packet)
        else:
            packet.ack_time = arrival
            packet.ack_queue_delay = queue_delay
            self._push(arrival, "ack", flow.flow_id, packet)

    def _transit_reverse(self, flow: Flow, cursor: float) -> tuple[float, float]:
        """Carry an ack/loss notice over the flow's reverse links.

        Returns ``(arrival_time_at_sender, accumulated_queue_delay)``.
        Acks occupy reverse queues and compete with reverse-direction
        data for service, at their true wire size (:data:`ACK_BYTES`
        over the flow's packet size -- a 40 B ack takes ~1/37 the
        service of a 1500 B data packet, so pure ack traffic only
        congests a reverse link when the asymmetry really is that
        extreme).  Acknowledgement information is cumulative, so a
        congested reverse hop shows up as *delay*, never silent loss:
        a dropped ack is delivered with the timing a packet just
        behind the drop would see.
        """
        size = ACK_BYTES / flow.packet_bytes
        queue_delay = 0.0
        for link in flow.reverse_links:
            result = link.transmit(cursor, size=size)
            queue_delay += result.queue_delay
            if result.delivered or result.drop_kind == "random":
                # A random drop's depart_time already carries the full
                # queue + service + propagation timing.
                cursor = result.depart_time
            else:
                cursor += (result.queue_delay
                           + size / link.bandwidth_at(cursor) + link.delay)
        return cursor, queue_delay

    def _handle_ack(self, flow: Flow, packet: Packet) -> None:
        flow.note_ack(packet, self.now)
        flow.controller.on_ack(flow, packet, self.now)
        self._clock_window(flow)

    def _handle_loss(self, flow: Flow, packet: Packet) -> None:
        flow.note_loss(packet, self.now)
        flow.controller.on_loss(flow, packet, self.now)
        self._clock_window(flow)

    def _clock_window(self, flow: Flow) -> None:
        """Ack-clocking: window flows send as soon as the window opens."""
        if flow.stopped or flow.controller.kind != "window":
            return
        if flow.inflight < flow.controller.cwnd(self.now):
            self._schedule_send(flow, self.now)

    def _handle_mi(self, flow: Flow) -> None:
        if flow.stopped:
            return
        if self.now >= flow.stop_time:
            flow.stopped = True
            return
        self._close_mi(flow, self.now)
        self._push(self.now + flow.mi_duration, "mi", flow.flow_id, None)

    def _close_mi(self, flow: Flow, now: float) -> None:
        capacity = self._bottleneck_capacity(flow, flow.mi_start, now)
        rate = self._effective_rate(flow)
        stats = flow.finish_mi(now, capacity, flow.base_rtt, rate)
        flow.controller.on_mi(flow, stats, now)

    # --- helpers ----------------------------------------------------------------

    def _bottleneck_capacity(self, flow: Flow, t0: float, t1: float) -> float:
        return min(link.trace.mean_bandwidth(t0, t1, samples=9)
                   for link in flow.links)

    def _effective_rate(self, flow: Flow) -> float:
        controller = flow.controller
        if controller.kind == "rate":
            return controller.pacing_rate(self.now)
        srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
        return controller.cwnd(self.now) / srtt

    def summary(self, flow_id: int) -> FlowRecord:
        """Aggregate results for one flow."""
        flow = self.flows[flow_id]
        thr_pps = flow.mean_throughput_pps()
        return FlowRecord(
            flow_id=flow_id,
            scheme=flow.controller.name,
            mean_throughput_pps=thr_pps,
            mean_throughput_mbps=thr_pps * flow.packet_bytes * 8 / 1e6,
            mean_utilization=flow.mean_utilization(),
            mean_rtt=flow.mean_rtt(),
            base_rtt=flow.base_rtt,
            loss_rate=flow.overall_loss_rate(),
            records=list(flow.records),
        )
