"""The discrete-event simulation engine and flow topologies.

The engine advances a heap of timestamped events over the links of a
:class:`~repro.netsim.topology.Topology`.  Each flow follows a named
*path* (an ordered forward link subset plus an ordered reverse link
list its acks transit), so a single simulation can mix through traffic
and cross traffic over different link subsets in either direction --
single-bottleneck dumbbells (all the paper's experiments) are just the
one-link, one-path, propagation-return special case, and a plain
``Link`` or link list is still accepted and promoted to that shape.

Event kinds:

* ``send``  -- a flow attempts to emit its next packet;
* ``hop``   -- the packet arrives at its next link (forward data or a
  reverse-walking ack/loss notice) and is offered to that link's queue
  at the *current* simulator clock.  This is the unified per-hop
  scheduler: a packet transits its first hop synchronously when it
  enters a direction and every later hop as a deferred event at its
  true arrival time, so every shared link sees in-order arrivals from
  all flows in both directions;
* ``rcv``   -- the receiver observes the packet (or the gap a drop
  left) and its ack / loss notice starts walking the path's *reverse
  links* through the same per-hop scheduler;
* ``ack``   -- a delivered packet's acknowledgement reaches the sender,
  having transited the reverse links (queueing behind reverse cross
  traffic; pure propagation only on the default pseudo-link);
* ``loss``  -- the sender learns a packet was lost (about one path RTT
  after the drop, approximating duplicate-ack/timeout detection; the
  notice charges estimated queueing on the links past the drop and
  transits the reverse path like an ack);
* ``rto``   -- retransmit-timeout fallback for an acknowledgement that
  was buffer-dropped on a queued reverse link: if no later cumulative
  ack reached the sender first, the packet is surfaced as a loss (the
  spurious-timeout behaviour of a real sender);
* ``mi``    -- a flow's monitor-interval boundary.

``transit="eager"`` retains the pre-refactor scheme -- every forward
hop transited at emit time with a future-stamped cursor, the reverse
walk collapsed into the ``rcv`` handler, buffer-dropped acks delivered
late instead of lost -- as a frozen comparison twin.  Single-hop
forward paths with the default pure-propagation return are bit
identical between the two modes (neither schedules any intermediate
event); multi-hop paths diverge exactly where eager future-stamping
misstates queue occupancy on shared hops.

The engine supports incremental execution (``run(until=...)``) so the
gym-style environments can interleave RL decisions with simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.sender import ACK_BYTES, Controller, Flow, MonitorIntervalStats
from repro.netsim.topology import Topology

__all__ = ["FlowSpec", "FlowRecord", "Simulation"]

#: Pacing-rate clamps (packets/second) applied when scheduling sends.
MIN_RATE_PPS = 0.5
#: Cap on rate relative to the path bottleneck's maximum capacity.
MAX_RATE_FACTOR = 8.0
#: Fallback monitor-interval duration when a path has zero delay.
MIN_MI_DURATION = 0.01
# ACK_BYTES (re-exported from repro.netsim.sender): default ack wire
# size in bytes -- scales the service an ack/loss notice demands from
# a queued reverse link relative to the flow's data packets.  A path
# can override it (``PathDef(ack_bytes=...)`` / :attr:`Path.ack_bytes`)
# for stacks with larger ack frames (SACK blocks, QUIC ack ranges,
# link-layer framing).
#: Retransmit-timeout multiple of the smoothed RTT used when an ack is
#: buffer-dropped on the reverse path and no later cumulative ack
#: recovers it -- the coarse ``RTO = srtt + 4*rttvar`` of a real stack
#: collapsed to one factor (the simulator does not track rttvar).
ACK_RTO_FACTOR = 3.0
#: Default per-hop forwarding dither, as a fraction of the next link's
#: packet service time, applied to *deferred* hop arrivals only (never
#: a direction's first hop, preserving single-hop bit-identity).
#: Equal-rate links in series otherwise phase-lock: an upstream queue
#: re-serializes its flow onto a deterministic service grid, and at a
#: full downstream queue the same flow then loses the race for every
#: freed buffer slot on exact float ties -- permanent starvation no
#: store-and-forward device exhibits, the per-hop analogue of the
#: pacing jitter ``_handle_send`` applies.
HOP_JITTER_FACTOR = 0.5


@dataclass
class FlowSpec:
    """Declarative description of one flow for :class:`Simulation`.

    ``path`` names the topology path the flow traverses; ``None`` uses
    the topology's default path (the whole link list for the legacy
    single-path constructor).
    """

    controller: Controller
    start_time: float = 0.0
    stop_time: float = float("inf")
    packet_bytes: int = 1500
    mi_duration: float | None = None
    keep_packets: bool = False
    path: str | None = None


@dataclass
class FlowRecord:
    """Aggregate results of one flow after a simulation run."""

    flow_id: int
    scheme: str
    mean_throughput_pps: float
    mean_throughput_mbps: float
    mean_utilization: float
    mean_rtt: float | None
    base_rtt: float
    loss_rate: float
    records: list[MonitorIntervalStats] = field(repr=False, default_factory=list)

    @property
    def latency_ratio(self) -> float:
        """Mean RTT over propagation RTT (>= 1.0 in a healthy run)."""
        if self.mean_rtt is None or self.base_rtt <= 0:
            return float("inf")
        return self.mean_rtt / self.base_rtt


class Simulation:
    """Event-driven simulation of flows routed over a topology.

    ``transit`` selects the hop-transit scheme: ``"event"`` (default)
    walks every packet link by link at its true per-hop arrival times;
    ``"eager"`` is the pre-refactor engine that computed all forward
    hop transits at emit time (kept as the comparison twin for the
    bit-identity and divergence guarantees -- see the module
    docstring).
    """

    def __init__(self, links: Link | list[Link] | Topology, specs: list[FlowSpec],
                 duration: float, seed: int = 0, jitter: float = 0.02,
                 transit: str = "event",
                 hop_jitter: float = HOP_JITTER_FACTOR):
        if transit not in ("event", "eager"):
            raise ValueError(f"unknown transit mode {transit!r}; "
                             f"use 'event' or 'eager'")
        self.transit = transit
        self.hop_jitter = float(hop_jitter)
        if isinstance(links, Topology):
            self.topology = links
        else:
            link_list = [links] if isinstance(links, Link) else list(links)
            if not link_list:
                raise ValueError("need at least one link")
            self.topology = Topology.single_path(link_list)
        self.links = self.topology.all_links()
        self.duration = float(duration)
        self.jitter = float(jitter)
        self.rng = np.random.default_rng(seed)
        #: Dedicated stream for per-hop forwarding dither: hop events
        #: must not consume ``self.rng``, or the send-pacing jitter
        #: sequence (and with it every single-hop race) would shift
        #: relative to the eager twin.
        self._hop_rng = np.random.default_rng((seed, 0x517CC1B7))
        self.now = 0.0
        self._heap: list[tuple[float, int, str, int, Packet | None]] = []
        self._seq = 0

        #: Base RTT of the topology's default path -- the single-path
        #: quantity legacy callers (gym envs, single-flow runners) read.
        self.base_rtt = self.topology.path().base_rtt

        self.flows: list[Flow] = []
        for spec in specs:
            path = self.topology.path(spec.path)
            flow = Flow(
                flow_id=len(self.flows), controller=spec.controller,
                packet_bytes=spec.packet_bytes, start_time=spec.start_time,
                stop_time=min(spec.stop_time, duration),
                mi_duration=spec.mi_duration, keep_packets=spec.keep_packets)
            flow.path_name = path.name
            flow.links = path.links
            flow.reverse_links = path.reverse_links
            flow.base_rtt = path.base_rtt
            flow.return_delay = path.return_delay
            flow.ack_bytes = (ACK_BYTES if path.ack_bytes is None
                              else path.ack_bytes)
            flow.max_rate = MAX_RATE_FACTOR * min(
                link.trace.max_bandwidth() for link in path.links)
            if flow.mi_duration is None:
                flow.mi_duration = max(flow.base_rtt, MIN_MI_DURATION)
            self.flows.append(flow)
            self._push(spec.start_time, "start", flow.flow_id, None)

    # --- event plumbing -----------------------------------------------------

    def _push(self, time: float, kind: str, flow_id: int, packet: Packet | None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, flow_id, packet))

    def run(self, until: float | None = None) -> None:
        """Process events up to ``until`` (default: the full duration)."""
        horizon = self.duration if until is None else min(until, self.duration)
        while self._heap and self._heap[0][0] <= horizon:
            time, _, kind, flow_id, packet = heapq.heappop(self._heap)
            self.now = time
            flow = self.flows[flow_id]
            if kind == "start":
                self._handle_start(flow)
            elif kind == "send":
                self._handle_send(flow)
            elif kind == "hop":
                self._advance_packet(flow, packet)
            elif kind == "rcv":
                self._handle_receive(flow, packet)
            elif kind == "ack":
                self._handle_ack(flow, packet)
            elif kind == "loss":
                self._handle_loss(flow, packet)
            elif kind == "rto":
                self._handle_ack_rto(flow, packet)
            elif kind == "mi":
                self._handle_mi(flow)
        self.now = max(self.now, horizon)

    def run_all(self) -> list[FlowRecord]:
        """Run to completion and return per-flow summaries."""
        self.run()
        self._finalize()
        return [self.summary(flow.flow_id) for flow in self.flows]

    def _finalize(self) -> None:
        for flow in self.flows:
            end = min(flow.stop_time, self.duration)
            if flow.started and (flow.mi_sent or flow.mi_acked or flow.mi_lost):
                # Acks/losses for packets sent before the stop keep
                # arriving (and being accounted) after ``stop_time``;
                # close the final MI at the true last-event time so a
                # churned flow's throughput is not inflated by a span
                # clamped short of its contents.
                end = min(max(end, flow.last_event_time), self.duration)
                if end > flow.mi_start:
                    self._close_mi(flow, end)

    # --- event handlers -------------------------------------------------------

    def _handle_start(self, flow: Flow) -> None:
        flow.started = True
        flow.mi_start = self.now
        flow.controller.on_flow_start(flow, self.now)
        self._push(self.now + flow.mi_duration, "mi", flow.flow_id, None)
        self._schedule_send(flow, self.now)

    def _handle_send(self, flow: Flow) -> None:
        flow.send_scheduled = False
        if flow.stopped or self.now >= flow.stop_time:
            return
        controller = flow.controller
        if controller.kind == "window":
            cwnd = controller.cwnd(self.now)
            if flow.inflight >= cwnd:
                return  # re-armed by the next ack/loss
            self._emit_packet(flow)
            if flow.inflight < cwnd:
                # Pace the remaining window over one smoothed RTT.
                srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
                gap = srtt / max(cwnd, 1.0)
                self._schedule_send(flow, self.now + gap)
        else:
            rate = controller.pacing_rate(self.now)
            rate = min(max(rate, MIN_RATE_PPS), flow.max_rate)
            cap = controller.inflight_cap(self.now)
            if cap is None or flow.inflight < cap:
                self._emit_packet(flow)
            # Small pacing jitter: without it, equal-rate flows phase-lock
            # (one flow's packet always reaches a full queue first and the
            # other takes every drop) -- an artifact no real pacer has.
            gap = (1.0 / rate) * (1.0 + self.jitter * (self.rng.random() - 0.5))
            self._schedule_send(flow, self.now + gap)

    def _schedule_send(self, flow: Flow, time: float) -> None:
        if flow.send_scheduled or flow.stopped:
            return
        if time >= flow.stop_time:
            return
        flow.send_scheduled = True
        self._push(max(time, self.now), "send", flow.flow_id, None)

    def _emit_packet(self, flow: Flow) -> None:
        packet = Packet(flow_id=flow.flow_id, seq=flow.next_seq,
                        send_time=self.now, size_bytes=flow.packet_bytes)
        flow.next_seq += 1
        flow.note_sent(packet)
        if self.transit == "eager":
            self._emit_eager(flow, packet)
        else:
            # The packet enters the forward direction now: hop 0 is
            # transited synchronously (its arrival time *is* the
            # current clock), later hops via deferred "hop" events.
            self._advance_packet(flow, packet)

    # --- unified per-hop scheduler (transit="event") -------------------------

    def _advance_packet(self, flow: Flow, packet: Packet) -> None:
        """Offer ``packet`` to its next link at the current clock.

        One code path walks both directions: forward data over
        ``flow.links`` and, once the receiver has observed the packet
        (``packet.reversing``), its ack / loss notice over
        ``flow.reverse_links`` at the flow's ack wire size.  Every
        ``link.transmit`` happens at the true arrival time, so a shared
        link's queue sees one time-ordered arrival stream from all
        flows -- the property the eager scheme broke with
        future-stamped transits.
        """
        if packet.reversing:
            self._advance_reverse(flow, packet)
            return
        link = flow.links[packet.hop]
        result = link.transmit(self.now)
        packet.queue_delay += result.queue_delay
        if not result.delivered:
            packet.dropped = True
            packet.drop_kind = result.drop_kind
            # The receiver observes the gap roughly when the dropped
            # packet would have arrived.  A random drop happens on the
            # wire, so ``depart_time`` already carries the normal
            # queue + service + propagation timing of the dropping
            # link; a buffer drop never occupies the queue, so charge
            # the timing a surviving packet just behind it would see.
            # The links past the drop charge their *current* queue
            # occupancy plus service, not bare propagation -- the gap
            # is observed at the receiver only after the packets
            # already queued downstream drain ahead of it.
            if result.drop_kind == "random":
                cursor = result.depart_time
            else:
                cursor = self.now + result.queue_delay + link.delay
            for l in flow.links[packet.hop + 1:]:
                cursor += (l.queue_delay_at(cursor)
                           + 1.0 / l.bandwidth_at(cursor) + l.delay)
            self._push(cursor, "rcv", flow.flow_id, packet)
            return
        packet.hop += 1
        if packet.hop < len(flow.links):
            arrival = self._dither_arrival(flow, packet, result.depart_time)
            self._push(arrival, "hop", flow.flow_id, packet)
        else:
            packet.arrival_time = result.depart_time
            self._push(result.depart_time, "rcv", flow.flow_id, packet)

    def _dither_arrival(self, flow: Flow, packet: Packet, depart: float) -> float:
        """Forwarding dither for a deferred hop arrival.

        Adds up to ``hop_jitter`` of the next link's service time for
        this packet (store-and-forward processing variance; see
        :data:`HOP_JITTER_FACTOR` for the phase-locking artifact it
        prevents), clamped to the flow's latest scheduled arrival at
        that link so a flow's packets stay in FIFO order on every hop.
        Never applied to a direction's first hop or to the final
        receiver/sender arrival, so single-hop forward paths and
        pure-propagation returns keep their exact timing.
        """
        links = flow.reverse_links if packet.reversing else flow.links
        if self.hop_jitter > 0.0:
            size = flow.ack_size if packet.reversing else 1.0
            service = size / links[packet.hop].bandwidth_at(depart)
            depart += self.hop_jitter * self._hop_rng.random() * service
        key = (packet.reversing, packet.hop)
        arrival = max(depart, flow.hop_arrival_floor.get(key, 0.0))
        flow.hop_arrival_floor[key] = arrival
        return arrival

    def _advance_reverse(self, flow: Flow, packet: Packet) -> None:
        """One reverse hop of an ack / loss notice at the current clock.

        Acks occupy reverse queues and compete with reverse-direction
        data for service at their true wire size (``flow.ack_bytes``
        over the flow's packet size).  A *loss notice* is never lost --
        loss information is implied by every later cumulative ack, so a
        congested reverse hop shows up as delay: a buffer-dropped
        notice is delivered with the timing a packet just behind the
        drop would see.  A buffer-dropped *ack*, however, really is
        lost: the packet parks in ``flow.pending_acks`` until a later
        cumulative ack reaches the sender, with an ``"rto"`` event as
        the retransmit-timeout fallback.  A random (wire) drop keeps
        the delivered-at-normal-timing semantics for both: cumulative
        acknowledgement covers a corrupted ack within a packet gap,
        indistinguishable from delivery at this timescale.
        """
        link = flow.reverse_links[packet.hop]
        size = flow.ack_size
        result = link.transmit(self.now, size=size)
        packet.ack_queue_delay += result.queue_delay
        if not result.delivered and result.drop_kind == "buffer" \
                and not packet.dropped:
            # Real ack loss: sender recovery via cumulative ack or RTO.
            flow.pending_acks[packet.seq] = packet
            rto = ACK_RTO_FACTOR * max(flow.srtt or flow.base_rtt,
                                       MIN_MI_DURATION)
            self._push(self.now + rto, "rto", flow.flow_id, packet)
            return
        if result.delivered or result.drop_kind == "random":
            # A random drop's depart_time already carries the full
            # queue + service + propagation timing.
            cursor = result.depart_time
        else:
            # Buffer-dropped loss notice: delivered late.
            cursor = (self.now + result.queue_delay
                      + size / link.bandwidth_at(self.now) + link.delay)
        packet.hop += 1
        if packet.hop < len(flow.reverse_links):
            self._push(self._dither_arrival(flow, packet, cursor),
                       "hop", flow.flow_id, packet)
        elif packet.dropped:
            self._push(cursor, "loss", flow.flow_id, packet)
        else:
            packet.ack_time = cursor
            self._push(cursor, "ack", flow.flow_id, packet)

    # --- eager twin (transit="eager", the pre-refactor scheme) ---------------

    def _emit_eager(self, flow: Flow, packet: Packet) -> None:
        """Transit every forward hop at emit time (future-stamped)."""
        cursor = self.now
        queue_delay = 0.0
        delivered = True
        for hop, link in enumerate(flow.links):
            result = link.transmit(cursor)
            queue_delay += result.queue_delay
            if not result.delivered:
                delivered = False
                packet.dropped = True
                packet.drop_kind = result.drop_kind
                if result.drop_kind == "random":
                    loss_cursor = result.depart_time
                else:
                    loss_cursor = cursor + result.queue_delay + link.delay
                for l in flow.links[hop + 1:]:
                    loss_cursor += (l.queue_delay_at(loss_cursor)
                                    + 1.0 / l.bandwidth_at(loss_cursor)
                                    + l.delay)
                self._push(loss_cursor, "rcv", flow.flow_id, packet)
                break
            cursor = result.depart_time
        packet.queue_delay = queue_delay

        if delivered:
            packet.arrival_time = cursor
            self._push(cursor, "rcv", flow.flow_id, packet)

    def _transit_reverse(self, flow: Flow, cursor: float) -> tuple[float, float]:
        """Eager twin's reverse walk: all hops at ``rcv`` time.

        Returns ``(arrival_time_at_sender, accumulated_queue_delay)``.
        Keeps the pre-refactor semantics exactly: a buffer-dropped ack
        is *delivered late* (with the timing a packet just behind the
        drop would see) rather than lost.
        """
        size = flow.ack_size
        queue_delay = 0.0
        for link in flow.reverse_links:
            result = link.transmit(cursor, size=size)
            queue_delay += result.queue_delay
            if result.delivered or result.drop_kind == "random":
                # A random drop's depart_time already carries the full
                # queue + service + propagation timing.
                cursor = result.depart_time
            else:
                cursor += (result.queue_delay
                           + size / link.bandwidth_at(cursor) + link.delay)
        return cursor, queue_delay

    # --- receiver / sender-side handlers -------------------------------------

    def _handle_receive(self, flow: Flow, packet: Packet) -> None:
        """The receiver observed a packet (or a drop's gap): its ack /
        loss notice starts walking the flow's reverse links."""
        if self.transit == "eager":
            arrival, queue_delay = self._transit_reverse(flow, self.now)
            if packet.dropped:
                self._push(arrival, "loss", flow.flow_id, packet)
            else:
                packet.ack_time = arrival
                packet.ack_queue_delay = queue_delay
                self._push(arrival, "ack", flow.flow_id, packet)
            return
        packet.reversing = True
        packet.hop = 0
        self._advance_packet(flow, packet)

    def _recover_pending(self, flow: Flow, before_seq: int) -> None:
        """Cumulative feedback below ``before_seq`` reached the sender:
        any earlier delivered packet whose own ack was dropped on the
        reverse path is acknowledged now (its "rto" event becomes a
        stale no-op)."""
        if not flow.pending_acks:
            return
        for seq in sorted(s for s in flow.pending_acks if s < before_seq):
            recovered = flow.pending_acks.pop(seq)
            recovered.ack_time = self.now
            recovered.ack_recovered = True
            flow.note_ack(recovered, self.now)
            flow.controller.on_ack(flow, recovered, self.now)

    def _handle_ack(self, flow: Flow, packet: Packet) -> None:
        self._recover_pending(flow, packet.seq)
        flow.note_ack(packet, self.now)
        flow.controller.on_ack(flow, packet, self.now)
        self._clock_window(flow)

    def _handle_ack_rto(self, flow: Flow, packet: Packet) -> None:
        """Retransmit-timeout fallback for a buffer-dropped ack."""
        if flow.pending_acks.pop(packet.seq, None) is None:
            return  # already recovered by a later cumulative ack
        # No later ack arrived in time: the sender (wrongly but
        # honestly) concludes the packet was lost -- the spurious
        # timeout a real stack fires when the ack path eats its acks.
        packet.ack_dropped = True
        flow.note_loss(packet, self.now)
        flow.controller.on_loss(flow, packet, self.now)
        self._clock_window(flow)

    def _handle_loss(self, flow: Flow, packet: Packet) -> None:
        # A loss notice is cumulative feedback too (a real dup-ack
        # carries the cumulative ack number): it confirms delivery of
        # everything below the gap, so it rescues earlier parked acks
        # just like a delivered ack does.
        self._recover_pending(flow, packet.seq)
        flow.note_loss(packet, self.now)
        flow.controller.on_loss(flow, packet, self.now)
        self._clock_window(flow)

    def _clock_window(self, flow: Flow) -> None:
        """Ack-clocking: window flows send as soon as the window opens."""
        if flow.stopped or flow.controller.kind != "window":
            return
        if flow.inflight < flow.controller.cwnd(self.now):
            self._schedule_send(flow, self.now)

    def _handle_mi(self, flow: Flow) -> None:
        if flow.stopped:
            return
        if self.now >= flow.stop_time:
            flow.stopped = True
            return
        self._close_mi(flow, self.now)
        self._push(self.now + flow.mi_duration, "mi", flow.flow_id, None)

    def _close_mi(self, flow: Flow, now: float) -> None:
        capacity = self._bottleneck_capacity(flow, flow.mi_start, now)
        rate = self._effective_rate(flow)
        stats = flow.finish_mi(now, capacity, flow.base_rtt, rate)
        flow.controller.on_mi(flow, stats, now)

    # --- helpers ----------------------------------------------------------------

    def _bottleneck_capacity(self, flow: Flow, t0: float, t1: float) -> float:
        return min(link.trace.mean_bandwidth(t0, t1, samples=9)
                   for link in flow.links)

    def _effective_rate(self, flow: Flow) -> float:
        controller = flow.controller
        if controller.kind == "rate":
            return controller.pacing_rate(self.now)
        srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
        return controller.cwnd(self.now) / srtt

    def summary(self, flow_id: int) -> FlowRecord:
        """Aggregate results for one flow."""
        flow = self.flows[flow_id]
        thr_pps = flow.mean_throughput_pps()
        return FlowRecord(
            flow_id=flow_id,
            scheme=flow.controller.name,
            mean_throughput_pps=thr_pps,
            mean_throughput_mbps=thr_pps * flow.packet_bytes * 8 / 1e6,
            mean_utilization=flow.mean_utilization(),
            mean_rtt=flow.mean_rtt(),
            base_rtt=flow.base_rtt,
            loss_rate=flow.overall_loss_rate(),
            records=list(flow.records),
        )
