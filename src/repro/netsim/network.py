"""The discrete-event simulation engine and flow topologies.

The engine advances a heap of timestamped events over the links of a
:class:`~repro.netsim.topology.Topology`.  Each flow follows a named
*path* (an ordered forward link subset plus an ordered reverse link
list its acks transit), so a single simulation can mix through traffic
and cross traffic over different link subsets in either direction --
single-bottleneck dumbbells (all the paper's experiments) are just the
one-link, one-path, propagation-return special case, and a plain
``Link`` or link list is still accepted and promoted to that shape.

Event kinds:

* ``send``  -- a flow attempts to emit its next packet;
* ``hop``   -- the packet arrives at its next link (forward data or a
  reverse-walking ack/loss notice) and is offered to that link's queue
  at the *current* simulator clock.  This is the unified per-hop
  scheduler: a packet transits its first hop synchronously when it
  enters a direction and every later hop as a deferred event at its
  true arrival time, so every shared link sees in-order arrivals from
  all flows in both directions;
* ``rcv``   -- the receiver observes the packet (or the gap a drop
  left) and its ack / loss notice starts walking the path's *reverse
  links* through the same per-hop scheduler;
* ``ack``   -- a delivered packet's acknowledgement reaches the sender,
  having transited the reverse links (queueing behind reverse cross
  traffic; pure propagation only on the default pseudo-link);
* ``loss``  -- the sender learns a packet was lost (about one path RTT
  after the drop, approximating duplicate-ack/timeout detection; the
  notice charges estimated queueing on the links past the drop and
  transits the reverse path like an ack);
* ``rto``   -- retransmit-timeout fallback for an acknowledgement that
  was dropped on a reverse link (buffer overflow or random wire drop
  alike): if no later cumulative ack reached the sender first, the
  packet is surfaced as a loss (the spurious-timeout behaviour of a
  real sender);
* ``mi``    -- a flow's monitor-interval boundary.

``transit="eager"`` retains the pre-refactor scheme -- every forward
hop transited at emit time with a future-stamped cursor, the reverse
walk collapsed into the ``rcv`` handler, buffer-dropped acks delivered
late instead of lost -- as a frozen comparison twin.  Single-hop
forward paths with the default pure-propagation return are bit
identical between the two modes (neither schedules any intermediate
event); multi-hop paths diverge exactly where eager future-stamping
misstates queue occupancy on shared hops.

The engine supports incremental execution (``run(until=...)``) so the
gym-style environments can interleave RL decisions with simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from heapq import heappush

import numpy as np

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.rngstreams import stream_rng
from repro.netsim.sender import ACK_BYTES, Controller, Flow, MonitorIntervalStats
from repro.netsim.topology import Topology

__all__ = ["FlowSpec", "FlowRecord", "SimState", "Simulation"]

#: Pacing-rate clamps (packets/second) applied when scheduling sends.
MIN_RATE_PPS = 0.5
#: Cap on rate relative to the path bottleneck's maximum capacity.
MAX_RATE_FACTOR = 8.0
#: Fallback monitor-interval duration when a path has zero delay.
MIN_MI_DURATION = 0.01
# ACK_BYTES (re-exported from repro.netsim.sender): default ack wire
# size in bytes -- scales the service an ack/loss notice demands from
# a queued reverse link relative to the flow's data packets.  A path
# can override it (``PathDef(ack_bytes=...)`` / :attr:`Path.ack_bytes`)
# for stacks with larger ack frames (SACK blocks, QUIC ack ranges,
# link-layer framing).
#: Retransmit-timeout multiple of the smoothed RTT used when an ack is
#: buffer-dropped on the reverse path and no later cumulative ack
#: recovers it -- the coarse ``RTO = srtt + 4*rttvar`` of a real stack
#: collapsed to one factor (the simulator does not track rttvar).
ACK_RTO_FACTOR = 3.0
#: Default per-hop forwarding dither, as a fraction of the next link's
#: packet service time, applied to *deferred* hop arrivals only (never
#: a direction's first hop, preserving single-hop bit-identity).
#: Equal-rate links in series otherwise phase-lock: an upstream queue
#: re-serializes its flow onto a deterministic service grid, and at a
#: full downstream queue the same flow then loses the race for every
#: freed buffer slot on exact float ties -- permanent starvation no
#: store-and-forward device exhibits, the per-hop analogue of the
#: pacing jitter ``_handle_send`` applies.
HOP_JITTER_FACTOR = 0.5

# Integer event kinds, indexing the per-simulation handler table -- the
# hot loop dispatches ``handlers[kind](flow, packet)`` instead of
# walking a string-comparison chain.  Heap order is unaffected: the
# per-push sequence number breaks every time tie before a kind would be
# compared, so swapping strings for ints keeps event order bit-exact.
EV_START, EV_SEND, EV_HOP, EV_RCV, EV_ACK, EV_LOSS, EV_RTO, EV_MI = range(8)

#: How many uniform draws are prefetched per block from the pacing and
#: hop-dither generators.  Block draws are element-wise identical to
#: repeated scalar draws on the same ``numpy`` bitstream, so batching
#: changes no result -- it only amortizes the per-call generator
#: overhead across ``RNG_BLOCK`` packets.
RNG_BLOCK = 512


@dataclass
class FlowSpec:
    """Declarative description of one flow for :class:`Simulation`.

    ``path`` names the topology path the flow traverses; ``None`` uses
    the topology's default path (the whole link list for the legacy
    single-path constructor).
    """

    controller: Controller
    start_time: float = 0.0
    stop_time: float = float("inf")
    packet_bytes: int = 1500
    mi_duration: float | None = None
    keep_packets: bool = False
    path: str | None = None


@dataclass
class FlowRecord:
    """Aggregate results of one flow after a simulation run."""

    flow_id: int
    scheme: str
    mean_throughput_pps: float
    mean_throughput_mbps: float
    mean_utilization: float
    mean_rtt: float | None
    base_rtt: float
    loss_rate: float
    records: list[MonitorIntervalStats] = field(repr=False, default_factory=list)

    @property
    def latency_ratio(self) -> float:
        """Mean RTT over propagation RTT (>= 1.0 in a healthy run)."""
        if self.mean_rtt is None or self.base_rtt <= 0:
            return float("inf")
        return self.mean_rtt / self.base_rtt


class SimState:
    """Resumable stepping core over one :class:`Simulation`'s event loop.

    The mutable loop state (heap, sequence counter, clock, lifetime
    event count) stays on the simulation object; ``SimState`` owns the
    *loop* -- the pop/dispatch slice that :meth:`Simulation.run` used
    to inline -- so callers can advance a cell by time slice
    (:meth:`step_until`) or by event count (:meth:`step_events`) and
    interleave many cells inside one process (:mod:`repro.eval.batch`).

    Each step method re-hoists the loop-invariant lookups (heap,
    handler table, ``heappop``) into locals at the top of its slice,
    so within a slice the loop body is exactly the monolithic ``run``
    loop.  Across slices the heap order -- and with it every handler
    side effect -- is untouched: handlers read the clock only after a
    pop stores the event's own timestamp, so the horizon bump at the
    end of :meth:`step_until` can never leak into a handler.  That is
    the whole bit-identity argument, and ``tests/test_golden_traces.py``
    plus the batched identity grid in ``tests/test_batch.py`` pin it.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event (``None`` once drained)."""
        heap = self.sim._heap
        return heap[0][0] if heap else None

    @property
    def done(self) -> bool:
        """True once no pending event lies within the cell's duration."""
        sim = self.sim
        heap = sim._heap
        return not heap or heap[0][0] > sim.duration

    def step_until(self, until: float | None = None) -> int:
        """Process every event with ``time <= until`` (clamped to the
        duration); leave the clock on the horizon.  Returns the number
        of events processed in this slice.

        The loop body is deliberately bare -- heap pop, clock store,
        one indexed dispatch through the handler table -- with every
        loop-invariant lookup hoisted to a local.  All handlers share
        the ``(flow, packet)`` signature (packet ``None`` for
        flow-level events) so dispatch needs no per-kind argument
        shapes.
        """
        sim = self.sim
        horizon = sim.duration if until is None else min(until, sim.duration)
        heap = sim._heap
        handlers = sim._handlers
        pop = heapq.heappop
        processed = 0
        # Pop-first loop: testing the popped event against the horizon
        # (and pushing the lone overshooting event back, key unchanged,
        # so pop order is unaffected) is cheaper than re-reading
        # ``heap[0][0]`` on every iteration of the hot loop.
        while heap:
            item = pop(heap)
            time = item[0]
            if time > horizon:
                heappush(heap, item)
                break
            sim.now = time
            processed += 1
            handlers[item[2]](item[3], item[4])
        sim.events_processed += processed
        sim.now = max(sim.now, horizon)
        return processed

    def step_events(self, n: int) -> int:
        """Process up to ``n`` events within the cell's duration.

        Unlike :meth:`step_until` the clock is *not* advanced past the
        last processed event, so a later slice resumes exactly where
        this one stopped; only draining the cell (or a final
        ``step_until``) lands the clock on the duration.
        """
        sim = self.sim
        horizon = sim.duration
        heap = sim._heap
        handlers = sim._handlers
        pop = heapq.heappop
        processed = 0
        while heap and processed < n:
            item = pop(heap)
            time = item[0]
            if time > horizon:
                heappush(heap, item)
                break
            sim.now = time
            processed += 1
            handlers[item[2]](item[3], item[4])
        sim.events_processed += processed
        return processed


class Simulation:
    """Event-driven simulation of flows routed over a topology.

    ``transit`` selects the hop-transit scheme: ``"event"`` (default)
    walks every packet link by link at its true per-hop arrival times;
    ``"eager"`` is the pre-refactor engine that computed all forward
    hop transits at emit time (kept as the comparison twin for the
    bit-identity and divergence guarantees -- see the module
    docstring).
    """

    def __init__(self, links: Link | list[Link] | Topology, specs: list[FlowSpec],
                 duration: float, seed: int = 0, jitter: float = 0.02,
                 transit: str = "event",
                 hop_jitter: float = HOP_JITTER_FACTOR):
        if transit not in ("event", "eager"):
            raise ValueError(f"unknown transit mode {transit!r}; "
                             f"use 'event' or 'eager'")
        self.transit = transit
        self._eager = transit == "eager"
        self.hop_jitter = float(hop_jitter)
        if isinstance(links, Topology):
            self.topology = links
        else:
            link_list = [links] if isinstance(links, Link) else list(links)
            if not link_list:
                raise ValueError("need at least one link")
            self.topology = Topology.single_path(link_list)
        self.links = self.topology.all_links()
        self.duration = float(duration)
        self.jitter = float(jitter)
        self.rng = stream_rng("sim.pacing", seed)
        #: Dedicated stream for per-hop forwarding dither: hop events
        #: must not consume ``self.rng``, or the send-pacing jitter
        #: sequence (and with it every single-hop race) would shift
        #: relative to the eager twin.
        self._hop_rng = stream_rng("sim.hop-dither", seed)
        # Prefetched uniform blocks (see RNG_BLOCK).  Nothing outside
        # the engine reads these generators, so prefetching cannot
        # perturb any other stream.
        self._jitter_buf = None
        self._jitter_pos = 0
        self._hop_buf = None
        self._hop_pos = 0
        self.now = 0.0
        self._heap: list[tuple[float, int, int, int, Packet | None]] = []
        self._seq = 0
        #: Lifetime count of events dispatched by :meth:`run` -- the
        #: denominator-free engine-speed metric (events/sec = this over
        #: wall time) tracked by :mod:`repro.eval.perf` and
        #: ``benchmarks/bench_engine_speed.py``.
        self.events_processed = 0
        # Handler table indexed by the EV_* event kinds.
        self._handlers = (
            self._handle_start, self._handle_send, self._advance_packet,
            self._handle_receive, self._handle_ack, self._handle_loss,
            self._handle_ack_rto, self._handle_mi)
        #: Resumable stepping core.  :meth:`run` is a thin delegate;
        #: batched execution drives this directly in time slices.
        self.state = SimState(self)

        #: Base RTT of the topology's default path -- the single-path
        #: quantity legacy callers (gym envs, single-flow runners) read.
        self.base_rtt = self.topology.path().base_rtt

        self.flows: list[Flow] = []
        for spec in specs:
            path = self.topology.path(spec.path)
            flow = Flow(
                flow_id=len(self.flows), controller=spec.controller,
                packet_bytes=spec.packet_bytes, start_time=spec.start_time,
                stop_time=min(spec.stop_time, duration),
                mi_duration=spec.mi_duration, keep_packets=spec.keep_packets)
            flow.path_name = path.name
            flow.links = path.links
            flow.n_links = len(path.links)
            flow.reverse_links = path.reverse_links
            flow.n_rev_links = len(path.reverse_links)
            # Single pure-propagation reverse pseudo-link (the default
            # return for every unwired path): the receive handler
            # inlines the whole reverse walk.
            flow.pure_return_delay = (
                path.reverse_links[0].pure_delay
                if len(path.reverse_links) == 1 else None)
            flow.base_rtt = path.base_rtt
            flow.return_delay = path.return_delay
            flow.set_ack_bytes(ACK_BYTES if path.ack_bytes is None
                               else path.ack_bytes)
            flow.init_hop_floors()
            flow.max_rate = MAX_RATE_FACTOR * min(
                link.trace.max_bandwidth() for link in path.links)
            if flow.mi_duration is None:
                flow.mi_duration = max(flow.base_rtt, MIN_MI_DURATION)
            self.flows.append(flow)
            self._push(spec.start_time, EV_START, flow, None)

    # --- event plumbing -----------------------------------------------------

    def _push(self, time: float, kind: int, flow: Flow, packet: Packet | None) -> None:
        # Heap entries carry the flow object itself: comparisons never
        # reach it (the unique ``seq`` breaks every time tie first), and
        # dispatch skips a list lookup per event.  The hottest sites
        # inline this body next to their heappush.
        seq = self._seq + 1
        self._seq = seq
        heappush(self._heap, (time, seq, kind, flow, packet))

    def run(self, until: float | None = None) -> None:
        """Process events up to ``until`` (default: the full duration).

        One full-width slice of the stepping core: ``run(t)`` and any
        sequence of ``step_until`` calls ending at ``t`` are
        bit-identical (see :class:`SimState`).
        """
        self.state.step_until(until)

    def run_all(self) -> list[FlowRecord]:
        """Run to completion and return per-flow summaries."""
        self.run()
        self._finalize()
        return [self.summary(flow.flow_id) for flow in self.flows]

    def _finalize(self) -> None:
        for flow in self.flows:
            end = min(flow.stop_time, self.duration)
            if flow.started and (flow.mi_sent or flow.mi_acked or flow.mi_lost):
                # Acks/losses for packets sent before the stop keep
                # arriving (and being accounted) after ``stop_time``;
                # close the final MI at the true last-event time so a
                # churned flow's throughput is not inflated by a span
                # clamped short of its contents.
                end = min(max(end, flow.last_event_time), self.duration)
                if end > flow.mi_start:
                    self._close_mi(flow, end)

    # --- event handlers -------------------------------------------------------

    def _handle_start(self, flow: Flow, packet: Packet | None = None) -> None:
        flow.started = True
        flow.mi_start = self.now
        flow.controller.on_flow_start(flow, self.now)
        self._push(self.now + flow.mi_duration, EV_MI, flow, None)
        self._schedule_send(flow, self.now)

    def _next_jitter(self) -> float:
        """Next send-pacing uniform, served from the prefetched block.

        ``tolist()`` converts the block to Python floats once at draw
        time (exact: float64 -> float is lossless), so per-packet reads
        are plain list indexing with no numpy scalar boxing.
        """
        pos = self._jitter_pos
        buf = self._jitter_buf
        if buf is None or pos >= RNG_BLOCK:
            buf = self._jitter_buf = self.rng.random(RNG_BLOCK).tolist()
            pos = 0
        self._jitter_pos = pos + 1
        return buf[pos]

    def _handle_send(self, flow: Flow, packet: Packet | None = None) -> None:
        flow.send_scheduled = False
        now = self.now
        if flow.stopped or now >= flow.stop_time:
            return
        if flow.is_window:
            cwnd = flow.cwnd_fn(now)
            if flow.inflight >= cwnd:
                return  # re-armed by the next ack/loss
            self._emit_packet(flow)
            if flow.inflight < cwnd:
                # Pace the remaining window over one smoothed RTT.
                srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
                gap = srtt / max(cwnd, 1.0)
                self._schedule_send(flow, now + gap)
        else:
            rate = flow.pacing_fn(now)
            rate = min(max(rate, MIN_RATE_PPS), flow.max_rate)
            cap_fn = flow.cap_fn
            if cap_fn is None:
                self._emit_packet(flow)
            else:
                cap = cap_fn(now)
                if cap is None or flow.inflight < cap:
                    self._emit_packet(flow)
            # Small pacing jitter: without it, equal-rate flows phase-lock
            # (one flow's packet always reaches a full queue first and the
            # other takes every drop) -- an artifact no real pacer has.
            gap = (1.0 / rate) * (1.0 + self.jitter * (self._next_jitter() - 0.5))
            self._schedule_send(flow, now + gap)

    def _schedule_send(self, flow: Flow, time: float) -> None:
        if flow.send_scheduled or flow.stopped:
            return
        if time >= flow.stop_time:
            return
        flow.send_scheduled = True
        now = self.now
        seq = self._seq + 1
        self._seq = seq
        heappush(self._heap, (time if time > now else now, seq, EV_SEND,
                              flow, None))

    def _emit_packet(self, flow: Flow) -> None:
        packet = Packet(flow.flow_id, flow.next_seq, self.now,
                        flow.packet_bytes)
        flow.next_seq += 1
        flow.note_sent(packet)
        if self._eager:
            self._emit_eager(flow, packet)
        else:
            # The packet enters the forward direction now: hop 0 is
            # transited synchronously (its arrival time *is* the
            # current clock), later hops via deferred "hop" events.
            self._advance_packet(flow, packet)

    # --- unified per-hop scheduler (transit="event") -------------------------

    def _advance_packet(self, flow: Flow, packet: Packet) -> None:
        """Offer ``packet`` to its next link at the current clock.

        One code path walks both directions: forward data over
        ``flow.links`` and, once the receiver has observed the packet
        (``packet.reversing``), its ack / loss notice over
        ``flow.reverse_links`` at the flow's ack wire size.  Every
        ``link.transmit`` happens at the true arrival time, so a shared
        link's queue sees one time-ordered arrival stream from all
        flows -- the property the eager scheme broke with
        future-stamped transits.
        """
        if packet.reversing:
            self._advance_reverse(flow, packet)
            return
        hop = packet.hop
        links = flow.links
        link = links[hop]
        delivered, drop_kind, depart, queue_delay = link.transmit(self.now)
        packet.queue_delay += queue_delay
        if not delivered:
            packet.dropped = True
            packet.drop_kind = drop_kind
            # The receiver observes the gap roughly when the dropped
            # packet would have arrived.  A random drop happens on the
            # wire, so ``depart_time`` already carries the normal
            # queue + service + propagation timing of the dropping
            # link; a buffer drop never occupies the queue, so charge
            # the timing a surviving packet just behind it would see.
            # The links past the drop charge their *current* queue
            # occupancy plus service, not bare propagation -- the gap
            # is observed at the receiver only after the packets
            # already queued downstream drain ahead of it.
            if drop_kind == "random":
                cursor = depart
            else:
                cursor = self.now + queue_delay + link.delay
            for l in links[hop + 1:]:
                cursor += (l.queue_delay_at(cursor)
                           + 1.0 / l.bandwidth_at(cursor) + l.delay)
            self._push(cursor, EV_RCV, flow, packet)
            return
        hop += 1
        packet.hop = hop
        seq = self._seq + 1
        self._seq = seq
        if hop < flow.n_links:
            arrival = self._dither_arrival(flow, packet, depart)
            heappush(self._heap, (arrival, seq, EV_HOP, flow, packet))
        else:
            packet.arrival_time = depart
            heappush(self._heap, (depart, seq, EV_RCV, flow, packet))

    def _dither_arrival(self, flow: Flow, packet: Packet, depart: float) -> float:
        """Forwarding dither for a deferred hop arrival.

        Adds up to ``hop_jitter`` of the next link's service time for
        this packet (store-and-forward processing variance; see
        :data:`HOP_JITTER_FACTOR` for the phase-locking artifact it
        prevents), clamped to the flow's latest scheduled arrival at
        that link so a flow's packets stay in FIFO order on every hop.
        Never applied to a direction's first hop or to the final
        receiver/sender arrival, so single-hop forward paths and
        pure-propagation returns keep their exact timing.
        """
        reversing = packet.reversing
        hop = packet.hop
        if self.hop_jitter > 0.0:
            links = flow.reverse_links if reversing else flow.links
            size = flow.ack_size if reversing else 1.0
            service = size / links[hop].bandwidth_at(depart)
            pos = self._hop_pos
            buf = self._hop_buf
            if buf is None or pos >= RNG_BLOCK:
                buf = self._hop_buf = self._hop_rng.random(RNG_BLOCK).tolist()
                pos = 0
            self._hop_pos = pos + 1
            depart += self.hop_jitter * buf[pos] * service
        floors = flow.rev_hop_floor if reversing else flow.fwd_hop_floor
        floor = floors[hop]
        if depart > floor:
            floors[hop] = depart
            return depart
        return floor

    def _advance_reverse(self, flow: Flow, packet: Packet) -> None:
        """One reverse hop of an ack / loss notice at the current clock.

        Acks occupy reverse queues and compete with reverse-direction
        data for service at their true wire size (``flow.ack_bytes``
        over the flow's packet size).  A *loss notice* is never lost --
        loss information is implied by every later cumulative ack, so a
        congested reverse hop shows up as delay: a buffer-dropped
        notice is delivered with the timing a packet just behind the
        drop would see, and a randomly (wire-)dropped notice with its
        normal timing.  A dropped *ack*, however, really is lost --
        whether the reverse buffer overflowed or the wire corrupted it
        (a real sender cannot tell the difference): the packet parks in
        ``flow.pending_acks`` until a later cumulative ack reaches the
        sender, with an ``"rto"`` event as the retransmit-timeout
        fallback.  (The eager twin keeps its frozen pre-refactor
        semantics: every dropped ack delivered late or at normal
        timing, never lost.)
        """
        reverse_links = flow.reverse_links
        hop = packet.hop
        link = reverse_links[hop]
        pure = link.pure_delay
        if pure is not None:
            # Zero-work fast path: a pure-propagation pseudo-link never
            # queues, drops, or counts -- the arrival is an addition.
            cursor = self.now + pure
        else:
            size = flow.ack_size
            delivered, drop_kind, depart, queue_delay = \
                link.transmit(self.now, size)
            packet.ack_queue_delay += queue_delay
            if not delivered and not packet.dropped:
                # Real ack loss (buffer overflow or wire drop alike):
                # sender recovery via cumulative ack or RTO.
                flow.pending_acks[packet.seq] = packet
                rto = ACK_RTO_FACTOR * max(flow.srtt or flow.base_rtt,
                                           MIN_MI_DURATION)
                self._push(self.now + rto, EV_RTO, flow, packet)
                return
            if delivered or drop_kind == "random":
                # A random drop's depart_time already carries the full
                # queue + service + propagation timing (loss notices
                # only -- a random-dropped ack parked above).
                cursor = depart
            else:
                # Buffer-dropped loss notice: delivered late.
                cursor = (self.now + queue_delay
                          + size / link.bandwidth_at(self.now) + link.delay)
        hop += 1
        packet.hop = hop
        if hop < flow.n_rev_links:
            self._push(self._dither_arrival(flow, packet, cursor),
                       EV_HOP, flow, packet)
            return
        seq = self._seq + 1
        self._seq = seq
        if packet.dropped:
            heappush(self._heap, (cursor, seq, EV_LOSS, flow, packet))
        else:
            packet.ack_time = cursor
            heappush(self._heap, (cursor, seq, EV_ACK, flow, packet))

    # --- eager twin (transit="eager", the pre-refactor scheme) ---------------

    def _emit_eager(self, flow: Flow, packet: Packet) -> None:
        """Transit every forward hop at emit time (future-stamped)."""
        cursor = self.now
        queue_delay = 0.0
        delivered = True
        for hop, link in enumerate(flow.links):
            ok, drop_kind, depart, hop_queue_delay = link.transmit(cursor)
            queue_delay += hop_queue_delay
            if not ok:
                delivered = False
                packet.dropped = True
                packet.drop_kind = drop_kind
                if drop_kind == "random":
                    loss_cursor = depart
                else:
                    loss_cursor = cursor + hop_queue_delay + link.delay
                for l in flow.links[hop + 1:]:
                    loss_cursor += (l.queue_delay_at(loss_cursor)
                                    + 1.0 / l.bandwidth_at(loss_cursor)
                                    + l.delay)
                self._push(loss_cursor, EV_RCV, flow, packet)
                break
            cursor = depart
        packet.queue_delay = queue_delay

        if delivered:
            packet.arrival_time = cursor
            self._push(cursor, EV_RCV, flow, packet)

    def _transit_reverse(self, flow: Flow, cursor: float) -> tuple[float, float]:
        """Eager twin's reverse walk: all hops at ``rcv`` time.

        Returns ``(arrival_time_at_sender, accumulated_queue_delay)``.
        Keeps the pre-refactor semantics exactly: a buffer-dropped ack
        is *delivered late* (with the timing a packet just behind the
        drop would see) rather than lost.
        """
        size = flow.ack_size
        queue_delay = 0.0
        for link in flow.reverse_links:
            pure = link.pure_delay
            if pure is not None:
                cursor += pure
                continue
            delivered, drop_kind, depart, hop_queue_delay = \
                link.transmit(cursor, size)
            queue_delay += hop_queue_delay
            if delivered or drop_kind == "random":
                # A random drop's depart_time already carries the full
                # queue + service + propagation timing.
                cursor = depart
            else:
                cursor += (hop_queue_delay
                           + size / link.bandwidth_at(cursor) + link.delay)
        return cursor, queue_delay

    # --- receiver / sender-side handlers -------------------------------------

    def _handle_receive(self, flow: Flow, packet: Packet) -> None:
        """The receiver observed a packet (or a drop's gap): its ack /
        loss notice starts walking the flow's reverse links."""
        if self._eager:
            arrival, queue_delay = self._transit_reverse(flow, self.now)
            if packet.dropped:
                self._push(arrival, EV_LOSS, flow, packet)
            else:
                packet.ack_time = arrival
                packet.ack_queue_delay = queue_delay
                self._push(arrival, EV_ACK, flow, packet)
            return
        packet.reversing = True
        pure = flow.pure_return_delay
        if pure is not None:
            # The dominant shape -- a single pure-propagation reverse
            # pseudo-link -- fully inlined: the whole reverse walk is
            # one addition and one push.
            packet.hop = 1
            cursor = self.now + pure
            seq = self._seq + 1
            self._seq = seq
            if packet.dropped:
                heappush(self._heap,
                         (cursor, seq, EV_LOSS, flow, packet))
            else:
                packet.ack_time = cursor
                heappush(self._heap,
                         (cursor, seq, EV_ACK, flow, packet))
            return
        packet.hop = 0
        self._advance_reverse(flow, packet)

    def _recover_pending(self, flow: Flow, before_seq: int) -> None:
        """Cumulative feedback below ``before_seq`` reached the sender:
        any earlier delivered packet whose own ack was dropped on the
        reverse path is acknowledged now (its "rto" event becomes a
        stale no-op)."""
        if not flow.pending_acks:
            return
        for seq in sorted(s for s in flow.pending_acks if s < before_seq):
            recovered = flow.pending_acks.pop(seq)
            recovered.ack_time = self.now
            recovered.ack_recovered = True
            flow.note_ack(recovered, self.now)
            if flow.on_ack_cb is not None:
                flow.on_ack_cb(flow, recovered, self.now)

    def _handle_ack(self, flow: Flow, packet: Packet) -> None:
        now = self.now
        if flow.pending_acks:
            self._recover_pending(flow, packet.seq)
        flow.note_ack(packet, now)
        cb = flow.on_ack_cb
        if cb is not None:
            cb(flow, packet, now)
        # _clock_window inlined: this runs once per delivered packet.
        if flow.is_window and not flow.stopped \
                and flow.inflight < flow.cwnd_fn(now):
            self._schedule_send(flow, now)

    def _handle_ack_rto(self, flow: Flow, packet: Packet) -> None:
        """Retransmit-timeout fallback for a buffer-dropped ack."""
        if flow.pending_acks.pop(packet.seq, None) is None:
            return  # already recovered by a later cumulative ack
        # No later ack arrived in time: the sender (wrongly but
        # honestly) concludes the packet was lost -- the spurious
        # timeout a real stack fires when the ack path eats its acks.
        packet.ack_dropped = True
        flow.note_loss(packet, self.now)
        if flow.on_loss_cb is not None:
            flow.on_loss_cb(flow, packet, self.now)
        self._clock_window(flow)

    def _handle_loss(self, flow: Flow, packet: Packet) -> None:
        # A loss notice is cumulative feedback too (a real dup-ack
        # carries the cumulative ack number): it confirms delivery of
        # everything below the gap, so it rescues earlier parked acks
        # just like a delivered ack does.
        self._recover_pending(flow, packet.seq)
        flow.note_loss(packet, self.now)
        if flow.on_loss_cb is not None:
            flow.on_loss_cb(flow, packet, self.now)
        self._clock_window(flow)

    def _clock_window(self, flow: Flow) -> None:
        """Ack-clocking: window flows send as soon as the window opens."""
        if flow.stopped or not flow.is_window:
            return
        if flow.inflight < flow.cwnd_fn(self.now):
            self._schedule_send(flow, self.now)

    def _handle_mi(self, flow: Flow, packet: Packet | None = None) -> None:
        if flow.stopped:
            return
        if self.now >= flow.stop_time:
            flow.stopped = True
            return
        self._close_mi(flow, self.now)
        self._push(self.now + flow.mi_duration, EV_MI, flow, None)

    def _close_mi(self, flow: Flow, now: float) -> None:
        # O(1) bottleneck capacity on constant-rate paths: every
        # constant link's mean_bandwidth over any interval *is* its
        # cached rate, so the min needs no trace sampling.  Read live
        # (not snapshotted at wiring) so replacing a link's trace
        # mid-experiment -- which the Link.trace setter keeps coherent
        # -- is honoured here too; any non-constant link falls back to
        # the midpoint-sampling estimate.
        capacity = float("inf")
        for link in flow.links:
            rate = link._const_rate
            if rate is None:
                capacity = self._bottleneck_capacity(flow, flow.mi_start, now)
                break
            if rate < capacity:
                capacity = rate
        rate = self._effective_rate(flow)
        stats = flow.finish_mi(now, capacity, flow.base_rtt, rate)
        flow.controller.on_mi(flow, stats, now)

    # --- helpers ----------------------------------------------------------------

    def _bottleneck_capacity(self, flow: Flow, t0: float, t1: float) -> float:
        return min(link.trace.mean_bandwidth(t0, t1, samples=9)
                   for link in flow.links)

    def _effective_rate(self, flow: Flow) -> float:
        controller = flow.controller
        if controller.kind == "rate":
            return controller.pacing_rate(self.now)
        srtt = flow.srtt or max(flow.base_rtt, MIN_MI_DURATION)
        return controller.cwnd(self.now) / srtt

    def summary(self, flow_id: int) -> FlowRecord:
        """Aggregate results for one flow."""
        flow = self.flows[flow_id]
        thr_pps = flow.mean_throughput_pps()
        return FlowRecord(
            flow_id=flow_id,
            scheme=flow.controller.name,
            mean_throughput_pps=thr_pps,
            mean_throughput_mbps=thr_pps * flow.packet_bytes * 8 / 1e6,
            mean_utilization=flow.mean_utilization(),
            mean_rtt=flow.mean_rtt(),
            base_rtt=flow.base_rtt,
            loss_rate=flow.overall_loss_rate(),
            records=list(flow.records),
        )
