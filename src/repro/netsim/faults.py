"""Deterministic per-link fault schedules: flaps, bursty loss, brownouts.

MOCC's pitch is robustness across conditions competitors weren't tuned
for, yet the base scenario grid is fair-weather: links never flap and
loss is never bursty.  This module adds a declarative fault layer a
:class:`~repro.netsim.topology.LinkDef` can carry (and a suite can
sweep via the ``faults=`` axis):

* :class:`LinkFlapSchedule` -- periodic up/down intervals, optionally
  jittered per cycle; while down the link either queues arrivals for
  replay on recovery or drops them (``policy``);
* :class:`GilbertElliottLoss` -- the classic two-state bursty wire-loss
  chain (generalizing the link's independent Bernoulli ``loss_rate``);
* :class:`RateBrownout` -- a temporary capacity collapse (service rate
  scaled by ``factor`` inside the window);
* :class:`BlackoutWindow` -- a single leo-handover-style total outage.

Specs are frozen, validated, and fingerprinted (:func:`fault_signature`
feeds the topology signature, so a changed schedule is a cache miss).
The runtime state machine is :class:`FaultProcess`, one per faulted
link, built by :meth:`TopologySpec.build` with the scenario seed and
the link's position -- the same ``(seed, index)`` keying as the
``link.loss`` stream, but on two dedicated registry streams
(``link.fault-flap`` and ``link.fault-loss``) so fault draws can never
shift the existing wire-loss sequence.

Determinism contract
--------------------
All randomness is confined to two named streams minted in
:meth:`FaultProcess.reset`:

* flap-window jitter comes from ``link.fault-flap``.  Windows extend
  lazily but *in lockstep across specs and cycles*, so the jitter of
  cycle ``k`` of spec ``s`` is a fixed position in the stream -- a pure
  function of ``(s, k)`` no matter in what order (or from which
  engine) queries arrive;
* Gilbert-Elliott chains draw from ``link.fault-loss`` once per
  offered packet (plus one loss draw when the current state's loss
  probability is positive), in transmit order.  Reference and kernel
  engines offer packets to a faulted link in the identical event
  order, so the chains -- and hence digests -- match bit for bit.

A fault never zeroes the service rate (downtime is modelled as a busy
floor or an admission drop, and brownout factors are validated
positive), so every downstream ``1/bandwidth_at(t)`` stays finite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.rngstreams import stream_rng

__all__ = ["BlackoutWindow", "FAULT_SPEC_TYPES", "FaultProcess",
           "GilbertElliottLoss", "LinkFlapSchedule", "RateBrownout",
           "coerce_faults", "fault_signature"]

#: Down-window admission policies: ``queue`` parks arrivals behind the
#: recovery time (drop-tail still applies to the parked backlog, dead
#: time excluded), ``drop`` discards them outright as ``"fault"`` drops.
POLICIES = ("queue", "drop")


def _check_policy(policy: str) -> None:
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")


@dataclass(frozen=True)
class LinkFlapSchedule:
    """Periodic link up/down schedule (WiFi roam, cable modem resync).

    Cycle ``k`` goes down at ``start + k*period`` (plus a uniform draw
    in ``[0, jitter]`` when ``jitter > 0``) and recovers ``down_time``
    seconds later.  ``jitter == 0`` consumes no randomness at all.
    """

    period: float
    down_time: float
    start: float = 0.0
    jitter: float = 0.0
    policy: str = "queue"

    _signature_fields = ("period", "down_time", "start", "jitter", "policy")

    def __post_init__(self):
        if self.period <= 0.0:
            raise ValueError("period must be positive")
        if self.down_time < 0.0:
            raise ValueError("down_time must be non-negative")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if self.start < 0.0:
            raise ValueError("start must be non-negative")
        # Windows must stay inside their own cycle so at most one can
        # cover any instant (keeps the outage query O(1) per spec).
        if self.down_time + self.jitter >= self.period:
            raise ValueError("down_time + jitter must be < period")
        _check_policy(self.policy)


@dataclass(frozen=True)
class GilbertElliottLoss:
    """Two-state bursty wire loss (good/bad Markov chain per packet).

    Each offered packet first steps the chain (one uniform draw), then
    is lost with the new state's loss probability.  The defaults give
    rare, heavy bursts; ``loss_good=0`` keeps the good state draw-free.
    """

    p_enter_bad: float
    p_exit_bad: float
    loss_good: float = 0.0
    loss_bad: float = 0.5

    _signature_fields = ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad")

    def __post_init__(self):
        for name in self._signature_fields:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class RateBrownout:
    """Temporary capacity collapse: rate scaled by ``factor`` in-window."""

    start: float
    duration: float
    factor: float

    _signature_fields = ("start", "duration", "factor")

    def __post_init__(self):
        if self.start < 0.0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0.0:
            raise ValueError("duration must be positive")
        # A zero factor would divide service time by zero; total outage
        # is BlackoutWindow's job.
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


@dataclass(frozen=True)
class BlackoutWindow:
    """One total outage window (leo-handover-style)."""

    start: float
    duration: float
    policy: str = "queue"

    _signature_fields = ("start", "duration", "policy")

    def __post_init__(self):
        if self.start < 0.0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0.0:
            raise ValueError("duration must be positive")
        _check_policy(self.policy)


FAULT_SPEC_TYPES = (LinkFlapSchedule, GilbertElliottLoss, RateBrownout,
                    BlackoutWindow)


def coerce_faults(value) -> tuple:
    """Normalize ``None`` / a single spec / an iterable to a tuple."""
    if value is None:
        return ()
    if isinstance(value, FAULT_SPEC_TYPES):
        return (value,)
    specs = tuple(value)
    for spec in specs:
        if not isinstance(spec, FAULT_SPEC_TYPES):
            raise TypeError(
                f"fault specs must be instances of "
                f"{tuple(t.__name__ for t in FAULT_SPEC_TYPES)}, "
                f"got {spec!r}")
    return specs


def fault_signature(specs) -> list:
    """Canonical JSONable form of a fault-spec tuple.

    Folded into :func:`repro.eval.scenarios._topology_signature` so any
    schedule change -- type, timing, probabilities, policy -- is a
    scenario-cache miss.
    """
    signature = []
    for spec in coerce_faults(specs):
        entry = [type(spec).__name__]
        for name in spec._signature_fields:
            entry.append(getattr(spec, name))
        signature.append(entry)
    return signature


class FaultProcess:
    """Runtime fault state for one link: outages, rate scale, GE loss.

    Built per link by :meth:`TopologySpec.build`; the link consults it
    from ``Link._transmit_faulted`` (admission + wire loss) and
    ``Link.bandwidth_at`` (brownout scaling).  ``reset()`` re-mints
    both streams and clears all chain/window state, restoring the
    exact post-construction bitstreams.
    """

    def __init__(self, specs, seed: int, index: int):
        self.specs = coerce_faults(specs)
        self.seed = int(seed)
        self.index = int(index)
        self._flaps = tuple(s for s in self.specs
                            if isinstance(s, LinkFlapSchedule))
        self._ge = tuple(s for s in self.specs
                         if isinstance(s, GilbertElliottLoss))
        self._blackouts = tuple(
            (s.start, s.start + s.duration, s.policy)
            for s in self.specs if isinstance(s, BlackoutWindow))
        self._brownouts = tuple(
            (s.start, s.start + s.duration, s.factor)
            for s in self.specs if isinstance(s, RateBrownout))
        self.reset()

    def reset(self) -> None:
        """Restore post-construction state (fresh streams, good GE state)."""
        self._flap_rng = stream_rng("link.fault-flap", self.seed,
                                    index=self.index)
        self._loss_rng = stream_rng("link.fault-loss", self.seed,
                                    index=self.index)
        #: Per flap spec, materialized ``(down_start, down_end)`` windows
        #: for cycles ``0..self._flap_cycle`` inclusive.
        self._windows: list[list] = [[] for _ in self._flaps]
        self._flap_cycle = -1
        self._ge_bad = [False] * len(self._ge)

    # --- flap windows -------------------------------------------------------

    def _ensure_cycles(self, cycle: int) -> None:
        """Materialize flap windows up to ``cycle`` (lockstep, in order).

        Every extension step appends cycle ``c`` for *all* flap specs
        in declaration order, so the jitter draw feeding spec ``s``'s
        cycle ``c`` sits at a fixed stream position regardless of which
        query triggered the extension.
        """
        while self._flap_cycle < cycle:
            c = self._flap_cycle + 1
            for i, spec in enumerate(self._flaps):
                down = spec.start + c * spec.period
                if spec.jitter > 0.0:
                    down += spec.jitter * self._flap_rng.random()
                self._windows[i].append((down, down + spec.down_time))
            self._flap_cycle = c

    # --- queries ------------------------------------------------------------

    def outage_at(self, t: float):
        """``(recovery_time, policy)`` if the link is down at ``t``.

        Overlapping windows merge conservatively: the latest recovery
        wins, and ``drop`` beats ``queue``.
        """
        recovery = None
        policy = "queue"
        for start, end, window_policy in self._blackouts:
            if start <= t < end:
                if recovery is None or end > recovery:
                    recovery = end
                if window_policy == "drop":
                    policy = "drop"
        for i, spec in enumerate(self._flaps):
            if spec.down_time <= 0.0 or t < spec.start:
                continue
            cycle = int((t - spec.start) // spec.period)
            self._ensure_cycles(cycle)
            down, up = self._windows[i][cycle]
            if down <= t < up:
                if recovery is None or up > recovery:
                    recovery = up
                if spec.policy == "drop":
                    policy = "drop"
        if recovery is None:
            return None
        return (recovery, policy)

    def capacity_scale(self, t: float) -> float:
        """Service-rate multiplier at ``t`` (brownouts compound)."""
        scale = 1.0
        for start, end, factor in self._brownouts:
            if start <= t < end:
                scale *= factor
        return scale

    def wire_loss(self, t: float) -> bool:
        """Step every GE chain one packet; ``True`` if any lost it."""
        lost = False
        rng = self._loss_rng
        bad = self._ge_bad
        for i, spec in enumerate(self._ge):
            u = rng.random()
            if bad[i]:
                if u < spec.p_exit_bad:
                    bad[i] = False
            else:
                if u < spec.p_enter_bad:
                    bad[i] = True
            p = spec.loss_bad if bad[i] else spec.loss_good
            if p > 0.0 and rng.random() < p:
                lost = True
        return lost

    # --- introspection ------------------------------------------------------

    def signature(self) -> list:
        return fault_signature(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(s).__name__ for s in self.specs)
        return (f"FaultProcess([{names}], seed={self.seed}, "
                f"index={self.index})")
