"""Opt-in accelerated engine core (``engine="kernel"``).

:class:`KernelSimulation` is an alternative engine core selected
per-scenario through the fingerprinted ``engine=`` axis (mirroring
``transit=``); the pure-Python :class:`~repro.netsim.network.SimState`
loop remains the default and the *reference*.  The kernel produces the
**exact same event stream** as the reference engine -- every heap push
happens with the same timestamp, the same tie-breaking sequence number
and the same RNG draw order -- so its results are bit-identical, and
``tests/test_kernel.py`` pins that for every perf shape under both
transit modes in solo, stepped and batched execution.

What changes is *how* that stream is computed:

* **Array-backed packet pool.**  Per-:class:`~repro.netsim.packet.Packet`
  allocation is replaced by :class:`PacketPool`: one parallel field
  array per ``Packet`` slot (:data:`POOL_FIELDS` mirrors
  ``Packet.__slots__`` -- replint's ``compiled-pool-fields`` rule keeps
  the two tables in sync) plus a LIFO freelist of integer slot
  indices.  Heap entries carry the slot index where the reference
  carries the packet object; controller callbacks receive a read-only
  :class:`PacketView` flyweight over the same storage.

* **Fused dispatch loop.**  :class:`KernelSimState` replaces the
  table-dispatch loop with one flat drain in which the hot handlers
  (send, hop, receive, ack, loss) are inlined and every loop-invariant
  lookup -- the heap, the pool's field arrays, the per-link state
  arrays, the RNG jitter block -- is hoisted into a local.  Cold kinds
  (start, monitor-interval, ack-RTO) still dispatch through the
  ``_handlers`` table.

* **Array-backed link state.**  Mutable queue state (``busy_until``,
  ``last_arrival``, counters) and the per-offer constants (cached
  rate, drop threshold, delay, loss rate, the bound loss-draw and
  trace lookups) live in parallel arrays indexed by link; the inlined
  transmit is a line-by-line port of :meth:`Link.transmit`.  Arrays
  are re-read from the ``Link`` objects at the top of every step slice
  and written back at the end (:meth:`KernelSimulation._sync_links`),
  so external reads/mutations of link state are honoured at slice
  boundaries -- mid-slice mutation from a controller callback is the
  one thing the kernel does not support.

* **Preallocated RNG dither blocks.**  The send-pacing jitter block is
  drained through loop locals; the hop-dither block and the per-link
  loss draws go through the same generators, in the same order, as
  the reference (block draws are element-wise identical to scalar
  draws on the same bitstream).

Slot lifetime
-------------
A pool slot is released exactly once:

* a delivered packet's slot is freed at the end of its ``ack`` event;
* a lost packet's slot is freed at the end of its ``loss`` event;
* a packet whose *acknowledgement* was dropped parks its slot in
  ``flow.pending_acks`` (seq -> slot index here, seq -> ``Packet``
  in the reference) and the slot is freed only by its ``rto`` event --
  whether that event finds the packet still parked (genuine timeout)
  or already recovered by a later cumulative ack (stale no-op).  This
  is what makes slot reuse safe: an outstanding ``rto`` event always
  refers to a slot that has not been recycled, so it can never read
  another packet's sequence number and corrupt ``pending_acks``.

Slots still in flight when the simulation ends are simply not
recycled; the pool is per-simulation and dies with it.

Compilation
-----------
The module is written to be compiled with mypyc (``setup.py`` builds
it when ``REPRO_KERNEL_COMPILE=1`` and mypy is installed); uncompiled,
the same module runs as plain Python, so ``engine="kernel"`` works --
and is substantially faster than the reference -- everywhere.
:data:`KERNEL_COMPILED` reports which variant is loaded, and replint's
``compiled-digest`` rule re-checks the bit-identity contract against
the reference engine on the live build.

Limitations (all loud, none silent): ``keep_packets`` flows are
rejected at construction (pool slots are recycled, so packets cannot
be retained), and ``flow.pending_acks`` holds slot indices rather
than packets while a kernel simulation runs.
"""

from __future__ import annotations

import heapq
from heapq import heappush

import numpy as np

from repro.netsim.network import (
    ACK_RTO_FACTOR,
    EV_ACK,
    EV_HOP,
    EV_LOSS,
    EV_RCV,
    EV_RTO,
    EV_SEND,
    HOP_JITTER_FACTOR,
    MIN_MI_DURATION,
    MIN_RATE_PPS,
    RNG_BLOCK,
    SimState,
    Simulation,
)
from repro.netsim.packet import Packet

try:  # pragma: no cover - exercised only under a compiled build
    from mypy_extensions import mypyc_attr
except ImportError:  # pure-Python fallback: the decorator is a no-op
    def mypyc_attr(*_args, **_kwargs):
        def deco(cls):
            return cls
        return deco

__all__ = ["KERNEL_COMPILED", "POOL_FIELDS", "PacketPool", "PacketView",
           "KernelSimState", "KernelSimulation"]

#: True when this module is running as a compiled extension (mypyc
#: rewrites ``__file__`` to the shared object).
KERNEL_COMPILED = not __file__.endswith(".py")

#: The packet pool's field table, one parallel array per field, in
#: declaration order.  This tuple must stay identical to
#: ``Packet.__slots__`` -- replint's ``compiled-pool-fields`` rule
#: compares the two and fails the build when they drift.
POOL_FIELDS = ("flow_id", "seq", "send_time", "size_bytes",
               "arrival_time", "ack_time", "dropped", "drop_kind",
               "queue_delay", "ack_queue_delay", "hop", "reversing",
               "ack_dropped", "ack_recovered")

#: Initial pool capacity (slots); the pool doubles when exhausted.
POOL_INITIAL_CAPACITY = 256

_PACKET_DOC_FIELDS = Packet.__slots__  # imported for the doc/tests only


class PacketPool:
    """Struct-of-arrays packet storage with a LIFO freelist.

    One Python list per :data:`POOL_FIELDS` entry, plus ``free`` (the
    stack of unallocated slot indices) and ``capacity``.  The freelist
    is initialised high-to-low so the first allocation returns slot 0
    and a fresh pool allocates slots in increasing order -- which also
    makes recycle order a pure function of the event stream, i.e.
    deterministic (``tests/test_kernel.py`` pins it).

    The hot paths in :class:`KernelSimState` index the field lists
    directly; :meth:`alloc`/:meth:`release` exist for cold callers and
    tests, and :meth:`grow` extends every array **in place** so that
    hoisted local references stay valid.
    """

    __slots__ = POOL_FIELDS + ("free", "capacity")

    def __init__(self, capacity: int = POOL_INITIAL_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        cap = int(capacity)
        self.capacity = cap
        self.flow_id = [0] * cap
        self.seq = [0] * cap
        self.send_time = [0.0] * cap
        self.size_bytes = [0] * cap
        self.arrival_time: list = [None] * cap
        self.ack_time: list = [None] * cap
        self.dropped = [False] * cap
        self.drop_kind: list = [None] * cap
        self.queue_delay = [0.0] * cap
        self.ack_queue_delay = [0.0] * cap
        self.hop = [0] * cap
        self.reversing = [False] * cap
        self.ack_dropped = [False] * cap
        self.ack_recovered = [False] * cap
        self.free = list(range(cap - 1, -1, -1))

    def grow(self) -> None:
        """Double the capacity, extending every field array in place."""
        cap = self.capacity
        pad_f = [0.0] * cap
        pad_i = [0] * cap
        pad_n = [None] * cap
        pad_b = [False] * cap
        self.flow_id.extend(pad_i)
        self.seq.extend(pad_i)
        self.send_time.extend(pad_f)
        self.size_bytes.extend(pad_i)
        self.arrival_time.extend(pad_n)
        self.ack_time.extend(pad_n)
        self.dropped.extend(pad_b)
        self.drop_kind.extend(pad_n)
        self.queue_delay.extend(pad_f)
        self.ack_queue_delay.extend(pad_f)
        self.hop.extend(pad_i)
        self.reversing.extend(pad_b)
        self.ack_dropped.extend(pad_b)
        self.ack_recovered.extend(pad_b)
        # New slots stacked so the next alloc returns index ``cap``
        # (lowest fresh slot first, matching the initial fill order).
        self.free.extend(range(2 * cap - 1, cap - 1, -1))
        self.capacity = 2 * cap

    def in_use(self) -> int:
        """Number of currently allocated slots."""
        return self.capacity - len(self.free)

    def alloc(self, flow_id: int, seq: int, send_time: float,
              size_bytes: int) -> int:
        """Allocate a slot with the four constructor fields set and the
        remaining fields at their ``Packet`` defaults (cold-path /
        test helper; the engine inlines this)."""
        free = self.free
        if not free:
            self.grow()
        idx = free.pop()
        self.flow_id[idx] = flow_id
        self.seq[idx] = seq
        self.send_time[idx] = send_time
        self.size_bytes[idx] = size_bytes
        self.arrival_time[idx] = None
        self.ack_time[idx] = None
        self.dropped[idx] = False
        self.drop_kind[idx] = None
        self.queue_delay[idx] = 0.0
        self.ack_queue_delay[idx] = 0.0
        self.hop[idx] = 0
        self.reversing[idx] = False
        self.ack_dropped[idx] = False
        self.ack_recovered[idx] = False
        return idx

    def release(self, idx: int) -> None:
        """Return a slot to the freelist (cold-path / test helper)."""
        self.free.append(idx)

    def field_array(self, name: str) -> np.ndarray:
        """Diagnostic numpy view of one numeric field array.

        Object-typed fields (``arrival_time``, ``ack_time``,
        ``drop_kind``) come back as ``dtype=object``; everything else
        as the natural numeric dtype.  For inspection only -- the hot
        path works on the plain lists.
        """
        if name not in POOL_FIELDS:
            raise KeyError(f"unknown pool field {name!r}; "
                           f"fields are {POOL_FIELDS}")
        values = getattr(self, name)
        if name in ("arrival_time", "ack_time", "drop_kind"):
            return np.array(values, dtype=object)
        return np.array(values)


class PacketView:
    """Read-only flyweight presenting one pool slot as a ``Packet``.

    Controller callbacks (``on_ack``/``on_loss``) receive one of these
    instead of a :class:`~repro.netsim.packet.Packet`; every property
    reads through to the pool's field arrays, so the view is always
    current and costs one integer store to retarget.  There are
    deliberately **no setters**: a controller writing packet state
    would silently diverge from the reference engine, so it fails
    loudly here instead.
    """

    __slots__ = ("_pool", "_idx")

    def __init__(self, pool: PacketPool, idx: int = 0) -> None:
        self._pool = pool
        self._idx = idx

    @property
    def flow_id(self) -> int:
        return self._pool.flow_id[self._idx]

    @property
    def seq(self) -> int:
        return self._pool.seq[self._idx]

    @property
    def send_time(self) -> float:
        return self._pool.send_time[self._idx]

    @property
    def size_bytes(self) -> int:
        return self._pool.size_bytes[self._idx]

    @property
    def arrival_time(self):
        return self._pool.arrival_time[self._idx]

    @property
    def ack_time(self):
        return self._pool.ack_time[self._idx]

    @property
    def dropped(self) -> bool:
        return self._pool.dropped[self._idx]

    @property
    def drop_kind(self):
        return self._pool.drop_kind[self._idx]

    @property
    def queue_delay(self) -> float:
        return self._pool.queue_delay[self._idx]

    @property
    def ack_queue_delay(self) -> float:
        return self._pool.ack_queue_delay[self._idx]

    @property
    def hop(self) -> int:
        return self._pool.hop[self._idx]

    @property
    def reversing(self) -> bool:
        return self._pool.reversing[self._idx]

    @property
    def ack_dropped(self) -> bool:
        return self._pool.ack_dropped[self._idx]

    @property
    def ack_recovered(self) -> bool:
        return self._pool.ack_recovered[self._idx]

    @property
    def rtt(self):
        """Round-trip time, if the packet was acknowledged."""
        ack = self._pool.ack_time[self._idx]
        if ack is None:
            return None
        return ack - self._pool.send_time[self._idx]

    def __repr__(self) -> str:  # mirrors Packet.__repr__
        state = "dropped" if self.dropped else (
            "acked" if self.ack_time is not None else "inflight")
        return (f"PacketView(flow_id={self.flow_id}, seq={self.seq}, "
                f"send_time={self.send_time}, {state})")


@mypyc_attr(native_class=False)
class KernelSimState(SimState):
    """Stepping core with the kernel's fused dispatch loop.

    Same contract as :class:`~repro.netsim.network.SimState` --
    ``step_until``/``step_events`` slicing is bit-identical to one
    monolithic run -- plus link-array refresh/write-back at the slice
    boundaries so external readers see coherent ``Link`` objects
    between slices.
    """

    __slots__ = ()

    def step_until(self, until: float | None = None) -> int:
        sim = self.sim
        horizon = sim.duration if until is None else min(until, sim.duration)
        sim._k_refresh_links()
        processed = self._drain(horizon, -1)
        sim.events_processed += processed
        if sim.now < horizon:
            sim.now = horizon
        sim._sync_links()
        return processed

    def step_events(self, n: int) -> int:
        sim = self.sim
        if n <= 0:
            return 0
        sim._k_refresh_links()
        processed = self._drain(sim.duration, n)
        sim.events_processed += processed
        sim._sync_links()
        return processed

    def _drain(self, horizon: float, limit: int) -> int:
        """Pop-and-dispatch until the horizon (or ``limit`` events;
        ``-1`` = unbounded).

        This is the reference loop of ``SimState.step_until`` with the
        hot handlers inlined.  Inlined bodies are line-by-line ports
        of the reference handlers (``_handle_send``, ``_advance_packet``
        + ``Link.transmit`` + ``_dither_arrival``, ``_handle_receive``,
        ``_handle_ack``, ``_handle_loss``); every arithmetic expression
        keeps the reference's operand order so the floats cannot move.
        ``min``/``max`` builtin calls are replaced by two-way
        conditionals with identical semantics on every value the
        engine produces.  Cold kinds (start, MI, ack-RTO) dispatch
        through the handler table.

        Local-hoisting note: list/array objects (heap, pool fields,
        link arrays) are safe to hoist because they are only ever
        mutated in place; the one *scalar* stream hoisted into locals
        is the send-jitter block cursor, which no out-of-line callee
        touches (the hop-dither and loss streams are accessed through
        ``sim`` attributes precisely because cold-path methods share
        them).
        """
        sim = self.sim
        heap = sim._heap
        handlers = sim._handlers
        pop = heapq.heappop
        push = heappush
        pool = sim._pool
        pool_free = pool.free
        view = sim._view
        p_fid = pool.flow_id
        p_seq = pool.seq
        p_stime = pool.send_time
        p_size = pool.size_bytes
        p_arrival = pool.arrival_time
        p_ack = pool.ack_time
        p_dropped = pool.dropped
        p_dkind = pool.drop_kind
        p_qdelay = pool.queue_delay
        p_aqdelay = pool.ack_queue_delay
        p_hop = pool.hop
        p_rev = pool.reversing
        p_adrop = pool.ack_dropped
        p_arec = pool.ack_recovered
        lk_busy = sim._lk_busy
        lk_last = sim._lk_last
        lk_rate = sim._lk_rate
        lk_bw = sim._lk_bw
        lk_thresh = sim._lk_thresh
        lk_delay = sim._lk_delay
        lk_loss = sim._lk_loss
        lk_draw = sim._lk_draw
        lk_pure = sim._lk_pure
        lk_deliv = sim._lk_deliv
        lk_dropbuf = sim._lk_dropbuf
        lk_droprand = sim._lk_droprand
        lk_reord = sim._lk_reord
        lk_fault = sim._lk_fault
        eager = sim._eager
        jit = sim.jitter
        hop_jit = sim.hop_jitter
        rng_random = sim.rng.random
        jbuf = sim._jitter_buf
        jpos = sim._jitter_pos
        ev_send = EV_SEND
        ev_hop = EV_HOP
        ev_rcv = EV_RCV
        ev_ack = EV_ACK
        ev_loss = EV_LOSS
        min_rate = MIN_RATE_PPS
        min_mi = MIN_MI_DURATION
        rng_block = RNG_BLOCK
        processed = 0
        while heap and processed != limit:
            item = pop(heap)
            time, _sq, kind, flow, arg = item
            if time > horizon:
                push(heap, item)
                break
            sim.now = time
            processed += 1
            if kind == ev_send:
                flow.send_scheduled = False
                if flow.stopped or time >= flow.stop_time:
                    continue
                aidx = -1
                stime = -1.0
                if flow.is_window:
                    cwnd = flow.cwnd_fn(time)
                    if flow.inflight >= cwnd:
                        continue  # re-armed by the next ack/loss
                    window = True
                    emit = True
                else:
                    window = False
                    rate = flow.pacing_fn(time)
                    if rate < min_rate:
                        rate = min_rate
                    mr = flow.max_rate
                    if rate > mr:
                        rate = mr
                    cap_fn = flow.cap_fn
                    emit = True
                    if cap_fn is not None:
                        cap = cap_fn(time)
                        if cap is not None and flow.inflight >= cap:
                            emit = False
                if emit:
                    # _emit_packet: pool slot alloc + note_sent inline.
                    if not pool_free:
                        pool.grow()
                    idx = pool_free.pop()
                    sq = flow.next_seq
                    flow.next_seq = sq + 1
                    p_fid[idx] = flow.flow_id
                    p_seq[idx] = sq
                    p_stime[idx] = time
                    p_size[idx] = flow.packet_bytes
                    p_arrival[idx] = None
                    p_ack[idx] = None
                    p_dropped[idx] = False
                    p_dkind[idx] = None
                    p_qdelay[idx] = 0.0
                    p_aqdelay[idx] = 0.0
                    p_hop[idx] = 0
                    p_rev[idx] = False
                    p_adrop[idx] = False
                    p_arec[idx] = False
                    flow.total_sent += 1
                    flow.mi_sent += 1
                    flow.inflight += 1
                    if time > flow.last_event_time:
                        flow.last_event_time = time
                    if eager:
                        sim._k_emit_eager(flow, idx)
                    else:
                        aidx = idx  # hop 0 advances synchronously below
                if window:
                    if flow.inflight < cwnd:
                        # Pace the remaining window over one smoothed
                        # RTT (srtt or max(base_rtt, MIN_MI_DURATION)).
                        srtt = flow.srtt
                        if not srtt:
                            base = flow.base_rtt
                            srtt = base if base > min_mi else min_mi
                        stime = time + srtt / (cwnd if cwnd > 1.0 else 1.0)
                else:
                    # Send-pacing jitter, served from the hoisted block.
                    if jbuf is None or jpos >= rng_block:
                        jbuf = sim._jitter_buf = rng_random(rng_block).tolist()
                        jpos = 0
                    u = jbuf[jpos]
                    jpos += 1
                    stime = time + (1.0 / rate) * (1.0 + jit * (u - 0.5))
            elif kind == ev_rcv:
                idx = arg
                if eager:
                    sim._k_receive_eager(flow, idx)
                    continue
                p_rev[idx] = True
                pure = flow.pure_return_delay
                if pure is not None:
                    # Dominant shape: single pure-propagation return.
                    p_hop[idx] = 1
                    cursor = time + pure
                    seq = sim._seq + 1
                    sim._seq = seq
                    if p_dropped[idx]:
                        push(heap, (cursor, seq, EV_LOSS, flow, idx))
                    else:
                        p_ack[idx] = cursor
                        push(heap, (cursor, seq, EV_ACK, flow, idx))
                    continue
                p_hop[idx] = 0
                sim._k_advance_reverse(flow, idx)
                continue
            elif kind == ev_ack:
                idx = arg
                if flow.pending_acks:
                    sim._k_recover_pending(flow, p_seq[idx])
                # note_ack inline.
                flow.total_acked += 1
                flow.mi_acked += 1
                infl = flow.inflight - 1
                flow.inflight = infl if infl > 0 else 0
                if time > flow.last_event_time:
                    flow.last_event_time = time
                rtt = time - p_stime[idx]
                flow.last_rtt = rtt
                srtt = flow.srtt
                flow.srtt = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt
                ms = flow.min_rtt_seen
                if ms is None or rtt < ms:
                    flow.min_rtt_seen = rtt
                flow._mi_times.append(time)
                flow._mi_rtts.append(rtt)
                if rtt < flow._mi_min_rtt:
                    flow._mi_min_rtt = rtt
                cb = flow.on_ack_cb
                if cb is not None:
                    view._idx = idx
                    cb(flow, view, time)
                # _clock_window inline (ack-clocking).
                if flow.is_window and not flow.stopped \
                        and flow.inflight < flow.cwnd_fn(time):
                    if not flow.send_scheduled and time < flow.stop_time:
                        flow.send_scheduled = True
                        seq = sim._seq + 1
                        sim._seq = seq
                        push(heap, (time, seq, EV_SEND, flow, None))
                pool_free.append(idx)  # round trip complete
                continue
            elif kind == ev_hop:
                idx = arg
                if p_rev[idx]:
                    sim._k_advance_reverse(flow, idx)
                    continue
                aidx = idx
                stime = -1.0
            elif kind == ev_loss:
                idx = arg
                # A loss notice is cumulative feedback: recover parked
                # acks below the gap, then account the loss.
                if flow.pending_acks:
                    sim._k_recover_pending(flow, p_seq[idx])
                flow.total_lost += 1
                flow.mi_lost += 1
                infl = flow.inflight - 1
                flow.inflight = infl if infl > 0 else 0
                if time > flow.last_event_time:
                    flow.last_event_time = time
                cb = flow.on_loss_cb
                if cb is not None:
                    view._idx = idx
                    cb(flow, view, time)
                if flow.is_window and not flow.stopped \
                        and flow.inflight < flow.cwnd_fn(time):
                    if not flow.send_scheduled and time < flow.stop_time:
                        flow.send_scheduled = True
                        seq = sim._seq + 1
                        sim._seq = seq
                        push(heap, (time, seq, EV_SEND, flow, None))
                pool_free.append(idx)
                continue
            else:
                # Cold kinds: start, monitor interval, ack-RTO.  None
                # of these touches the hoisted jitter cursor.
                handlers[kind](flow, arg)
                continue

            # --- shared forward advance (reached from send/hop only) --
            # _advance_packet with Link.transmit and _dither_arrival
            # inlined; runs *before* the send gets scheduled so heap
            # sequence numbers are allocated in reference order.
            if aidx >= 0:
                hop = p_hop[aidx]
                j = flow.k_fwd[hop]
                pure = lk_pure[j]
                if pure is not None:
                    # PropagationLink.transmit: stateless, no counters.
                    qd = 0.0
                    depart = time + pure
                    delivered = True
                elif lk_fault[j] is not None:
                    # Faulted link: delegate to Link.transmit (the
                    # object keeps the fault chains and counters); the
                    # drop branches mirror _advance_packet exactly --
                    # "random" keeps wire timing, everything else
                    # ("buffer"/"fault") charges queue + propagation.
                    delivered, dkind, depart, qd = lk_fault[j](time)
                    if not delivered:
                        p_qdelay[aidx] += qd
                        p_dropped[aidx] = True
                        p_dkind[aidx] = dkind
                        sim._k_forward_drop(
                            flow, aidx, hop,
                            depart if dkind == "random"
                            else time + qd + lk_delay[j])
                else:
                    last = lk_last[j]
                    if time < last - 1e-12:
                        lk_reord[j] += 1
                    if time > last:
                        lk_last[j] = time
                    rate = lk_rate[j]
                    if rate is None:
                        rate = lk_bw[j](time)
                    b = lk_busy[j]
                    qd = b - time
                    if qd < 0.0:
                        qd = 0.0
                    if qd * rate >= lk_thresh[j]:
                        lk_dropbuf[j] += 1
                        delivered = False
                        p_qdelay[aidx] += qd
                        p_dropped[aidx] = True
                        p_dkind[aidx] = "buffer"
                        # Buffer drop never occupies the queue: charge
                        # the timing a packet just behind it would see.
                        sim._k_forward_drop(flow, aidx, hop,
                                            time + qd + lk_delay[j])
                    else:
                        service = 1.0 / rate
                        lk_busy[j] = (b if b > time else time) + service
                        depart = time + qd + service + lk_delay[j]
                        loss = lk_loss[j]
                        if loss > 0.0 and lk_draw[j]() < loss:
                            lk_droprand[j] += 1
                            delivered = False
                            p_qdelay[aidx] += qd
                            p_dropped[aidx] = True
                            p_dkind[aidx] = "random"
                            # Wire drop: normal queue+service+prop
                            # timing downstream of the drop.
                            sim._k_forward_drop(flow, aidx, hop, depart)
                        else:
                            lk_deliv[j] += 1
                            delivered = True
                if delivered:
                    p_qdelay[aidx] += qd
                    hop += 1
                    p_hop[aidx] = hop
                    seq = sim._seq + 1
                    sim._seq = seq
                    if hop < flow.n_links:
                        # _dither_arrival inline (forward, size 1.0).
                        if hop_jit > 0.0:
                            nj = flow.k_fwd[hop]
                            r2 = lk_rate[nj]
                            if r2 is None:
                                r2 = lk_bw[nj](depart)
                            hpos = sim._hop_pos
                            hbuf = sim._hop_buf
                            if hbuf is None or hpos >= rng_block:
                                hbuf = sim._hop_buf = \
                                    sim._hop_rng.random(rng_block).tolist()
                                hpos = 0
                            sim._hop_pos = hpos + 1
                            arrival = depart + hop_jit * hbuf[hpos] * (1.0 / r2)
                        else:
                            arrival = depart
                        floors = flow.fwd_hop_floor
                        floor = floors[hop]
                        if arrival > floor:
                            floors[hop] = arrival
                        else:
                            arrival = floor
                        push(heap, (arrival, seq, EV_HOP, flow, aidx))
                    else:
                        p_arrival[aidx] = depart
                        push(heap, (depart, seq, EV_RCV, flow, aidx))

            # --- deferred _schedule_send (send events only) ----------
            if stime >= 0.0:
                if not (flow.send_scheduled or flow.stopped) \
                        and stime < flow.stop_time:
                    flow.send_scheduled = True
                    seq = sim._seq + 1
                    sim._seq = seq
                    push(heap, (stime if stime > time else time, seq,
                                EV_SEND, flow, None))
        sim._jitter_buf = jbuf
        sim._jitter_pos = jpos
        return processed


@mypyc_attr(native_class=False)
class KernelSimulation(Simulation):
    """Drop-in :class:`~repro.netsim.network.Simulation` running on the
    array-backed kernel core.

    Constructed exactly like the reference (``engine_class("kernel")``
    resolves to this class); ``run``/``run_all``/``summary`` and the
    :class:`SimState` stepping interface are inherited unchanged --
    only the stepping core and the packet/link storage differ.
    ``events_processed`` counts the same events as the reference: the
    kernel never elides or merges an event, which is also why its
    digests cannot move.
    """

    def __init__(self, links, specs, duration, seed: int = 0,
                 jitter: float = 0.02, transit: str = "event",
                 hop_jitter: float = HOP_JITTER_FACTOR):
        for spec in specs:
            if spec.keep_packets:
                raise ValueError(
                    "engine='kernel' recycles packet slots and cannot "
                    "retain per-packet records; use the reference "
                    "engine for keep_packets flows")
        super().__init__(links, specs, duration, seed=seed, jitter=jitter,
                         transit=transit, hop_jitter=hop_jitter)
        self._pool = PacketPool()
        self._view = PacketView(self._pool)
        self._k_bind_links()
        for flow in self.flows:
            flow.k_fwd = tuple(self._k_index[id(link)]
                               for link in flow.links)
            flow.k_rev = tuple(self._k_index[id(link)]
                               for link in flow.reverse_links)
        # Handler table: cold kinds dispatch normally; hot kinds are
        # inlined in KernelSimState._drain and their table slots fail
        # loudly if something drives this simulation through the base
        # SimState loop (which would mis-read pool indices as packets).
        self._handlers = (
            self._handle_start, self._k_fused_only, self._k_fused_only,
            self._k_fused_only, self._k_fused_only, self._k_fused_only,
            self._k_handle_rto, self._handle_mi)
        self.state = KernelSimState(self)

    # --- link-state arrays ------------------------------------------------

    def _k_bind_links(self) -> None:
        """Index every link reachable from any flow (forward or
        reverse, including per-path pure-propagation pseudo-links that
        are not in ``topology.all_links()``) and build the parallel
        state arrays."""
        ordered: list = []
        index: dict[int, int] = {}
        for link in self.links:
            if id(link) not in index:
                index[id(link)] = len(ordered)
                ordered.append(link)
        for flow in self.flows:
            for link in flow.links:
                if id(link) not in index:
                    index[id(link)] = len(ordered)
                    ordered.append(link)
            for link in flow.reverse_links:
                if id(link) not in index:
                    index[id(link)] = len(ordered)
                    ordered.append(link)
        self._k_links = ordered
        self._k_index = index
        n = len(ordered)
        self._lk_busy = [0.0] * n
        self._lk_last = [0.0] * n
        self._lk_rate: list = [None] * n
        self._lk_bw: list = [None] * n
        self._lk_thresh = [0.0] * n
        self._lk_delay = [0.0] * n
        self._lk_loss = [0.0] * n
        self._lk_draw: list = [None] * n
        self._lk_pure: list = [None] * n
        self._lk_deliv = [0] * n
        self._lk_dropbuf = [0] * n
        self._lk_droprand = [0] * n
        self._lk_reord = [0] * n
        #: Bound ``Link.transmit`` for faulted links, ``None`` for the
        #: fault-free fast path.  Faulted links keep their state on the
        #: object (the fault process mutates busy_until/counters/RNG
        #: chains), so the inlined transmit delegates to the object and
        #: the state arrays are neither refreshed nor synced for them.
        self._lk_fault: list = [None] * n
        self._k_refresh_links()

    def _k_refresh_links(self) -> None:
        """Re-read link state into the arrays (top of every slice), so
        anything done to the ``Link`` objects between slices -- direct
        ``transmit()`` calls, ``reset()``, even a trace replacement --
        is honoured by the kernel from the next slice on."""
        for j, link in enumerate(self._k_links):
            if getattr(link, "fault", None) is not None:
                # Faulted link: the object stays authoritative.  The
                # inlined transmit sites delegate to the bound method,
                # and every rate read falls through the ``rate is
                # None`` idiom to the fault-aware ``bandwidth_at``.
                self._lk_fault[j] = link.transmit
                self._lk_rate[j] = None
                self._lk_bw[j] = link.bandwidth_at
                self._lk_delay[j] = link.delay
                self._lk_pure[j] = link.pure_delay
                continue
            self._lk_fault[j] = None
            self._lk_busy[j] = link.busy_until
            self._lk_last[j] = link.last_arrival
            self._lk_rate[j] = link._const_rate
            self._lk_bw[j] = link.trace.bandwidth_at
            self._lk_thresh[j] = link.queue_size + 1.0 - 1e-9
            self._lk_delay[j] = link.delay
            self._lk_loss[j] = link.loss_rate
            # Bound draw method: the loss stream stays owned by the
            # link's own generator, drawn in the same order as
            # Link.transmit would draw it.
            self._lk_draw[j] = link.rng.random
            self._lk_pure[j] = link.pure_delay
            self._lk_deliv[j] = link.delivered
            self._lk_dropbuf[j] = link.dropped_buffer
            self._lk_droprand[j] = link.dropped_random
            self._lk_reord[j] = link.reordered

    def _sync_links(self) -> None:
        """Write mutable link state back to the ``Link`` objects
        (bottom of every slice).  Faulted links are skipped: their
        state never left the object, and writing back the stale arrays
        would clobber what the delegated transmits accumulated."""
        busy = self._lk_busy
        last = self._lk_last
        deliv = self._lk_deliv
        dropbuf = self._lk_dropbuf
        droprand = self._lk_droprand
        reord = self._lk_reord
        fault = self._lk_fault
        for j, link in enumerate(self._k_links):
            if fault[j] is not None:
                continue
            link.busy_until = busy[j]
            link.last_arrival = last[j]
            link.delivered = deliv[j]
            link.dropped_buffer = dropbuf[j]
            link.dropped_random = droprand[j]
            link.reordered = reord[j]

    # --- cold-path handlers ----------------------------------------------

    def _k_fused_only(self, flow, packet=None) -> None:
        raise RuntimeError(
            "kernel hot-path events dispatch through KernelSimState's "
            "fused loop; drive this simulation via sim.state / run(), "
            "not a base SimState")

    def _k_forward_drop(self, flow, idx: int, hop: int,
                        cursor: float) -> None:
        """Walk the links past a forward drop, charging current queue
        occupancy plus service, then schedule the receiver's gap
        observation (reference: the drop tail of ``_advance_packet``)."""
        k_fwd = flow.k_fwd
        busy = self._lk_busy
        rate_a = self._lk_rate
        bw_a = self._lk_bw
        delay_a = self._lk_delay
        fault_a = self._lk_fault
        links = self._k_links
        for h in range(hop + 1, flow.n_links):
            j = k_fwd[h]
            # Faulted links keep busy_until on the object (their rate
            # reads already route through the object's bandwidth_at
            # via the None-rate idiom).
            b = busy[j] if fault_a[j] is None else links[j].busy_until
            qd = b - cursor
            if qd < 0.0:
                qd = 0.0
            r = rate_a[j]
            if r is None:
                r = bw_a[j](cursor)
            cursor += qd + 1.0 / r + delay_a[j]
        self._push(cursor, EV_RCV, flow, idx)

    def _k_advance_reverse(self, flow, idx: int) -> None:
        """One reverse hop of an ack / loss notice at the current
        clock (reference: ``_advance_reverse``)."""
        pool = self._pool
        now = self.now
        hop = pool.hop[idx]
        k_rev = flow.k_rev
        j = k_rev[hop]
        pure = self._lk_pure[j]
        if pure is not None:
            # Zero-work fast path: pure propagation never queues,
            # drops, or counts.
            cursor = now + pure
        elif self._lk_fault[j] is not None:
            # Faulted reverse link: delegate to Link.transmit and
            # mirror _advance_reverse's branches -- a dropped real ack
            # parks whatever the drop kind, a dropped loss notice is
            # delivered late ("random" keeps wire timing, the rest
            # charge queue + service + propagation).
            size = flow.ack_size
            delivered, dkind, depart, queue_delay = \
                self._lk_fault[j](now, size)
            pool.ack_queue_delay[idx] += queue_delay
            if not delivered and not pool.dropped[idx]:
                self._k_park_ack(flow, idx)
                return
            if delivered or dkind == "random":
                cursor = depart
            else:
                cursor = (now + queue_delay
                          + size / self._k_links[j].bandwidth_at(now)
                          + self._lk_delay[j])
        else:
            size = flow.ack_size
            # Link.transmit(now, size) inline.
            last = self._lk_last[j]
            if now < last - 1e-12:
                self._lk_reord[j] += 1
            if now > last:
                self._lk_last[j] = now
            rate = self._lk_rate[j]
            if rate is None:
                rate = self._lk_bw[j](now)
            service = size / rate
            b = self._lk_busy[j]
            queue_delay = b - now
            if queue_delay < 0.0:
                queue_delay = 0.0
            if queue_delay * rate >= self._lk_thresh[j]:
                # Buffer drop.
                self._lk_dropbuf[j] += 1
                pool.ack_queue_delay[idx] += queue_delay
                if not pool.dropped[idx]:
                    self._k_park_ack(flow, idx)
                    return
                # Buffer-dropped loss notice: delivered late.
                cursor = (now + queue_delay + size / rate
                          + self._lk_delay[j])
            else:
                self._lk_busy[j] = (b if b > now else now) + service
                depart = now + queue_delay + service + self._lk_delay[j]
                loss = self._lk_loss[j]
                if loss > 0.0 and self._lk_draw[j]() < loss:
                    # Random wire drop.
                    self._lk_droprand[j] += 1
                    pool.ack_queue_delay[idx] += queue_delay
                    if not pool.dropped[idx]:
                        self._k_park_ack(flow, idx)
                        return
                    # Randomly dropped loss notice: normal timing.
                    cursor = depart
                else:
                    self._lk_deliv[j] += 1
                    pool.ack_queue_delay[idx] += queue_delay
                    cursor = depart
        hop += 1
        pool.hop[idx] = hop
        if hop < flow.n_rev_links:
            self._push(self._k_dither_reverse(flow, idx, hop, cursor),
                       EV_HOP, flow, idx)
            return
        seq = self._seq + 1
        self._seq = seq
        if pool.dropped[idx]:
            heappush(self._heap, (cursor, seq, EV_LOSS, flow, idx))
        else:
            pool.ack_time[idx] = cursor
            heappush(self._heap, (cursor, seq, EV_ACK, flow, idx))

    def _k_park_ack(self, flow, idx: int) -> None:
        """A real ack was dropped on the reverse path: park the slot in
        ``pending_acks`` and arm the retransmit-timeout fallback.  The
        slot stays allocated until its RTO event fires (see the module
        docstring's slot-lifetime contract)."""
        flow.pending_acks[self._pool.seq[idx]] = idx
        srtt = flow.srtt
        if not srtt:
            srtt = flow.base_rtt
        if srtt < MIN_MI_DURATION:
            srtt = MIN_MI_DURATION
        self._push(self.now + ACK_RTO_FACTOR * srtt, EV_RTO, flow, idx)

    def _k_dither_reverse(self, flow, idx: int, hop: int,
                          depart: float) -> float:
        """Forwarding dither for a deferred *reverse* hop arrival
        (reference: ``_dither_arrival`` with ``reversing=True``)."""
        if self.hop_jitter > 0.0:
            j = flow.k_rev[hop]
            rate = self._lk_rate[j]
            if rate is None:
                rate = self._lk_bw[j](depart)
            service = flow.ack_size / rate
            pos = self._hop_pos
            buf = self._hop_buf
            if buf is None or pos >= RNG_BLOCK:
                buf = self._hop_buf = self._hop_rng.random(RNG_BLOCK).tolist()
                pos = 0
            self._hop_pos = pos + 1
            depart += self.hop_jitter * buf[pos] * service
        floors = flow.rev_hop_floor
        floor = floors[hop]
        if depart > floor:
            floors[hop] = depart
            return depart
        return floor

    def _k_note_ack(self, flow, idx: int, now: float) -> None:
        """``Flow.note_ack`` against pool storage (recovery path; the
        fused ack branch inlines its own copy)."""
        flow.total_acked += 1
        flow.mi_acked += 1
        infl = flow.inflight - 1
        flow.inflight = infl if infl > 0 else 0
        if now > flow.last_event_time:
            flow.last_event_time = now
        rtt = now - self._pool.send_time[idx]
        flow.last_rtt = rtt
        srtt = flow.srtt
        flow.srtt = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt
        ms = flow.min_rtt_seen
        if ms is None or rtt < ms:
            flow.min_rtt_seen = rtt
        flow._mi_times.append(now)
        flow._mi_rtts.append(rtt)
        if rtt < flow._mi_min_rtt:
            flow._mi_min_rtt = rtt

    def _k_recover_pending(self, flow, before_seq: int) -> None:
        """Cumulative feedback below ``before_seq``: acknowledge every
        earlier parked packet now (reference: ``_recover_pending``).
        Recovered slots are *not* freed here -- their RTO event still
        references them and will release them as a stale no-op."""
        pending = flow.pending_acks
        if not pending:
            return
        pool = self._pool
        now = self.now
        cb = flow.on_ack_cb
        view = self._view
        for seq in sorted(s for s in pending if s < before_seq):
            ridx = pending.pop(seq)
            pool.ack_time[ridx] = now
            pool.ack_recovered[ridx] = True
            self._k_note_ack(flow, ridx, now)
            if cb is not None:
                view._idx = ridx
                cb(flow, view, now)

    def _k_handle_rto(self, flow, idx: int) -> None:
        """Retransmit-timeout fallback for a dropped ack (reference:
        ``_handle_ack_rto``).  Sole release point for parked slots."""
        pool = self._pool
        if flow.pending_acks.pop(pool.seq[idx], None) is None:
            # Already recovered by a later cumulative ack; the slot
            # was kept alive for exactly this moment.
            pool.free.append(idx)
            return
        pool.ack_dropped[idx] = True
        now = self.now
        flow.total_lost += 1
        flow.mi_lost += 1
        infl = flow.inflight - 1
        flow.inflight = infl if infl > 0 else 0
        if now > flow.last_event_time:
            flow.last_event_time = now
        cb = flow.on_loss_cb
        if cb is not None:
            view = self._view
            view._idx = idx
            cb(flow, view, now)
        if flow.is_window and not flow.stopped \
                and flow.inflight < flow.cwnd_fn(now):
            self._schedule_send(flow, now)
        pool.free.append(idx)

    # --- eager twin (transit="eager") ------------------------------------

    def _k_emit_eager(self, flow, idx: int) -> None:
        """Transit every forward hop at emit time (reference:
        ``_emit_eager``), against the link arrays."""
        pool = self._pool
        cursor = self.now
        queue_delay = 0.0
        delivered = True
        k_fwd = flow.k_fwd
        for hop in range(flow.n_links):
            j = k_fwd[hop]
            pure = self._lk_pure[j]
            if pure is not None:
                cursor += pure
                continue
            if self._lk_fault[j] is not None:
                # Faulted link: delegate (mirrors _emit_eager's drop
                # branches; "random" keeps wire timing).
                ok, dkind, depart, hop_qd = self._lk_fault[j](cursor)
                queue_delay += hop_qd
                if not ok:
                    delivered = False
                    pool.dropped[idx] = True
                    pool.drop_kind[idx] = dkind
                    self._k_forward_drop(
                        flow, idx, hop,
                        depart if dkind == "random"
                        else cursor + hop_qd + self._lk_delay[j])
                    break
                cursor = depart
                continue
            last = self._lk_last[j]
            if cursor < last - 1e-12:
                self._lk_reord[j] += 1
            if cursor > last:
                self._lk_last[j] = cursor
            rate = self._lk_rate[j]
            if rate is None:
                rate = self._lk_bw[j](cursor)
            b = self._lk_busy[j]
            hop_qd = b - cursor
            if hop_qd < 0.0:
                hop_qd = 0.0
            if hop_qd * rate >= self._lk_thresh[j]:
                self._lk_dropbuf[j] += 1
                queue_delay += hop_qd
                delivered = False
                pool.dropped[idx] = True
                pool.drop_kind[idx] = "buffer"
                self._k_forward_drop(flow, idx, hop,
                                     cursor + hop_qd + self._lk_delay[j])
                break
            service = 1.0 / rate
            self._lk_busy[j] = (b if b > cursor else cursor) + service
            depart = cursor + hop_qd + service + self._lk_delay[j]
            loss = self._lk_loss[j]
            if loss > 0.0 and self._lk_draw[j]() < loss:
                self._lk_droprand[j] += 1
                queue_delay += hop_qd
                delivered = False
                pool.dropped[idx] = True
                pool.drop_kind[idx] = "random"
                self._k_forward_drop(flow, idx, hop, depart)
                break
            self._lk_deliv[j] += 1
            queue_delay += hop_qd
            cursor = depart
        pool.queue_delay[idx] = queue_delay
        if delivered:
            pool.arrival_time[idx] = cursor
            self._push(cursor, EV_RCV, flow, idx)

    def _k_receive_eager(self, flow, idx: int) -> None:
        """Eager receive: collapse the whole reverse walk into the
        ``rcv`` handler (reference: the eager branch of
        ``_handle_receive`` + ``_transit_reverse``)."""
        pool = self._pool
        size = flow.ack_size
        cursor = self.now
        queue_delay = 0.0
        for j in flow.k_rev:
            pure = self._lk_pure[j]
            if pure is not None:
                cursor += pure
                continue
            if self._lk_fault[j] is not None:
                # Faulted reverse link, frozen eager semantics: every
                # dropped ack is delivered late or at wire timing,
                # never lost (mirrors _transit_reverse).
                ok, dkind, depart, hop_qd = self._lk_fault[j](cursor, size)
                queue_delay += hop_qd
                if ok or dkind == "random":
                    cursor = depart
                else:
                    cursor += (hop_qd
                               + size / self._k_links[j].bandwidth_at(cursor)
                               + self._lk_delay[j])
                continue
            last = self._lk_last[j]
            if cursor < last - 1e-12:
                self._lk_reord[j] += 1
            if cursor > last:
                self._lk_last[j] = cursor
            rate = self._lk_rate[j]
            if rate is None:
                rate = self._lk_bw[j](cursor)
            service = size / rate
            b = self._lk_busy[j]
            hop_qd = b - cursor
            if hop_qd < 0.0:
                hop_qd = 0.0
            if hop_qd * rate >= self._lk_thresh[j]:
                # Frozen pre-refactor semantics: buffer-dropped acks
                # are delivered late, never lost.
                self._lk_dropbuf[j] += 1
                queue_delay += hop_qd
                cursor += hop_qd + size / rate + self._lk_delay[j]
                continue
            self._lk_busy[j] = (b if b > cursor else cursor) + service
            depart = cursor + hop_qd + service + self._lk_delay[j]
            loss = self._lk_loss[j]
            if loss > 0.0 and self._lk_draw[j]() < loss:
                self._lk_droprand[j] += 1
                queue_delay += hop_qd
                cursor = depart
                continue
            self._lk_deliv[j] += 1
            queue_delay += hop_qd
            cursor = depart
        if pool.dropped[idx]:
            self._push(cursor, EV_LOSS, flow, idx)
        else:
            pool.ack_time[idx] = cursor
            pool.ack_queue_delay[idx] = queue_delay
            self._push(cursor, EV_ACK, flow, idx)
