"""Bandwidth traces: time-varying link capacity processes.

The paper's motivating experiment (Fig. 1a) uses a bottleneck whose
bandwidth oscillates between 20 and 30 Mbps; training randomises static
capacities over Table 3's ranges.  A trace maps simulation time to
capacity in packets/second so the link model never needs to know about
bits.

All traces are deterministic given their constructor arguments (the
random-walk trace takes an explicit seed), which keeps experiments
reproducible.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.netsim.rngstreams import stream_rng

__all__ = [
    "mbps_to_pps",
    "pps_to_mbps",
    "BandwidthTrace",
    "ConstantTrace",
    "StepTrace",
    "RandomWalkTrace",
    "PiecewiseTrace",
    "register_trace",
    "freeze_trace",
    "make_trace",
    "trace_names",
]

#: Default simulated packet size (bytes).  1500 B is the standard
#: Ethernet MTU the paper's testbed uses.
DEFAULT_PACKET_BYTES = 1500


def mbps_to_pps(mbps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Convert a bandwidth in Mbps to packets/second."""
    return mbps * 1e6 / (packet_bytes * 8)


def pps_to_mbps(pps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Convert packets/second back to Mbps."""
    return pps * packet_bytes * 8 / 1e6


class BandwidthTrace:
    """Base class: capacity as a function of time (packets/second)."""

    def bandwidth_at(self, t: float) -> float:
        """Instantaneous capacity at time ``t`` (seconds)."""
        raise NotImplementedError

    def constant_rate(self) -> float | None:
        """The trace's rate if it is constant for all time, else ``None``.

        The engine's hot paths key off this: a non-``None`` rate lets
        :class:`~repro.netsim.link.Link` cache the service rate per
        offer and lets the simulation close monitor intervals without
        sampling the trace at all (O(1) bottleneck capacity).  Only
        :class:`ConstantTrace` itself answers -- and only when not
        subclassed, so a subclass overriding ``bandwidth_at`` can never
        be wrongly cached.
        """
        return None

    def max_bandwidth(self) -> float:
        """Upper bound on capacity (used for rate clamping)."""
        raise NotImplementedError

    def mean_bandwidth(self, t0: float, t1: float, samples: int = 64) -> float:
        """Average capacity over ``[t0, t1]`` (midpoint sampling).

        ``[t0, t1]`` is split into ``samples`` equal sub-intervals and
        the capacity is read at each sub-interval's centre -- the
        midpoint rule.  (Sampling ``linspace(t0, t1)`` instead would
        weight both endpoints' regimes twice and bias the estimate for
        step-like traces whose switch falls inside the interval.)
        """
        if t1 <= t0:
            return self.bandwidth_at(t0)
        width = (t1 - t0) / samples
        at = self.bandwidth_at
        values = [at(float(t))
                  for t in (t0 + (np.arange(samples) + 0.5) * width)]
        # Same pairwise kernel np.mean(list) wraps, minus the wrapper.
        return float(np.add.reduce(np.asarray(values)) / samples)


class ConstantTrace(BandwidthTrace):
    """Fixed capacity."""

    def __init__(self, pps: float):
        if pps <= 0:
            raise ValueError("bandwidth must be positive")
        self.pps = float(pps)

    def bandwidth_at(self, t: float) -> float:
        return self.pps

    def constant_rate(self) -> float | None:
        # Exact-type guard: a subclass may override bandwidth_at, and a
        # cached rate would silently bypass it.
        return self.pps if type(self) is ConstantTrace else None

    def max_bandwidth(self) -> float:
        return self.pps

    def mean_bandwidth(self, t0: float, t1: float, samples: int = 64) -> float:
        return self.pps

    @classmethod
    def from_mbps(cls, mbps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> "ConstantTrace":
        return cls(mbps_to_pps(mbps, packet_bytes))


class StepTrace(BandwidthTrace):
    """Square wave between ``low`` and ``high``, toggling every ``period``.

    Fig. 1(a) uses this shape: the bottleneck alternates 20 <-> 30 Mbps.
    The wave starts at ``high``.
    """

    def __init__(self, low_pps: float, high_pps: float, period: float, start_high: bool = True):
        if low_pps <= 0 or high_pps <= 0:
            raise ValueError("bandwidth must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        self.low = float(low_pps)
        self.high = float(high_pps)
        self.period = float(period)
        self.start_high = start_high

    def bandwidth_at(self, t: float) -> float:
        phase = int(t / self.period) % 2
        first, second = (self.high, self.low) if self.start_high else (self.low, self.high)
        return first if phase == 0 else second

    def max_bandwidth(self) -> float:
        return max(self.low, self.high)

    @classmethod
    def from_mbps(cls, low_mbps: float, high_mbps: float, period: float,
                  packet_bytes: int = DEFAULT_PACKET_BYTES, start_high: bool = True) -> "StepTrace":
        return cls(mbps_to_pps(low_mbps, packet_bytes),
                   mbps_to_pps(high_mbps, packet_bytes), period, start_high)


class RandomWalkTrace(BandwidthTrace):
    """Piecewise-constant multiplicative random walk within bounds.

    Every ``interval`` seconds the capacity is multiplied by a factor
    drawn uniformly from ``[1 - step, 1 + step]`` and clamped to
    ``[low, high]``.  The walk is pre-generated for ``horizon`` seconds
    so lookups are O(1).
    """

    def __init__(self, low_pps: float, high_pps: float, interval: float = 1.0,
                 step: float = 0.2, horizon: float = 600.0, seed: int = 0):
        if not 0 < low_pps <= high_pps:
            raise ValueError("need 0 < low <= high")
        rng = stream_rng("trace.synth", seed)
        n = max(1, int(np.ceil(horizon / interval)) + 1)
        values = np.empty(n)
        values[0] = rng.uniform(low_pps, high_pps)
        for i in range(1, n):
            factor = 1.0 + rng.uniform(-step, step)
            values[i] = min(max(values[i - 1] * factor, low_pps), high_pps)
        self.interval = float(interval)
        self.values = values
        self.low = float(low_pps)
        self.high = float(high_pps)

    def bandwidth_at(self, t: float) -> float:
        idx = int(t / self.interval)
        idx = min(max(idx, 0), len(self.values) - 1)
        return float(self.values[idx])

    def max_bandwidth(self) -> float:
        return self.high


class PiecewiseTrace(BandwidthTrace):
    """Arbitrary (time, capacity) breakpoints with step interpolation.

    ``points`` is a sequence of ``(start_time, pps)`` pairs sorted by
    time; the capacity holds from each start time until the next.
    """

    def __init__(self, points: list[tuple[float, float]]):
        if not points:
            raise ValueError("need at least one breakpoint")
        times = [p[0] for p in points]
        if times != sorted(times):
            raise ValueError("breakpoints must be sorted by time")
        if any(p[1] <= 0 for p in points):
            raise ValueError("bandwidth must be positive")
        self.times = times
        self.pps = [float(p[1]) for p in points]

    def bandwidth_at(self, t: float) -> float:
        idx = bisect.bisect_right(self.times, t) - 1
        idx = max(idx, 0)
        return self.pps[idx]

    def max_bandwidth(self) -> float:
        return max(self.pps)


# --- named-trace registry ----------------------------------------------------
#
# Scenario descriptions (repro.eval.scenarios) must stay declarative and
# picklable, so they reference traces by *name*; the registry maps names
# to deterministic factories.  Factories (rather than instances) keep
# registration cheap and every lookup independent.

_TRACE_REGISTRY: dict = {}


def register_trace(name: str, factory, overwrite: bool = False) -> None:
    """Register a named trace factory (``factory() -> BandwidthTrace``).

    Experiments register their traces at import time; ``overwrite``
    guards against two experiments silently claiming the same name.
    """
    if not overwrite and name in _TRACE_REGISTRY:
        raise ValueError(f"trace {name!r} already registered")
    # Import-time registration: the registry is append-only, populated
    # before any simulation runs, and guarded against overwrites above,
    # so interleaved cells can only ever *read* an entry concurrently.
    _TRACE_REGISTRY[name] = factory  # replint: disable=mutable-global-state


def freeze_trace(trace: BandwidthTrace) -> BandwidthTrace:
    """Mark a trace's array payloads read-only and return it.

    Traces are pure functions of time -- nothing in the engine writes
    to one -- so freezing is behaviourally inert; it turns the
    shared-immutable assumption batched execution relies on
    (:mod:`repro.eval.batch` hands one trace object to many cells)
    into a hard fault at the would-be mutation site.
    """
    for value in vars(trace).values():
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
    return trace


def _memoized_trace(name: str, cache: dict) -> BandwidthTrace:
    """Shared-trace path of :func:`make_trace`: memoize and freeze.

    Kept out of ``make_trace`` itself so the function signature/cache
    fingerprinting calls (which never pass a cache) have a provably
    pure callee -- the ``signature-purity`` replint rule checks one
    level of call-through from ``Scenario.fingerprint``.
    """
    try:
        return cache[name]
    except KeyError:
        trace = cache[name] = freeze_trace(make_trace(name))
        return trace


def make_trace(name: str, cache: dict | None = None) -> BandwidthTrace:
    """Instantiate the registered trace ``name``.

    With ``cache`` (a plain dict keyed by trace name), the instance is
    memoized and frozen read-only on first build: registry factories
    are deterministic, so every cell of a batch sharing ``cache`` sees
    the same values it would have computed itself -- one build instead
    of N, and provably no cross-cell mutation channel.
    """
    if cache is not None:
        return _memoized_trace(name, cache)
    try:
        factory = _TRACE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; registered: {sorted(_TRACE_REGISTRY)}"
        ) from None
    return factory()


def trace_names() -> tuple:
    """Names of all registered traces, sorted."""
    return tuple(sorted(_TRACE_REGISTRY))


def _leo_handover_trace(horizon: float = 600.0, period: float = 15.0,
                        dip: float = 0.8, seed: int = 23) -> PiecewiseTrace:
    """LEO-satellite-like capacity: periodic handovers with deep dips.

    Low-earth-orbit constellations hand a terminal over to a new
    satellite every ~15 s; each handover briefly collapses the usable
    rate before the new beam settles at a different capacity.  Modelled
    as a piecewise-constant process: every ``period`` seconds the
    capacity drops to ~2 Mbps for ``dip`` seconds, then holds a fresh
    per-satellite draw from 25-60 Mbps.  Deterministic given the seed.
    """
    rng = stream_rng("trace.synth", seed)
    points: list[tuple[float, float]] = []
    t = 0.0
    while t < horizon:
        points.append((t, mbps_to_pps(2.0)))
        points.append((t + dip, mbps_to_pps(float(rng.uniform(25.0, 60.0)))))
        t += period
    return PiecewiseTrace(points)


# Built-in named scenarios.  "fig1-step" is the paper's motivating
# oscillating bottleneck; the walk traces emulate cellular/WiFi-like
# capacity processes with fixed seeds so results are reproducible;
# "leo-handover" adds the satellite-handover regime the multi-hop/churn
# suites exercise.
register_trace("fig1-step", lambda: StepTrace.from_mbps(20.0, 30.0, period=5.0))
register_trace("cellular-walk", lambda: RandomWalkTrace(
    mbps_to_pps(2.0), mbps_to_pps(30.0), interval=1.0, step=0.3, seed=42))
register_trace("wifi-walk", lambda: RandomWalkTrace(
    mbps_to_pps(10.0), mbps_to_pps(60.0), interval=0.5, step=0.2, seed=7))
register_trace("leo-handover", _leo_handover_trace)
