"""Packet records for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet"]


@dataclass(slots=True)
class Packet:
    """One simulated data packet.

    Timestamps are in simulation seconds.  A packet either arrives at
    the receiver (``arrival_time`` set, ``dropped`` False) or is dropped
    in flight (``dropped`` True and ``drop_kind`` records whether the
    drop was a buffer overflow or random loss).
    """

    flow_id: int
    seq: int
    send_time: float
    size_bytes: int = 1500
    arrival_time: float | None = None
    ack_time: float | None = None
    dropped: bool = False
    drop_kind: str | None = None  # "buffer" | "random"
    queue_delay: float = 0.0
    #: Queueing the acknowledgement saw on the reverse path (0.0 on a
    #: pure-propagation return).
    ack_queue_delay: float = 0.0

    @property
    def rtt(self) -> float | None:
        """Round-trip time, if the packet was acknowledged."""
        if self.ack_time is None:
            return None
        return self.ack_time - self.send_time
