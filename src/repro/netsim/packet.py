"""Packet records for the discrete-event simulator."""

from __future__ import annotations

__all__ = ["Packet"]


class Packet:
    """One simulated data packet.

    Timestamps are in simulation seconds.  A packet either arrives at
    the receiver (``arrival_time`` set, ``dropped`` False) or is dropped
    in flight (``dropped`` True and ``drop_kind`` records whether the
    drop was a buffer overflow or random loss).

    Under the event-driven per-hop scheduler the packet itself is the
    transit cursor: ``hop`` indexes the next link of the active
    direction (``flow.links`` forward, ``flow.reverse_links`` once
    ``reversing`` is set) and advances as each hop event dequeues
    the packet at its true arrival time.

    A hand-rolled ``__slots__`` class rather than a dataclass: one
    packet is allocated per emitted packet on the engine's hottest
    path, and the engine constructs it with the four leading positional
    arguments (binding only those beats a generated keyword-rich
    ``__init__`` by about 2x).  The field set, defaults, and
    constructor signature are unchanged from the historical dataclass.
    """

    __slots__ = ("flow_id", "seq", "send_time", "size_bytes", "arrival_time",
                 "ack_time", "dropped", "drop_kind", "queue_delay",
                 "ack_queue_delay", "hop", "reversing", "ack_dropped",
                 "ack_recovered")

    def __init__(self, flow_id: int, seq: int, send_time: float,
                 size_bytes: int = 1500,
                 arrival_time: float | None = None,
                 ack_time: float | None = None,
                 dropped: bool = False,
                 drop_kind: str | None = None,  # "buffer" | "random"
                 queue_delay: float = 0.0,
                 ack_queue_delay: float = 0.0,
                 hop: int = 0,
                 reversing: bool = False,
                 ack_dropped: bool = False,
                 ack_recovered: bool = False):
        self.flow_id = flow_id
        self.seq = seq
        self.send_time = send_time
        self.size_bytes = size_bytes
        #: Receiver arrival time (``None`` while in flight or dropped).
        self.arrival_time = arrival_time
        self.ack_time = ack_time
        self.dropped = dropped
        self.drop_kind = drop_kind
        self.queue_delay = queue_delay
        #: Queueing the acknowledgement saw on the reverse path (0.0 on
        #: a pure-propagation return).
        self.ack_queue_delay = ack_queue_delay
        #: Index of the next link to transit in the active direction.
        self.hop = hop
        #: The packet delivered (or its drop was observed) and its ack /
        #: loss notice is now walking the reverse links.
        self.reversing = reversing
        #: The acknowledgement itself was dropped on the reverse path
        #: and the sender recovered via retransmit timeout (counted as
        #: a loss) rather than a later cumulative ack.
        self.ack_dropped = ack_dropped
        #: The acknowledgement was dropped on the reverse path but a
        #: later cumulative ack covered it (``ack_time`` is that
        #: recovery moment, not the lost ack's own would-be arrival).
        self.ack_recovered = ack_recovered

    @property
    def rtt(self) -> float | None:
        """Round-trip time, if the packet was acknowledged."""
        if self.ack_time is None:
            return None
        return self.ack_time - self.send_time

    def __repr__(self) -> str:
        state = "dropped" if self.dropped else (
            "acked" if self.ack_time is not None else "inflight")
        return (f"Packet(flow_id={self.flow_id}, seq={self.seq}, "
                f"send_time={self.send_time}, {state})")
