"""Packet records for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass(slots=True)
class Packet:
    """One simulated data packet.

    Timestamps are in simulation seconds.  A packet either arrives at
    the receiver (``arrival_time`` set, ``dropped`` False) or is dropped
    in flight (``dropped`` True and ``drop_kind`` records whether the
    drop was a buffer overflow or random loss).

    Under the event-driven per-hop scheduler the packet itself is the
    transit cursor: ``hop`` indexes the next link of the active
    direction (``flow.links`` forward, ``flow.reverse_links`` once
    ``reversing`` is set) and advances as each ``"hop"`` event dequeues
    the packet at its true arrival time.
    """

    flow_id: int
    seq: int
    send_time: float
    size_bytes: int = 1500
    arrival_time: float | None = None
    ack_time: float | None = None
    dropped: bool = False
    drop_kind: str | None = None  # "buffer" | "random"
    queue_delay: float = 0.0
    #: Queueing the acknowledgement saw on the reverse path (0.0 on a
    #: pure-propagation return).
    ack_queue_delay: float = 0.0
    #: Index of the next link to transit in the active direction.
    hop: int = 0
    #: The packet delivered (or its drop was observed) and its ack /
    #: loss notice is now walking the reverse links.
    reversing: bool = False
    #: The acknowledgement itself was buffer-dropped on the reverse
    #: path and the sender recovered via retransmit timeout (counted as
    #: a loss) rather than a later cumulative ack.
    ack_dropped: bool = False
    #: The acknowledgement was buffer-dropped on the reverse path but a
    #: later cumulative ack covered it (``ack_time`` is that recovery
    #: moment, not the lost ack's own would-be arrival).
    ack_recovered: bool = False

    @property
    def rtt(self) -> float | None:
        """Round-trip time, if the packet was acknowledged."""
        if self.ack_time is None:
            return None
        return self.ack_time - self.send_time
