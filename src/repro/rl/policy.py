"""Actor-critic model with the MOCC preference sub-network (Fig. 3).

The model has three trainable blocks:

* a **preference sub-network** (PN) that embeds the application weight
  vector ``w = <w_thr, w_lat, w_loss>``;
* an **actor** MLP mapping ``[network-history || PN(w)]`` to the mean of
  a Gaussian action distribution (a free ``log_std`` parameter supplies
  the standard deviation, as in the stable-baselines PPO the paper uses);
* a **critic** MLP with the same structure producing the scalar value
  ``V(g, w)``.

The PN output is concatenated with the flattened ``eta``-step history of
network statistics and fed to both actor and critic, exactly as drawn in
the paper's Fig. 3: "both the decisions made by the actor network and
the evaluation given by the critic network ... take the application
requirements into consideration."

A plain single-objective actor-critic (for Aurora/Orca baselines) is the
degenerate case ``weight_dim=0``, which skips the PN entirely.
"""

from __future__ import annotations

import numpy as np

from repro.rl.distributions import DiagGaussian
from repro.rl.nn import MLP, Dense, Module, Parameter, Sequential, Tanh

__all__ = ["PreferenceActorCritic"]


class PreferenceActorCritic(Module):
    """Preference-conditioned actor-critic for continuous rate control.

    Parameters
    ----------
    obs_dim:
        Size of the flattened network-condition history (``3 * eta``).
    weight_dim:
        Size of the application weight vector (3 for MOCC; 0 disables the
        preference sub-network and yields a single-objective model).
    act_dim:
        Action dimensionality (1: the rate-adjustment scalar of Eq. 1).
    hidden_sizes:
        Trunk widths; the paper uses (64, 32) with tanh.
    pref_hidden:
        Width of the preference sub-network embedding.
    """

    def __init__(self, obs_dim: int, weight_dim: int = 3, act_dim: int = 1,
                 hidden_sizes: tuple[int, ...] = (64, 32), pref_hidden: int = 16,
                 rng: np.random.Generator | None = None,
                 init_log_std: float = -0.5):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.weight_dim = weight_dim
        self.act_dim = act_dim
        self.pref_hidden = pref_hidden if weight_dim > 0 else 0

        if weight_dim > 0:
            self.pref_net: Sequential | None = Sequential(
                Dense(weight_dim, pref_hidden, rng=rng), Tanh())
        else:
            self.pref_net = None

        trunk_in = obs_dim + self.pref_hidden
        self.actor = MLP(trunk_in, hidden_sizes, act_dim, activation="tanh", rng=rng)
        self.critic = MLP(trunk_in, hidden_sizes, 1, activation="tanh", rng=rng)
        self.log_std = Parameter(np.full(act_dim, init_log_std))

    # --- parameters -----------------------------------------------------

    def parameters(self) -> dict[str, Parameter]:
        params: dict[str, Parameter] = {"log_std": self.log_std}
        if self.pref_net is not None:
            for name, p in self.pref_net.parameters().items():
                params[f"pref.{name}"] = p
        for name, p in self.actor.parameters().items():
            params[f"actor.{name}"] = p
        for name, p in self.critic.parameters().items():
            params[f"critic.{name}"] = p
        return params

    # --- forward/backward ------------------------------------------------

    def _embed(self, obs: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        if self.pref_net is None:
            return obs
        if weights is None:
            raise ValueError("model was built with a preference sub-network; pass weights")
        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        if weights.shape[0] == 1 and obs.shape[0] > 1:
            weights = np.repeat(weights, obs.shape[0], axis=0)
        pref = self.pref_net.forward(weights)
        return np.concatenate([obs, pref], axis=1)

    def forward(self, obs: np.ndarray, weights: np.ndarray | None = None):
        """Return ``(mean, value)`` for a batch of states.

        ``mean`` has shape ``(batch, act_dim)``; ``value`` is ``(batch,)``.
        The forward pass is cached; :meth:`backward` must be called before
        the next forward if gradients are wanted.
        """
        joint = self._embed(obs, weights)
        mean = self.actor.forward(joint)
        value = self.critic.forward(joint)[:, 0]
        return mean, value

    def backward(self, d_mean: np.ndarray, d_value: np.ndarray,
                 d_log_std: np.ndarray | None = None) -> None:
        """Accumulate gradients from per-sample output gradients."""
        d_mean = np.atleast_2d(d_mean)
        d_value2 = np.asarray(d_value, dtype=np.float64).reshape(-1, 1)
        d_joint = self.actor.backward(d_mean) + self.critic.backward(d_value2)
        if self.pref_net is not None:
            self.pref_net.backward(d_joint[:, self.obs_dim:])
        if d_log_std is not None:
            self.log_std.grad += np.asarray(d_log_std, dtype=np.float64)

    # --- acting -----------------------------------------------------------

    def act(self, obs: np.ndarray, weights: np.ndarray | None,
            rng: np.random.Generator, deterministic: bool = False):
        """Sample an action for a single state.

        Returns ``(action, log_prob, value)`` -- all scalars/1-D arrays.
        """
        mean, value = self.forward(obs, weights)
        if deterministic:
            action = mean[0]
        else:
            action = DiagGaussian.sample(mean, self.log_std.value, rng)[0]
        log_prob = float(DiagGaussian.log_prob(action, mean, self.log_std.value)[0])
        return action, log_prob, float(value[0])

    def value(self, obs: np.ndarray, weights: np.ndarray | None = None) -> float:
        """Critic value for a single state."""
        _, value = self.forward(obs, weights)
        return float(value[0])

    # --- snapshots ---------------------------------------------------------

    def architecture(self) -> dict:
        """Constructor kwargs that rebuild an identically-shaped model."""
        return {
            "obs_dim": self.obs_dim,
            "weight_dim": self.weight_dim,
            "act_dim": self.act_dim,
            "hidden_sizes": tuple(_dense_widths(self.actor)),
            "pref_hidden": self.pref_hidden if self.pref_hidden else 16,
        }

    def clone(self) -> "PreferenceActorCritic":
        """Deep copy with identical parameters (fresh gradient buffers)."""
        twin = PreferenceActorCritic(
            self.obs_dim, self.weight_dim, self.act_dim,
            hidden_sizes=tuple(_dense_widths(self.actor)),
            pref_hidden=self.pref_hidden if self.pref_hidden else 16)
        twin.load_state_dict(self.state_dict())
        return twin


def _dense_widths(mlp: MLP) -> list[int]:
    """Hidden widths of an MLP (all Dense outputs except the last)."""
    widths = [layer.W.value.shape[1] for layer in mlp.layers if isinstance(layer, Dense)]
    return widths[:-1]
