"""Minimal neural-network layers with manual backpropagation.

The MOCC paper implements its policy/critic networks as fully-connected
MLPs (two hidden layers of 64 and 32 units with ``tanh`` activations,
§5).  TensorFlow is not available in this environment, so this module
provides the small amount of machinery those networks need: dense
layers, activations, a sequential container, and parameter/gradient
bookkeeping suitable for an Adam optimizer.

Conventions
-----------
* Inputs are 2-D arrays of shape ``(batch, features)``; single samples
  can be passed as 1-D arrays and are promoted internally.
* ``forward`` caches whatever ``backward`` needs; call them in pairs.
* Parameters and gradients are exposed as flat ``{name: array}`` dicts
  so optimizers and serialization never need to know the architecture.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Module",
    "Dense",
    "Tanh",
    "ReLU",
    "Sequential",
    "MLP",
    "Parameter",
    "flatten_params",
    "unflatten_params",
    "numerical_gradient",
]


class Parameter:
    """A named tensor with an accumulated gradient."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self):
        return self.value.shape


class Module:
    """Base class: a differentiable block with named parameters."""

    def parameters(self) -> dict[str, Parameter]:
        """Return ``{name: Parameter}`` for every trainable tensor."""
        return {}

    def zero_grad(self) -> None:
        for param in self.parameters().values():
            param.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # --- serialization -------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value."""
        return {name: p.value.copy() for name, p in self.parameters().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values (shapes must match exactly)."""
        params = self.parameters()
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise ValueError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.value.shape}")
            param.value[...] = value


class Dense(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None,
                 init: str = "xavier"):
        rng = rng if rng is not None else np.random.default_rng(0)
        if init == "xavier":
            scale = np.sqrt(2.0 / (in_features + out_features))
        elif init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "small":
            scale = 0.01
        else:
            raise ValueError(f"unknown init {init!r}")
        self.W = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.b = Parameter(np.zeros(out_features))
        self._x: np.ndarray | None = None

    def parameters(self) -> dict[str, Parameter]:
        return {"W": self.W, "b": self.b}

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self.W.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.W.value.T


class Tanh(Module):
    """Elementwise tanh."""

    def __init__(self):
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y ** 2)


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def parameters(self) -> dict[str, Parameter]:
        params: dict[str, Parameter] = {}
        for i, layer in enumerate(self.layers):
            for name, param in layer.parameters().items():
                params[f"{i}.{name}"] = param
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out


def _activation(name: str) -> Module:
    if name == "tanh":
        return Tanh()
    if name == "relu":
        return ReLU()
    raise ValueError(f"unknown activation {name!r}")


class MLP(Sequential):
    """Fully-connected network: ``in -> hidden... -> out``.

    ``activation`` is applied between layers; the output is linear
    (callers add their own heads, e.g. a Gaussian mean or Q-values).
    """

    def __init__(self, in_features: int, hidden_sizes: tuple[int, ...], out_features: int,
                 activation: str = "tanh", rng: np.random.Generator | None = None,
                 out_init: str = "small"):
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: list[Module] = []
        prev = in_features
        for width in hidden_sizes:
            layers.append(Dense(prev, width, rng=rng))
            layers.append(_activation(activation))
            prev = width
        layers.append(Dense(prev, out_features, rng=rng, init=out_init))
        super().__init__(*layers)
        self.in_features = in_features
        self.out_features = out_features


# --- parameter vector helpers (snapshots, distances, tests) -------------


def flatten_params(params: dict[str, Parameter]) -> np.ndarray:
    """Concatenate parameter values into a single 1-D vector.

    Iteration order is the sorted parameter name, so the layout is stable
    across calls for the same module.
    """
    return np.concatenate([params[name].value.ravel() for name in sorted(params)])


def unflatten_params(params: dict[str, Parameter], flat: np.ndarray) -> None:
    """Write a flat vector (from :func:`flatten_params`) back into params."""
    offset = 0
    for name in sorted(params):
        param = params[name]
        size = param.value.size
        param.value[...] = flat[offset:offset + size].reshape(param.value.shape)
        offset += size
    if offset != flat.size:
        raise ValueError(f"flat vector has {flat.size} entries, expected {offset}")


def numerical_gradient(f, params: dict[str, Parameter], eps: float = 1e-6) -> dict[str, np.ndarray]:
    """Central-difference gradient of scalar ``f()`` w.r.t. each parameter.

    Used by the test suite to validate the manual backprop.
    """
    grads: dict[str, np.ndarray] = {}
    for name, param in params.items():
        grad = np.zeros_like(param.value)
        flat = param.value.ravel()
        grad_flat = grad.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            f_plus = f()
            flat[i] = orig - eps
            f_minus = f()
            flat[i] = orig
            grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
        grads[name] = grad
    return grads
