"""Reinforcement-learning stack for the MOCC reproduction.

The paper trains MOCC with TensorFlow 1.14 and stable-baselines PPO;
neither is available offline, so this package provides an equivalent
numpy implementation:

* :mod:`repro.rl.nn` -- dense layers and MLPs with manual backprop.
* :mod:`repro.rl.optim` -- Adam (the paper's optimizer) and SGD.
* :mod:`repro.rl.distributions` -- diagonal Gaussian and categorical
  action distributions.
* :mod:`repro.rl.policy` -- the actor-critic model with the preference
  sub-network of Fig. 3.
* :mod:`repro.rl.rollout` -- trajectory collection, returns, advantages.
* :mod:`repro.rl.ppo` -- PPO-clip with entropy regularisation (Eq. 3-5).
* :mod:`repro.rl.dqn` -- the MOCC-DQN ablation of Fig. 18.
* :mod:`repro.rl.parallel` -- vectorized/parallel rollout collection.
"""

from repro.rl.nn import MLP, Dense, Tanh, ReLU, Sequential
from repro.rl.optim import Adam, SGD
from repro.rl.distributions import DiagGaussian, Categorical
from repro.rl.policy import PreferenceActorCritic
from repro.rl.rollout import RolloutBuffer, discounted_returns, gae_advantages
from repro.rl.ppo import PPOTrainer, PPOConfig

__all__ = [
    "MLP",
    "Dense",
    "Tanh",
    "ReLU",
    "Sequential",
    "Adam",
    "SGD",
    "DiagGaussian",
    "Categorical",
    "PreferenceActorCritic",
    "RolloutBuffer",
    "discounted_returns",
    "gae_advantages",
    "PPOTrainer",
    "PPOConfig",
]
