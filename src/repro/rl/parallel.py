"""Rollout-collection strategies: serial, vectorized, multi-process.

The paper accelerates MOCC's training with Ray/RLlib parallel
environments (§5, Fig. 19).  Offline, we reproduce the same effect two
ways:

* :class:`VectorCollector` steps several simulator environments in
  lockstep and batches the policy forward passes -- this removes most
  Python-level NN overhead even on one core;
* :class:`ProcessCollector` farms rollout collection out to OS
  processes (the host has few cores, so the measured speedup is
  bounded accordingly -- see EXPERIMENTS.md for Fig. 19).

All collectors share one call signature::

    buffers, bootstraps, mean_episode_reward = collector.collect(
        model, weights, total_steps, rng)

so the offline/online trainers can swap strategies freely.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.config import NetworkParams, NetworkRanges
from repro.netsim.env import CongestionControlEnv, MoccEnv
from repro.rl.collect import collect_rollout, resolve_objective
from repro.rl.distributions import DiagGaussian
from repro.rl.policy import PreferenceActorCritic
from repro.rl.rollout import RolloutBuffer

__all__ = ["EnvSpec", "SerialCollector", "VectorCollector", "ProcessCollector"]


@dataclass(frozen=True)
class EnvSpec:
    """Picklable recipe for building a :class:`MoccEnv`.

    Process workers cannot receive closures, so experiments describe
    their environment with this spec instead of a factory function.
    """

    params: NetworkParams | None = None
    ranges: NetworkRanges | None = None
    history_length: int = 10
    action_scale: float = 0.025
    max_steps: int = 64
    mi_duration: float | None = None
    packet_bytes: int = 1500
    queue_bdp_range: tuple[float, float] | None = None
    seed: int = 0

    def build(self, seed_offset: int = 0) -> MoccEnv:
        return MoccEnv(CongestionControlEnv(
            params=self.params, ranges=self.ranges,
            history_length=self.history_length, action_scale=self.action_scale,
            max_steps=self.max_steps, mi_duration=self.mi_duration,
            packet_bytes=self.packet_bytes, queue_bdp_range=self.queue_bdp_range,
            seed=self.seed + seed_offset))


class SerialCollector:
    """One environment, one rollout at a time (the baseline strategy)."""

    def __init__(self, spec: EnvSpec):
        self.spec = spec
        self.env = spec.build()

    def collect(self, model: PreferenceActorCritic, weights, steps: int,
                rng: np.random.Generator):
        buffer, bootstrap, mean_reward, _ = collect_rollout(
            self.env, model, weights, steps, rng)
        return [buffer], [bootstrap], mean_reward

    def close(self) -> None:
        """Nothing to release."""


class VectorCollector:
    """Step N environments in lockstep with batched policy inference."""

    def __init__(self, spec: EnvSpec, n_envs: int = 4):
        if n_envs < 1:
            raise ValueError("need at least one environment")
        self.spec = spec
        self.envs = [spec.build(seed_offset=1000 * (i + 1)) for i in range(n_envs)]

    def collect(self, model: PreferenceActorCritic, weights, steps: int,
                rng: np.random.Generator):
        n = len(self.envs)
        per_env = max(steps // n, 1)
        conditioned = model.weight_dim > 0
        weights = resolve_objective(weights, conditioned)

        obs = np.stack([env.reset(weights)[0] for env in self.envs])
        w_batch = np.repeat(weights[None, :], n, axis=0) if conditioned else None
        buffers = [RolloutBuffer(self.envs[0].observation_dim, model.weight_dim,
                                 model.act_dim, per_env) for _ in range(n)]
        episode_totals = np.zeros(n)
        finished: list[float] = []

        for _ in range(per_env):
            w_in = w_batch if conditioned else None
            mean, value = model.forward(obs, w_in)
            actions = DiagGaussian.sample(mean, model.log_std.value, rng)
            log_probs = DiagGaussian.log_prob(actions, mean, model.log_std.value)
            for i, env in enumerate(self.envs):
                next_obs, _, reward, _, done, _ = env.step(float(actions[i, 0]))
                buffers[i].add(obs[i], actions[i], float(log_probs[i]),
                               float(value[i]), reward, done,
                               weights=weights if conditioned else None)
                episode_totals[i] += reward
                if done:
                    finished.append(episode_totals[i])
                    episode_totals[i] = 0.0
                    next_obs, _ = env.reset(weights)
                obs[i] = next_obs

        w_in = w_batch if conditioned else None
        _, boot_values = model.forward(obs, w_in)
        bootstraps = []
        for i, buffer in enumerate(buffers):
            bootstraps.append(0.0 if buffer.dones[buffer.size - 1] else float(boot_values[i]))
        if not finished:
            # No episode completed within per_env steps (common once the
            # rollout is split n ways: per_env can be shorter than an
            # episode).  The partial totals cover only per_env of the
            # episode's steps, so reporting them as episode rewards
            # under-states the mean by ~horizon/per_env and puts a
            # sawtooth into OnlineAdapter's reward traces; extrapolate
            # the per-step reward to the episode horizon instead.
            horizon = max(self.spec.max_steps, per_env)
            finished = [total * horizon / per_env for total in episode_totals]
        return buffers, bootstraps, float(np.mean(finished))

    def close(self) -> None:
        """Nothing to release."""


def _worker_collect(args):
    """Process-pool entry point: build env + model, collect one rollout."""
    (spec, arch, state, weights, steps, seed, seed_offset) = args
    model = PreferenceActorCritic(**arch)
    model.load_state_dict(state)
    env = spec.build(seed_offset=seed_offset)
    rng = np.random.default_rng(seed)
    buffer, bootstrap, mean_reward, _ = collect_rollout(env, model, weights, steps, rng)
    payload = {
        "obs": buffer.obs[:buffer.size],
        "weights": None if buffer.weights is None else buffer.weights[:buffer.size],
        "actions": buffer.actions[:buffer.size],
        "log_probs": buffer.log_probs[:buffer.size],
        "values": buffer.values[:buffer.size],
        "rewards": buffer.rewards[:buffer.size],
        "dones": buffer.dones[:buffer.size],
    }
    return payload, bootstrap, mean_reward


def _rebuild_buffer(payload, weight_dim: int, act_dim: int) -> RolloutBuffer:
    n = len(payload["obs"])
    buffer = RolloutBuffer(payload["obs"].shape[1], weight_dim, act_dim, n)
    buffer.obs[:] = payload["obs"]
    if buffer.weights is not None:
        buffer.weights[:] = payload["weights"]
    buffer.actions[:] = payload["actions"]
    buffer.log_probs[:] = payload["log_probs"]
    buffer.values[:] = payload["values"]
    buffer.rewards[:] = payload["rewards"]
    buffer.dones[:] = payload["dones"]
    buffer.size = n
    return buffer


class ProcessCollector:
    """Collect rollouts in parallel OS processes (Fig. 19's "parallel")."""

    def __init__(self, spec: EnvSpec, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.spec = spec
        self.n_workers = n_workers
        ctx = mp.get_context("fork")
        self._pool = ctx.Pool(processes=n_workers)

    def collect(self, model: PreferenceActorCritic, weights, steps: int,
                rng: np.random.Generator):
        per_worker = max(steps // self.n_workers, 1)
        arch = model.architecture()
        state = model.state_dict()
        weights = resolve_objective(weights, model.weight_dim > 0)
        jobs = [(self.spec, arch, state, weights, per_worker,
                 int(rng.integers(0, 2 ** 31)), 1000 * (i + 1))
                for i in range(self.n_workers)]
        results = self._pool.map(_worker_collect, jobs)
        buffers = [_rebuild_buffer(p, model.weight_dim, model.act_dim)
                   for p, _, _ in results]
        bootstraps = [b for _, b, _ in results]
        mean_reward = float(np.mean([m for _, _, m in results]))
        return buffers, bootstraps, mean_reward

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __del__(self):  # best-effort cleanup
        try:
            self._pool.terminate()
        except Exception:
            pass
