"""Trajectory storage, returns and advantage estimation.

The paper defines the advantage (Eq. 4) as the empirical discounted
return minus the critic's value estimate:

    A(g, w, a) = sum_t gamma^t r_t  -  V(g, w)

That estimator is implemented by :func:`discounted_returns`; the more
common GAE(lambda) variant is available too and is what the trainer uses
by default (``gae_lambda=1.0`` recovers the paper's formula exactly for
episodic rollouts).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RolloutBuffer", "discounted_returns", "gae_advantages"]


def discounted_returns(rewards: np.ndarray, dones: np.ndarray, gamma: float,
                       bootstrap_value: float = 0.0) -> np.ndarray:
    """Discounted reward-to-go for each step.

    ``dones[t]`` marks that the episode ended *after* step ``t``; the
    return does not leak across episode boundaries.  ``bootstrap_value``
    is the critic's estimate of the state following the last step (zero
    if the rollout ends exactly at an episode boundary).
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    returns = np.zeros_like(rewards)
    running = float(bootstrap_value)
    for t in range(len(rewards) - 1, -1, -1):
        if dones[t]:
            running = 0.0
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


def gae_advantages(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                   gamma: float, lam: float, bootstrap_value: float = 0.0) -> np.ndarray:
    """Generalised advantage estimation (Schulman et al., 2016).

    With ``lam=1.0`` this equals ``discounted_returns - values`` --
    i.e. the paper's Eq. 4.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    advantages = np.zeros_like(rewards)
    next_value = float(bootstrap_value)
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        if dones[t]:
            next_value = 0.0
            running = 0.0
        delta = rewards[t] + gamma * next_value - values[t]
        running = delta + gamma * lam * running
        advantages[t] = running
        next_value = values[t]
    return advantages


class RolloutBuffer:
    """Fixed-capacity on-policy trajectory store.

    Each step records the observation, the preference weight vector (if
    any), the action taken, the behaviour policy's log-probability, the
    critic value, the reward, and whether the episode terminated.
    """

    def __init__(self, obs_dim: int, weight_dim: int, act_dim: int, capacity: int):
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_dim))
        self.weights = np.zeros((capacity, weight_dim)) if weight_dim > 0 else None
        self.actions = np.zeros((capacity, act_dim))
        self.log_probs = np.zeros(capacity)
        self.values = np.zeros(capacity)
        self.rewards = np.zeros(capacity)
        self.dones = np.zeros(capacity, dtype=bool)
        self.size = 0

    def add(self, obs, action, log_prob, value, reward, done, weights=None) -> None:
        if self.size >= self.capacity:
            raise RuntimeError("rollout buffer full")
        i = self.size
        self.obs[i] = obs
        if self.weights is not None:
            if weights is None:
                raise ValueError("buffer tracks weights; none given")
            self.weights[i] = weights
        self.actions[i] = action
        self.log_probs[i] = log_prob
        self.values[i] = value
        self.rewards[i] = reward
        self.dones[i] = done
        self.size += 1

    def reset(self) -> None:
        self.size = 0

    @property
    def full(self) -> bool:
        return self.size >= self.capacity

    def compute(self, gamma: float, lam: float, bootstrap_value: float = 0.0,
                normalize: bool = False):
        """Return ``(returns, advantages)`` over the filled portion.

        With ``normalize`` the advantages are scaled to zero mean / unit
        variance.  The PPO trainer normalises over the *pooled* batch
        instead (several buffers may carry different objectives, and
        per-buffer normalisation would amplify the noise of a buffer
        whose rewards are nearly constant until it drowns the others'
        signal), so the default here is raw advantages.
        """
        n = self.size
        advantages = gae_advantages(self.rewards[:n], self.values[:n], self.dones[:n],
                                    gamma, lam, bootstrap_value)
        returns = advantages + self.values[:n]
        if normalize:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        return returns, advantages

    def batch(self):
        """Views over the filled portion (no copies)."""
        n = self.size
        weights = self.weights[:n] if self.weights is not None else None
        return (self.obs[:n], weights, self.actions[:n],
                self.log_probs[:n], self.values[:n])
