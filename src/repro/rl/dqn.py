"""MOCC-DQN: the Q-learning ablation of Fig. 18.

The paper's deep-dive revisits the choice of PPO by implementing a
Q-learning version of MOCC.  Q-learning needs a discrete action space,
so the continuous Eq. 1 adjustment is binned; the paper's finding --
"Q-learning scales poorly with the continuous action space, causing
sub-optimal performance" (~3x lower reward) -- is exactly what the
coarse discretisation plus value-based training reproduces.

The Q-network mirrors the PPO model's structure, including the
preference sub-network, so the comparison isolates the learning
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.env import MoccEnv, apply_action
from repro.rl.nn import MLP, Dense, Module, Parameter, Sequential, Tanh
from repro.rl.optim import Adam, clip_grad_norm

__all__ = ["QNetwork", "ReplayBuffer", "DQNConfig", "DQNTrainer", "action_bins"]


def action_bins(n_actions: int = 9, span: float = 2.0) -> np.ndarray:
    """Symmetric grid of discrete Eq. 1 adjustment values."""
    if n_actions < 2:
        raise ValueError("need at least two actions")
    return np.linspace(-span, span, n_actions)


class QNetwork(Module):
    """Preference-conditioned state-action value network."""

    def __init__(self, obs_dim: int, weight_dim: int, n_actions: int,
                 hidden_sizes: tuple[int, ...] = (64, 32), pref_hidden: int = 16,
                 rng: np.random.Generator | None = None):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.weight_dim = weight_dim
        self.n_actions = n_actions
        self.pref_hidden = pref_hidden if weight_dim > 0 else 0
        if weight_dim > 0:
            self.pref_net: Sequential | None = Sequential(
                Dense(weight_dim, pref_hidden, rng=rng), Tanh())
        else:
            self.pref_net = None
        self.trunk = MLP(obs_dim + self.pref_hidden, hidden_sizes, n_actions,
                         activation="tanh", rng=rng)

    def parameters(self) -> dict[str, Parameter]:
        params = {}
        if self.pref_net is not None:
            for name, p in self.pref_net.parameters().items():
                params[f"pref.{name}"] = p
        for name, p in self.trunk.parameters().items():
            params[f"trunk.{name}"] = p
        return params

    def forward(self, obs: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        if self.pref_net is not None:
            weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
            if weights.shape[0] == 1 and obs.shape[0] > 1:
                weights = np.repeat(weights, obs.shape[0], axis=0)
            pref = self.pref_net.forward(weights)
            obs = np.concatenate([obs, pref], axis=1)
        return self.trunk.forward(obs)

    def backward(self, d_q: np.ndarray) -> None:
        d_joint = self.trunk.backward(np.atleast_2d(d_q))
        if self.pref_net is not None:
            self.pref_net.backward(d_joint[:, self.obs_dim:])

    def clone(self) -> "QNetwork":
        hidden = tuple(layer.W.value.shape[1]
                       for layer in self.trunk.layers if isinstance(layer, Dense))[:-1]
        twin = QNetwork(self.obs_dim, self.weight_dim, self.n_actions,
                        hidden_sizes=hidden,
                        pref_hidden=self.pref_hidden if self.pref_hidden else 16)
        twin.load_state_dict(self.state_dict())
        return twin


class ReplayBuffer:
    """Uniform-sampling transition store."""

    def __init__(self, obs_dim: int, weight_dim: int, capacity: int = 20_000):
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_dim))
        self.weights = np.zeros((capacity, weight_dim)) if weight_dim else None
        self.actions = np.zeros(capacity, dtype=np.int64)
        self.rewards = np.zeros(capacity)
        self.next_obs = np.zeros((capacity, obs_dim))
        self.dones = np.zeros(capacity, dtype=bool)
        self.size = 0
        self._cursor = 0

    def add(self, obs, action, reward, next_obs, done, weights=None) -> None:
        i = self._cursor
        self.obs[i] = obs
        if self.weights is not None:
            self.weights[i] = weights
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_obs[i] = next_obs
        self.dones[i] = done
        self._cursor = (self._cursor + 1) % self.capacity
        self.size = min(self.size + 1, self.capacity)

    def sample(self, batch_size: int, rng: np.random.Generator):
        idx = rng.integers(0, self.size, size=batch_size)
        weights = self.weights[idx] if self.weights is not None else None
        return (self.obs[idx], weights, self.actions[idx], self.rewards[idx],
                self.next_obs[idx], self.dones[idx])


@dataclass
class DQNConfig:
    """Q-learning hyperparameters (matched to the PPO budget)."""

    n_actions: int = 9
    action_span: float = 2.0
    gamma: float = 0.99
    learning_rate: float = 1e-3
    batch_size: int = 64
    target_sync_steps: int = 200
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 5_000
    updates_per_iteration: int = 64
    warmup_transitions: int = 256
    max_grad_norm: float = 5.0


class DQNTrainer:
    """Train a preference-conditioned Q-network on MoccEnv rollouts."""

    def __init__(self, obs_dim: int, weight_dim: int = 3,
                 config: DQNConfig | None = None, seed: int = 0):
        self.config = config or DQNConfig()
        rng = np.random.default_rng(seed)
        self.q = QNetwork(obs_dim, weight_dim, self.config.n_actions, rng=rng)
        self.target = self.q.clone()
        self.bins = action_bins(self.config.n_actions, self.config.action_span)
        self.replay = ReplayBuffer(obs_dim, weight_dim)
        self.optimizer = Adam(self.q.parameters(), lr=self.config.learning_rate)
        self.rng = np.random.default_rng(seed + 1)
        self.env_steps = 0
        self.grad_steps = 0

    # --- acting ------------------------------------------------------------

    def epsilon(self) -> float:
        cfg = self.config
        frac = min(self.env_steps / max(cfg.epsilon_decay_steps, 1), 1.0)
        return cfg.epsilon_start + frac * (cfg.epsilon_end - cfg.epsilon_start)

    def act_index(self, obs, weights, greedy: bool = False) -> int:
        if not greedy and self.rng.random() < self.epsilon():
            return int(self.rng.integers(self.config.n_actions))
        qvals = self.q.forward(obs, weights)
        return int(np.argmax(qvals[0]))

    def act_value(self, obs, weights, greedy: bool = True) -> float:
        """The Eq. 1 adjustment value the greedy policy picks."""
        return float(self.bins[self.act_index(obs, weights, greedy=greedy)])

    # --- training -------------------------------------------------------------

    def train_objective(self, env: MoccEnv, weights, steps: int) -> float:
        """Collect ``steps`` transitions and run gradient updates.

        Returns the mean episodic reward observed while collecting.
        """
        weights = np.asarray(weights, dtype=np.float64)
        obs, w_obs = env.reset(weights)
        episode_totals: list[float] = []
        total = 0.0
        for _ in range(steps):
            a_idx = self.act_index(obs, w_obs)
            next_obs, next_w, reward, _, done, _ = env.step(float(self.bins[a_idx]))
            self.replay.add(obs, a_idx, reward, next_obs, done, weights=w_obs)
            self.env_steps += 1
            total += reward
            if done:
                episode_totals.append(total)
                total = 0.0
                obs, w_obs = env.reset(weights)
            else:
                obs, w_obs = next_obs, next_w
        for _ in range(self.config.updates_per_iteration):
            self._update()
        if not episode_totals:
            episode_totals.append(total)
        return float(np.mean(episode_totals))

    def _update(self) -> None:
        cfg = self.config
        if self.replay.size < cfg.warmup_transitions:
            return
        obs, weights, actions, rewards, next_obs, dones = self.replay.sample(
            cfg.batch_size, self.rng)
        next_q = self.target.forward(next_obs, weights)
        targets = rewards + cfg.gamma * np.where(dones, 0.0, next_q.max(axis=1))

        qvals = self.q.forward(obs, weights)
        idx = np.arange(len(actions))
        errors = qvals[idx, actions] - targets
        d_q = np.zeros_like(qvals)
        d_q[idx, actions] = errors / len(actions)

        self.optimizer.zero_grad()
        self.q.backward(d_q)
        clip_grad_norm(self.q.parameters(), cfg.max_grad_norm)
        self.optimizer.step()
        self.grad_steps += 1
        if self.grad_steps % cfg.target_sync_steps == 0:
            self.target.load_state_dict(self.q.state_dict())
