"""Proximal Policy Optimization (Schulman et al., 2017) -- §4.2.

Implements the clipped surrogate objective the paper trains MOCC with
(Eq. 3), plus the entropy regularisation term (Eq. 5) whose coefficient
beta decays from 1 to 0.1 over 1000 iterations (§5).

The gradient of the clipped surrogate w.r.t. the new policy's
log-probability is::

    d L / d logp = -A * ratio    where the unclipped branch is active
                 = 0             where clipping saturates the min()

For the diagonal-Gaussian policy the chain rule continues through the
distribution parameters (mean from the actor MLP, free log_std), which
:class:`repro.rl.distributions.DiagGaussian` provides in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import TrainingConfig
from repro.rl.distributions import DiagGaussian
from repro.rl.optim import Adam, clip_grad_norm
from repro.rl.policy import PreferenceActorCritic
from repro.rl.rollout import RolloutBuffer

__all__ = ["PPOConfig", "PPOTrainer"]


@dataclass
class PPOConfig:
    """Optimisation hyperparameters (defaults follow paper Table 2/§5)."""

    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    learning_rate: float = 1e-3
    entropy_start: float = 1.0
    entropy_end: float = 0.1
    entropy_decay_iters: int = 1000
    entropy_scale: float = 0.01
    value_coef: float = 0.5
    epochs: int = 4
    minibatch_size: int = 64
    max_grad_norm: float = 5.0
    #: Bounds on the Gaussian's log-std.  The entropy bonus exerts a
    #: constant upward pull on log_std; with Adam's per-parameter step
    #: normalisation that pull would otherwise win over long runs and
    #: blow the exploration noise up.
    log_std_bounds: tuple = (-2.5, 0.0)

    @classmethod
    def from_training_config(cls, cfg: TrainingConfig) -> "PPOConfig":
        return cls(
            gamma=cfg.discount_factor,
            gae_lambda=cfg.gae_lambda,
            clip_epsilon=cfg.clip_epsilon,
            learning_rate=cfg.learning_rate,
            entropy_start=cfg.entropy_start,
            entropy_end=cfg.entropy_end,
            entropy_decay_iters=cfg.entropy_decay_iters,
            value_coef=cfg.value_coef,
            epochs=cfg.epochs_per_iteration,
            minibatch_size=cfg.minibatch_size,
            max_grad_norm=cfg.max_grad_norm,
        )

    def entropy_coef(self, iteration: int) -> float:
        """beta(iteration): linear decay 1 -> 0.1 over the first 1000 its."""
        if iteration >= self.entropy_decay_iters:
            base = self.entropy_end
        else:
            frac = iteration / float(self.entropy_decay_iters)
            base = self.entropy_start + frac * (self.entropy_end - self.entropy_start)
        return base * self.entropy_scale


@dataclass
class PPOStats:
    """Diagnostics from one :meth:`PPOTrainer.update` call."""

    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    approx_kl: float


class PPOTrainer:
    """PPO-clip updates for a :class:`PreferenceActorCritic`.

    The trainer is environment-agnostic: callers fill a
    :class:`RolloutBuffer` however they like (single env, vectorized
    envs, multiprocessing workers) and hand it to :meth:`update`.
    """

    def __init__(self, model: PreferenceActorCritic, config: PPOConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.model = model
        self.config = config or PPOConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self.iteration = 0

    def update(self, buffer: RolloutBuffer | list[RolloutBuffer],
               bootstrap_value: float | list[float] = 0.0) -> PPOStats:
        """Run ``epochs`` of minibatch PPO over the buffer contents.

        Accepts a single buffer or a list (e.g. from parallel rollout
        workers); with a list, returns/advantages are computed per
        buffer (each with its own bootstrap value) before the samples
        are pooled for minibatching, so trajectories never leak into
        each other.
        """
        cfg = self.config
        buffers = [buffer] if isinstance(buffer, RolloutBuffer) else list(buffer)
        boots = ([bootstrap_value] * len(buffers)
                 if isinstance(bootstrap_value, (int, float)) else list(bootstrap_value))
        if len(boots) != len(buffers):
            raise ValueError("need one bootstrap value per buffer")
        parts = [b.batch() for b in buffers]
        obs = np.concatenate([p[0] for p in parts])
        weights = (None if parts[0][1] is None
                   else np.concatenate([p[1] for p in parts]))
        actions = np.concatenate([p[2] for p in parts])
        old_log_probs = np.concatenate([p[3] for p in parts])
        computed = [b.compute(cfg.gamma, cfg.gae_lambda, v)
                    for b, v in zip(buffers, boots)]
        returns = np.concatenate([c[0] for c in computed])
        advantages = np.concatenate([c[1] for c in computed])
        # Pooled normalisation: objectives with near-constant rewards
        # contribute proportionally small advantages instead of having
        # their noise blown up to unit variance per buffer.
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        n = len(obs)
        beta = cfg.entropy_coef(self.iteration)

        stats = PPOStats(0.0, 0.0, 0.0, 0.0, 0.0)
        batches = 0
        for _ in range(cfg.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, cfg.minibatch_size):
                idx = order[start:start + cfg.minibatch_size]
                mb_stats = self._update_minibatch(
                    obs[idx], None if weights is None else weights[idx],
                    actions[idx], old_log_probs[idx], returns[idx], advantages[idx], beta)
                stats.policy_loss += mb_stats.policy_loss
                stats.value_loss += mb_stats.value_loss
                stats.entropy += mb_stats.entropy
                stats.clip_fraction += mb_stats.clip_fraction
                stats.approx_kl += mb_stats.approx_kl
                batches += 1
        self.iteration += 1
        if batches:
            stats.policy_loss /= batches
            stats.value_loss /= batches
            stats.entropy /= batches
            stats.clip_fraction /= batches
            stats.approx_kl /= batches
        return stats

    def update_multi(self, buffers: list[RolloutBuffer]) -> list[PPOStats]:
        """Average-update over several buffers *in one step*.

        This realises the requirement-replay loss (Eq. 6): the gradient
        applied is the mean of the per-objective PPO gradients, i.e.
        ``L = (1/k) * sum_i L_CLIP+E(theta, w_i)``.  Each buffer is
        consumed with a single epoch over its full batch, gradients are
        accumulated across buffers, then one optimizer step is taken.
        """
        cfg = self.config
        beta = cfg.entropy_coef(self.iteration)
        scale = 1.0 / max(len(buffers), 1)
        batches = [b.batch() for b in buffers]
        computed = [b.compute(cfg.gamma, cfg.gae_lambda) for b in buffers]
        # Normalise advantages jointly across the objectives (see update()).
        pooled = np.concatenate([c[1] for c in computed])
        mean, std = pooled.mean(), pooled.std() + 1e-8
        computed = [(ret, (adv - mean) / std) for ret, adv in computed]
        all_stats: list[PPOStats] = []
        for _ in range(cfg.epochs):
            self.optimizer.zero_grad()
            epoch_stats = []
            for (obs, weights, actions, old_log_probs, _), (returns, advantages) in zip(
                    batches, computed):
                stats = self._accumulate_gradients(
                    obs, weights, actions, old_log_probs, returns, advantages, beta, scale)
                epoch_stats.append(stats)
            clip_grad_norm(self.model.parameters(), cfg.max_grad_norm)
            self.optimizer.step()
            self._clamp_log_std()
            all_stats = epoch_stats
        self.iteration += 1
        return all_stats

    # --- internals --------------------------------------------------------

    def _update_minibatch(self, obs, weights, actions, old_log_probs,
                          returns, advantages, beta) -> PPOStats:
        self.optimizer.zero_grad()
        stats = self._accumulate_gradients(
            obs, weights, actions, old_log_probs, returns, advantages, beta, 1.0)
        clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
        self.optimizer.step()
        self._clamp_log_std()
        return stats

    def _clamp_log_std(self) -> None:
        lo, hi = self.config.log_std_bounds
        np.clip(self.model.log_std.value, lo, hi, out=self.model.log_std.value)

    def _accumulate_gradients(self, obs, weights, actions, old_log_probs,
                              returns, advantages, beta, scale) -> PPOStats:
        """Forward + backward for the PPO loss; grads are *accumulated*."""
        cfg = self.config
        model = self.model
        n = len(obs)

        mean, value = model.forward(obs, weights)
        log_std = model.log_std.value
        new_log_probs = DiagGaussian.log_prob(actions, mean, log_std)

        ratio = np.exp(new_log_probs - old_log_probs)
        unclipped = ratio * advantages
        clipped = np.clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * advantages
        surrogate = np.minimum(unclipped, clipped)
        policy_loss = -float(surrogate.mean())

        # d policy_loss / d logp: active only where the min() picked the
        # unclipped branch (ties included).
        active = unclipped <= clipped
        d_logp = np.where(active, -ratio * advantages, 0.0) / n

        d_mean_per, d_log_std_per = DiagGaussian.log_prob_grads(actions, mean, log_std)
        d_mean = d_mean_per * d_logp[:, None]
        d_log_std = (d_log_std_per * d_logp[:, None]).sum(axis=0)

        # Entropy bonus: loss -= beta * H; for a free log_std Gaussian,
        # dH/d log_std = 1 per dimension (state-independent).
        entropy = DiagGaussian.entropy(log_std)
        d_log_std -= beta * DiagGaussian.entropy_grad_log_std(log_std)

        # Value loss: 0.5 * c_v * mean((V - R)^2).
        value_err = value - returns
        value_loss = 0.5 * float(np.mean(value_err ** 2))
        d_value = cfg.value_coef * value_err / n

        model.backward(d_mean * scale, d_value * scale, d_log_std * scale)

        clip_fraction = float(np.mean(np.abs(ratio - 1.0) > cfg.clip_epsilon))
        approx_kl = float(np.mean(old_log_probs - new_log_probs))
        return PPOStats(policy_loss, value_loss, entropy, clip_fraction, approx_kl)


def snapshot(model: PreferenceActorCritic) -> dict[str, np.ndarray]:
    """Convenience alias for ``model.state_dict()`` used by experiments."""
    return model.state_dict()


def restore(model: PreferenceActorCritic, state: dict[str, np.ndarray]) -> None:
    """Convenience alias for ``model.load_state_dict``."""
    model.load_state_dict(state)
