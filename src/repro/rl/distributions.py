"""Action distributions for the policy networks.

MOCC's actor outputs the mean and standard deviation of a Gaussian over
the continuous rate-adjustment action (Fig. 2b/3); MOCC-DQN (the Fig. 18
ablation) uses a categorical distribution over discretised actions.

Both classes are stateless: they take distribution parameters per call
and return values plus the gradients PPO/DQN need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiagGaussian", "Categorical"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """Diagonal Gaussian over a continuous action vector.

    Parameterised by a state-dependent ``mean`` and a ``log_std`` (either
    state-dependent or a free parameter vector, as in stable-baselines
    PPO which the paper builds on).
    """

    @staticmethod
    def sample(mean: np.ndarray, log_std: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        std = np.exp(log_std)
        return mean + std * rng.standard_normal(mean.shape)

    @staticmethod
    def log_prob(actions: np.ndarray, mean: np.ndarray, log_std: np.ndarray) -> np.ndarray:
        """Per-sample log density, summed over action dimensions."""
        actions = np.atleast_2d(actions)
        mean = np.atleast_2d(mean)
        var = np.exp(2.0 * log_std)
        per_dim = -0.5 * ((actions - mean) ** 2 / var + 2.0 * log_std + _LOG_2PI)
        return per_dim.sum(axis=-1)

    @staticmethod
    def log_prob_grads(actions: np.ndarray, mean: np.ndarray, log_std: np.ndarray):
        """Gradients of log-prob w.r.t. ``mean`` and ``log_std``.

        Returns ``(d_mean, d_log_std)`` with the same shapes as the
        inputs; ``d_log_std`` is per-sample (not yet summed over the
        batch) so callers can weight each sample before reducing.
        """
        actions = np.atleast_2d(actions)
        mean = np.atleast_2d(mean)
        var = np.exp(2.0 * log_std)
        diff = actions - mean
        d_mean = diff / var
        d_log_std = diff ** 2 / var - 1.0
        return d_mean, d_log_std

    @staticmethod
    def entropy(log_std: np.ndarray) -> float:
        """Differential entropy, summed over action dimensions."""
        return float(np.sum(log_std + 0.5 * (_LOG_2PI + 1.0)))

    @staticmethod
    def entropy_grad_log_std(log_std: np.ndarray) -> np.ndarray:
        """d entropy / d log_std = 1 for every dimension."""
        return np.ones_like(log_std)

    @staticmethod
    def kl(mean_a, log_std_a, mean_b, log_std_b) -> np.ndarray:
        """Per-sample KL(a || b) between two diagonal Gaussians."""
        mean_a = np.atleast_2d(mean_a)
        mean_b = np.atleast_2d(mean_b)
        var_a = np.exp(2.0 * log_std_a)
        var_b = np.exp(2.0 * log_std_b)
        per_dim = (log_std_b - log_std_a
                   + (var_a + (mean_a - mean_b) ** 2) / (2.0 * var_b) - 0.5)
        return per_dim.sum(axis=-1)


class Categorical:
    """Categorical distribution over discrete actions (MOCC-DQN)."""

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        logits = np.atleast_2d(logits)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    @staticmethod
    def sample(logits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        probs = Categorical.softmax(logits)
        cumulative = probs.cumsum(axis=-1)
        draws = rng.random(size=(probs.shape[0], 1))
        return (draws < cumulative).argmax(axis=-1)

    @staticmethod
    def log_prob(actions: np.ndarray, logits: np.ndarray) -> np.ndarray:
        probs = Categorical.softmax(logits)
        idx = np.arange(probs.shape[0])
        return np.log(probs[idx, np.asarray(actions, dtype=int)] + 1e-12)

    @staticmethod
    def entropy(logits: np.ndarray) -> np.ndarray:
        probs = Categorical.softmax(logits)
        return -(probs * np.log(probs + 1e-12)).sum(axis=-1)
