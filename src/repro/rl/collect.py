"""Rollout collection: run a policy in a MoccEnv and fill a buffer.

This is the glue between the simulator (:mod:`repro.netsim.env`) and
the PPO trainer.  Both MOCC (preference-conditioned) and Aurora-style
(single-objective) agents are served: for the latter, the weight vector
still parameterises the *environment's* reward (the objective the agent
is being trained for) but is not part of the model's state.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.env import MoccEnv
from repro.rl.policy import PreferenceActorCritic
from repro.rl.rollout import RolloutBuffer

__all__ = ["collect_rollout", "evaluate_policy", "run_policy_episode",
           "resolve_objective"]

#: Default environment objective when a caller passes ``weights=None``
#: (only legal for unconditioned models): the balanced requirement.
BALANCED_OBJECTIVE = np.full(3, 1.0 / 3.0)


def resolve_objective(weights, conditioned: bool) -> np.ndarray:
    """Normalise a caller's weight argument to the env's objective vector.

    The environment always needs an objective for its reward, even when
    the *model* is unconditioned (``weight_dim == 0``); ``None`` then
    means the balanced objective.  Conditioned models must be given
    their preference explicitly.
    """
    if weights is None:
        if conditioned:
            raise ValueError("preference-conditioned model needs a weight vector")
        return BALANCED_OBJECTIVE.copy()
    return np.asarray(weights, dtype=np.float64)


def collect_rollout(env: MoccEnv, model: PreferenceActorCritic, weights,
                    steps: int, rng: np.random.Generator,
                    obs_state: tuple | None = None):
    """Collect ``steps`` on-policy transitions for the given objective.

    Returns ``(buffer, bootstrap_value, mean_episode_reward, carry)``.
    ``carry`` is the ``(obs, weights)`` pair to resume from (pass it back
    as ``obs_state`` to continue the same episode across iterations).
    ``weights=None`` is accepted for unconditioned models (the env then
    rewards the balanced objective).
    """
    conditioned = model.weight_dim > 0
    weights = resolve_objective(weights, conditioned)
    buffer = RolloutBuffer(env.observation_dim, model.weight_dim, model.act_dim, steps)

    if obs_state is None:
        obs, w_obs = env.reset(weights)
    else:
        obs, w_obs = obs_state

    episode_rewards: list[float] = []
    episode_total = 0.0
    done = False
    for _ in range(steps):
        w_in = w_obs if conditioned else None
        action, log_prob, value = model.act(obs, w_in, rng)
        next_obs, next_w, reward, _, done, _ = env.step(float(action[0]))
        buffer.add(obs, action, log_prob, value, reward, done,
                   weights=w_obs if conditioned else None)
        episode_total += reward
        if done:
            episode_rewards.append(episode_total)
            episode_total = 0.0
            obs, w_obs = env.reset(weights)
        else:
            obs, w_obs = next_obs, next_w

    if done:
        bootstrap = 0.0
    else:
        bootstrap = model.value(obs, w_obs if conditioned else None)
    if not episode_rewards:
        # No episode completed (the rollout is shorter than an episode,
        # e.g. after sharding across workers): extrapolate the per-step
        # reward to the episode horizon rather than reporting the
        # partial total as a finished episode, so reward traces stay
        # comparable no matter how collection is sharded.
        horizon = getattr(getattr(env, "env", env), "max_steps", steps)
        episode_rewards.append(episode_total * max(horizon, steps) / steps)
    return buffer, bootstrap, float(np.mean(episode_rewards)), (obs, w_obs)


def run_policy_episode(env: MoccEnv, model: PreferenceActorCritic, weights,
                       rng: np.random.Generator, deterministic: bool = True):
    """Run one full episode; return ``(total_reward, mean_components)``.

    ``mean_components`` is the per-step average of (O_thr, O_lat,
    O_loss) -- useful for utilization/latency reporting.
    ``weights=None`` is accepted for unconditioned models.
    """
    conditioned = model.weight_dim > 0
    weights = resolve_objective(weights, conditioned)
    obs, w_obs = env.reset(weights)
    total = 0.0
    comps = np.zeros(3)
    steps = 0
    done = False
    while not done:
        w_in = w_obs if conditioned else None
        action, _, _ = model.act(obs, w_in, rng, deterministic=deterministic)
        obs, w_obs, reward, components, done, _ = env.step(float(action[0]))
        total += reward
        comps += components.as_array()
        steps += 1
    return total, comps / max(steps, 1)


def evaluate_policy(env: MoccEnv, model: PreferenceActorCritic, weights,
                    rng: np.random.Generator, episodes: int = 1,
                    deterministic: bool = True) -> float:
    """Mean episodic reward of a policy on one objective."""
    totals = [run_policy_episode(env, model, weights, rng, deterministic)[0]
              for _ in range(episodes)]
    return float(np.mean(totals))
