"""Rollout collection: run a policy in a MoccEnv and fill a buffer.

This is the glue between the simulator (:mod:`repro.netsim.env`) and
the PPO trainer.  Both MOCC (preference-conditioned) and Aurora-style
(single-objective) agents are served: for the latter, the weight vector
still parameterises the *environment's* reward (the objective the agent
is being trained for) but is not part of the model's state.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.env import MoccEnv
from repro.rl.policy import PreferenceActorCritic
from repro.rl.rollout import RolloutBuffer

__all__ = ["collect_rollout", "evaluate_policy", "run_policy_episode"]


def collect_rollout(env: MoccEnv, model: PreferenceActorCritic, weights,
                    steps: int, rng: np.random.Generator,
                    obs_state: tuple | None = None):
    """Collect ``steps`` on-policy transitions for the given objective.

    Returns ``(buffer, bootstrap_value, mean_episode_reward, carry)``.
    ``carry`` is the ``(obs, weights)`` pair to resume from (pass it back
    as ``obs_state`` to continue the same episode across iterations).
    """
    weights = np.asarray(weights, dtype=np.float64)
    conditioned = model.weight_dim > 0
    buffer = RolloutBuffer(env.observation_dim, model.weight_dim, model.act_dim, steps)

    if obs_state is None:
        obs, w_obs = env.reset(weights)
    else:
        obs, w_obs = obs_state

    episode_rewards: list[float] = []
    episode_total = 0.0
    done = False
    for _ in range(steps):
        w_in = w_obs if conditioned else None
        action, log_prob, value = model.act(obs, w_in, rng)
        next_obs, next_w, reward, _, done, _ = env.step(float(action[0]))
        buffer.add(obs, action, log_prob, value, reward, done,
                   weights=w_obs if conditioned else None)
        episode_total += reward
        if done:
            episode_rewards.append(episode_total)
            episode_total = 0.0
            obs, w_obs = env.reset(weights)
        else:
            obs, w_obs = next_obs, next_w

    if done:
        bootstrap = 0.0
    else:
        bootstrap = model.value(obs, w_obs if conditioned else None)
    if not episode_rewards:
        episode_rewards.append(episode_total)
    return buffer, bootstrap, float(np.mean(episode_rewards)), (obs, w_obs)


def run_policy_episode(env: MoccEnv, model: PreferenceActorCritic, weights,
                       rng: np.random.Generator, deterministic: bool = True):
    """Run one full episode; return ``(total_reward, mean_components)``.

    ``mean_components`` is the per-step average of (O_thr, O_lat,
    O_loss) -- useful for utilization/latency reporting.
    """
    weights = np.asarray(weights, dtype=np.float64)
    conditioned = model.weight_dim > 0
    obs, w_obs = env.reset(weights)
    total = 0.0
    comps = np.zeros(3)
    steps = 0
    done = False
    while not done:
        w_in = w_obs if conditioned else None
        action, _, _ = model.act(obs, w_in, rng, deterministic=deterministic)
        obs, w_obs, reward, components, done, _ = env.step(float(action[0]))
        total += reward
        comps += components.as_array()
        steps += 1
    return total, comps / max(steps, 1)


def evaluate_policy(env: MoccEnv, model: PreferenceActorCritic, weights,
                    rng: np.random.Generator, episodes: int = 1,
                    deterministic: bool = True) -> float:
    """Mean episodic reward of a policy on one objective."""
    totals = [run_policy_episode(env, model, weights, rng, deterministic)[0]
              for _ in range(episodes)]
    return float(np.mean(totals))
