"""Gradient-descent optimizers.

The paper uses Adam ("a famous adaptive learning rate optimization
algorithm, which consistently outperforms standard SGD", §5) with a
learning rate of 0.001 (Table 2).  SGD is provided for comparison and
for the deep-dive tests.
"""

from __future__ import annotations

import numpy as np

from repro.rl.nn import Parameter

__all__ = ["Optimizer", "Adam", "SGD", "clip_grad_norm"]


def clip_grad_norm(params: dict[str, Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging/tests).
    """
    total = 0.0
    for param in params.values():
        total += float(np.sum(param.grad ** 2))
    norm = float(np.sqrt(total))
    if max_norm > 0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params.values():
            param.grad *= scale
    return norm


class Optimizer:
    """Base optimizer over a named parameter dict."""

    def __init__(self, params: dict[str, Parameter], lr: float):
        self.params = params
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.params.values():
            param.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: dict[str, Parameter], lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = {name: np.zeros_like(p.value) for name, p in params.items()}

    def step(self) -> None:
        for name, param in self.params.items():
            if self.momentum > 0:
                vel = self._velocity[name]
                vel *= self.momentum
                vel -= self.lr * param.grad
                param.value += vel
            else:
                param.value -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) -- the paper's optimizer of choice."""

    def __init__(self, params: dict[str, Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {name: np.zeros_like(p.value) for name, p in params.items()}
        self._v = {name: np.zeros_like(p.value) for name, p in params.items()}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for name, param in self.params.items():
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        """Forget moment estimates (used when transferring to a new task)."""
        for name in self._m:
            self._m[name].fill(0.0)
            self._v[name].fill(0.0)
        self._t = 0
