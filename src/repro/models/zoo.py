"""Seeded train-and-cache model registry.

The paper's experiments depend on trained models (MOCC's offline model,
Aurora-throughput, Aurora-latency, the 10-model "enhanced Aurora" of
Fig. 6).  Training them at paper scale takes hours; this registry
trains scaled-down but behaviourally-equivalent models on first use and
caches the checkpoints on disk, so the test/benchmark suite pays the
cost once.

Budgets come in two presets:

* ``fast`` -- seconds per model; enough for tests and smoke runs;
* ``full`` -- a couple of minutes per model; what the benchmarks use.

All training is seeded, so a cache hit and a retrain produce identical
models.  Set ``REPRO_MODEL_CACHE`` to relocate the cache directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import DEFAULT_TRAINING, TRAINING_RANGES, TrainingConfig
from repro.core.agent import MoccAgent
from repro.core.offline import OfflineTrainer, train_single_objective
from repro.core.weights import LATENCY_WEIGHTS, THROUGHPUT_WEIGHTS, simplex_grid
from repro.rl.parallel import EnvSpec

__all__ = ["TrainingBudget", "BUDGETS", "ModelZoo", "default_zoo"]


@dataclass(frozen=True)
class TrainingBudget:
    """Iteration counts for one quality preset."""

    bootstrap_iters: int
    traverse_iters: int
    cycles: int
    single_objective_iters: int
    steps_per_iteration: int
    episode_steps: int


BUDGETS = {
    # Calibration: joint bootstrap over the three pivots for >=150
    # iterations yields a weight-monotone policy family (utilization and
    # latency both ordered by w_thr); "fast" trades some fidelity for
    # test-suite speed.  Bootstrap iterations are *joint* (3 rollouts
    # per iteration, one per pivot objective).
    "fast": TrainingBudget(bootstrap_iters=100, traverse_iters=1, cycles=1,
                           single_objective_iters=150, steps_per_iteration=256,
                           episode_steps=96),
    "full": TrainingBudget(bootstrap_iters=250, traverse_iters=1, cycles=1,
                           single_objective_iters=300, steps_per_iteration=256,
                           episode_steps=96),
}


#: Bumped whenever the training pipeline changes in a way that makes
#: previously-cached checkpoints stale.
PIPELINE_VERSION = "v3"


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_MODEL_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parent / "_cache"


class ModelZoo:
    """Train-on-first-use registry of the experiments' models."""

    def __init__(self, cache_dir: str | Path | None = None,
                 config: TrainingConfig = DEFAULT_TRAINING):
        self.cache_dir = Path(cache_dir) if cache_dir else _default_cache_dir()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self._memory: dict[str, MoccAgent] = {}

    # --- plumbing ---------------------------------------------------------

    def _env_spec(self, budget: TrainingBudget, seed: int) -> EnvSpec:
        # Table 3's training distribution, verbatim (absolute queue
        # sizes).  BDP-relative queue sampling (EnvSpec.queue_bdp_range)
        # is available for experiments but makes the conservative idle
        # policy dominate at small training budgets.
        return EnvSpec(ranges=TRAINING_RANGES,
                       history_length=self.config.history_length,
                       action_scale=self.config.action_scale,
                       max_steps=budget.episode_steps, seed=seed)

    def _config_for(self, budget: TrainingBudget) -> TrainingConfig:
        return self.config.replace(steps_per_iteration=budget.steps_per_iteration)

    def _cached(self, key: str, train) -> MoccAgent:
        if key in self._memory:
            return self._memory[key]
        path = self.cache_dir / f"{key}.npz"
        if path.exists():
            agent = MoccAgent.load(path)
        else:
            agent = train()
            agent.save(path)
        self._memory[key] = agent
        return agent

    # --- the models --------------------------------------------------------

    @staticmethod
    def _budget_tag(budget: TrainingBudget) -> str:
        """Cache-key fragment pinning the budget and pipeline version."""
        return (f"{PIPELINE_VERSION}_b{budget.bootstrap_iters}t{budget.traverse_iters}"
                f"c{budget.cycles}i{budget.single_objective_iters}"
                f"s{budget.steps_per_iteration}e{budget.episode_steps}")

    def mocc_offline(self, quality: str = "fast", omega: int = 36,
                     seed: int = 0) -> MoccAgent:
        """The two-phase offline-trained multi-objective model (§4.2)."""
        budget = BUDGETS[quality]

        def train() -> MoccAgent:
            trainer = OfflineTrainer(spec=self._env_spec(budget, seed),
                                     config=self._config_for(budget), seed=seed)
            result = trainer.train(omega=omega,
                                   bootstrap_iters=budget.bootstrap_iters,
                                   traverse_iters=budget.traverse_iters,
                                   cycles=budget.cycles)
            return result.agent

        key = f"mocc_omega{omega}_{quality}_{self._budget_tag(budget)}_seed{seed}"
        return self._cached(key, train)

    def aurora(self, flavor: str = "throughput", quality: str = "fast",
               seed: int = 0) -> MoccAgent:
        """Single-objective Aurora (no preference sub-network)."""
        weights = {"throughput": THROUGHPUT_WEIGHTS,
                   "latency": LATENCY_WEIGHTS}[flavor]
        return self.aurora_for(weights, tag=flavor, quality=quality, seed=seed)

    def aurora_for(self, weights, tag: str, quality: str = "fast",
                   seed: int = 0) -> MoccAgent:
        """Aurora trained for an arbitrary fixed objective."""
        budget = BUDGETS[quality]
        weights = np.asarray(weights, dtype=np.float64)

        def train() -> MoccAgent:
            agent, _, _ = train_single_objective(
                self._env_spec(budget, seed + 7), weights,
                budget.single_objective_iters,
                config=self._config_for(budget), seed=seed)
            return agent

        key = f"aurora_{tag}_{quality}_{self._budget_tag(budget)}_seed{seed}"
        return self._cached(key, train)

    def enhanced_aurora(self, n_models: int = 10, quality: str = "fast",
                        seed: int = 0) -> list[tuple[np.ndarray, MoccAgent]]:
        """Fig. 6's enhanced Aurora: ``n_models`` pre-trained instances.

        Objectives are spread over the simplex (a coarse grid), which is
        how one would "pre-train a few variants of Aurora ... that best
        suit these 100 objectives".
        """
        grid = simplex_grid(6)  # 10 interior points at step 1/6
        objectives = grid[:n_models]
        models = []
        for i, w in enumerate(objectives):
            tag = "enh%d_%d" % (n_models, i)
            models.append((w, self.aurora_for(w, tag=tag, quality=quality,
                                              seed=seed + 100 + i)))
        return models

    def clear(self) -> None:
        """Drop the in-memory cache (disk cache untouched)."""
        self._memory.clear()


_default: ModelZoo | None = None


def default_zoo() -> ModelZoo:
    """Process-wide zoo instance with the default cache location."""
    global _default
    if _default is None:
        _default = ModelZoo()
    return _default
