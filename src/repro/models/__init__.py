"""Pre-trained model registry (train-on-first-use, cached on disk)."""

from repro.models.zoo import ModelZoo, default_zoo

__all__ = ["ModelZoo", "default_zoo"]
