"""The MOCC agent and its simulator-facing rate controller.

:class:`MoccAgent` owns the preference-conditioned actor-critic model
(§4.1) plus the hyperparameters, and provides save/load so offline
training, online adaptation and evaluation can share checkpoints.

:class:`PolicyRateController` adapts any trained policy (MOCC's, or a
single-objective Aurora-style one) to the simulator's controller
interface: at each monitor interval it feeds the statistics history to
the network and applies Eq. 1 to its pacing rate.  This is the
"inference path" a real deployment runs -- the datapath shims in
:mod:`repro.datapath` wrap it with call-frequency accounting.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import TrainingConfig, DEFAULT_TRAINING
from repro.netsim.env import apply_action
from repro.netsim.history import StatHistory
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats
from repro.rl.policy import PreferenceActorCritic

#: Number of statistics per monitor interval in the state vector.
STATE_FEATURES = StatHistory.FEATURES

__all__ = ["MoccAgent", "PolicyRateController", "MoccController"]


class MoccAgent:
    """Preference-conditioned congestion-control agent."""

    def __init__(self, config: TrainingConfig = DEFAULT_TRAINING,
                 weight_dim: int = 3, seed: int | None = None):
        self.config = config
        self.weight_dim = weight_dim
        self.obs_dim = STATE_FEATURES * config.history_length
        rng = np.random.default_rng(config.seed if seed is None else seed)
        self.model = PreferenceActorCritic(
            obs_dim=self.obs_dim, weight_dim=weight_dim, act_dim=1,
            hidden_sizes=config.hidden_sizes, pref_hidden=config.preference_hidden,
            rng=rng)

    # --- acting ----------------------------------------------------------

    def act(self, obs: np.ndarray, weights, rng: np.random.Generator,
            deterministic: bool = True) -> float:
        """One action (the Eq. 1 adjustment scalar) for a state."""
        w = weights if self.weight_dim > 0 else None
        action, _, _ = self.model.act(obs, w, rng, deterministic=deterministic)
        return float(action[0])

    def next_rate(self, rate: float, obs: np.ndarray, weights,
                  rng: np.random.Generator, deterministic: bool = True) -> float:
        """Apply the policy's action to a current sending rate (Eq. 1)."""
        action = self.act(obs, weights, rng, deterministic=deterministic)
        return apply_action(rate, action, self.config.action_scale)

    # --- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise model weights and architecture metadata (.npz)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        state = self.model.state_dict()
        meta = {
            "meta_obs_dim": np.array(self.obs_dim),
            "meta_weight_dim": np.array(self.weight_dim),
            "meta_hidden": np.array(self.config.hidden_sizes),
            "meta_pref_hidden": np.array(self.config.preference_hidden),
            "meta_history_length": np.array(self.config.history_length),
            "meta_action_scale": np.array(self.config.action_scale),
        }
        np.savez(path, **{f"param_{k}": v for k, v in state.items()}, **meta)

    @classmethod
    def load(cls, path: str | Path) -> "MoccAgent":
        """Restore an agent saved with :meth:`save`."""
        data = np.load(Path(path), allow_pickle=False)
        hidden = tuple(int(h) for h in data["meta_hidden"])
        config = DEFAULT_TRAINING.replace(
            hidden_sizes=hidden,
            preference_hidden=int(data["meta_pref_hidden"]),
            history_length=int(data["meta_history_length"]),
            action_scale=float(data["meta_action_scale"]),
        )
        agent = cls(config, weight_dim=int(data["meta_weight_dim"]))
        state = {k[len("param_"):]: data[k] for k in data.files if k.startswith("param_")}
        agent.model.load_state_dict(state)
        return agent

    def clone(self) -> "MoccAgent":
        twin = MoccAgent(self.config, weight_dim=self.weight_dim)
        twin.model.load_state_dict(self.model.state_dict())
        return twin


class PolicyRateController(Controller):
    """Run a frozen policy as a rate-based congestion controller.

    At every monitor interval the controller pushes the interval's
    statistics into its history window, queries the policy, and applies
    the Eq. 1 multiplicative adjustment to the pacing rate.
    """

    kind = "rate"
    name = "policy"

    def __init__(self, model: PreferenceActorCritic, weights=None,
                 initial_rate: float = 100.0, action_scale: float = 0.025,
                 history_length: int = 10, deterministic: bool = True,
                 seed: int = 0):
        self.model = model
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        if model.weight_dim > 0 and self.weights is None:
            raise ValueError("preference-conditioned model needs a weight vector")
        self.rate = float(initial_rate)
        self.action_scale = action_scale
        self.history = StatHistory(history_length)
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        #: Number of policy inferences performed (overhead accounting).
        self.inference_count = 0

    def on_flow_start(self, flow: Flow, now: float) -> None:
        self.history.reset()

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        self.history.push(flow, stats)
        w = self.weights if self.model.weight_dim > 0 else None
        action, _, _ = self.model.act(self.history.vector(), w, self.rng,
                                      deterministic=self.deterministic)
        self.inference_count += 1
        self.rate = apply_action(self.rate, float(action[0]), self.action_scale)

    def pacing_rate(self, now: float) -> float:
        return self.rate


class MoccController(PolicyRateController):
    """A :class:`PolicyRateController` bound to a MOCC agent + weight."""

    name = "MOCC"

    def __init__(self, agent: MoccAgent, weights, initial_rate: float = 100.0,
                 deterministic: bool = True, seed: int = 0):
        super().__init__(agent.model, weights=weights, initial_rate=initial_rate,
                         action_scale=agent.config.action_scale,
                         history_length=agent.config.history_length,
                         deterministic=deterministic, seed=seed)
