"""The deployable MOCC library (§5).

"For better portability, we encapsulate all MOCC's functions into one
library" with three calls:

* ``register(w)``          -- declare the application's requirement;
* ``report_status(st)``    -- feed the latest networking status;
* ``get_sending_rate()``   -- obtain the rate for the next interval.

The library is datapath-agnostic: the UDT-style and CCP-style shims in
:mod:`repro.datapath` both drive this same object, as would any real
transport.  Status reports carry raw counters (sent/acked/lost packets,
mean RTT); the library derives the model's state features itself --
including the online capacity / base-latency estimates used by the
reward normalisation (§4.1) -- so callers never deal with RL internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import MoccAgent
from repro.core.objectives import OnlineEstimator
from repro.core.weights import validate_weights
from repro.netsim.env import apply_action
from repro.netsim.history import GRADIENT_SCALE, StatHistory
from repro.netsim.sender import LATENCY_RATIO_CAP, SEND_RATIO_CAP

__all__ = ["NetworkStatus", "MOCC"]


@dataclass(frozen=True)
class NetworkStatus:
    """One interval's raw networking status (the ``st`` of §5).

    ``duration`` is the length of the reporting interval in seconds;
    ``mean_rtt`` is ``None`` when nothing was acknowledged.
    """

    sent: int
    acked: int
    lost: int
    mean_rtt: float | None
    duration: float


class MOCC:
    """Plug-and-play multi-objective congestion control (§5 API)."""

    def __init__(self, agent: MoccAgent, initial_rate: float = 100.0,
                 deterministic: bool = True, seed: int = 0):
        self.agent = agent
        self.history = StatHistory(agent.config.history_length)
        self.estimator = OnlineEstimator()
        self.rate = float(initial_rate)
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        self.weights: np.ndarray | None = None
        self._min_mean_rtt: float | None = None
        self._prev_mean_rtt: float | None = None
        self._registered = False
        #: Policy inference counter (used by the overhead study).
        self.inference_count = 0

    # --- the three §5 calls ----------------------------------------------

    def register(self, weights) -> None:
        """``Register(w)``: set the application requirement."""
        self.weights = validate_weights(weights)
        self.history.reset()
        self._registered = True

    def report_status(self, status: NetworkStatus) -> None:
        """``ReportStatus(st)``: fold one interval's status into state."""
        if not self._registered:
            raise RuntimeError("call register() before report_status()")
        if status.duration <= 0:
            raise ValueError("status duration must be positive")

        if status.acked == 0:
            send_ratio = SEND_RATIO_CAP if status.sent > 0 else 1.0
        else:
            send_ratio = min(status.sent / status.acked, SEND_RATIO_CAP)

        mean_rtt = status.mean_rtt
        if mean_rtt is not None:
            if self._min_mean_rtt is None or mean_rtt < self._min_mean_rtt:
                self._min_mean_rtt = mean_rtt
            latency_ratio = min(mean_rtt / self._min_mean_rtt, LATENCY_RATIO_CAP)
            if self._prev_mean_rtt is None:
                gradient = 0.0
            else:
                gradient = (mean_rtt - self._prev_mean_rtt) / status.duration
            self._prev_mean_rtt = mean_rtt
        else:
            latency_ratio = LATENCY_RATIO_CAP
            gradient = 0.0

        throughput = status.acked / status.duration
        self.estimator.update(throughput, mean_rtt)
        capacity = self.estimator.capacity
        rate_ratio = self.rate / capacity if capacity else 1.0
        self.history.push_raw(send_ratio, latency_ratio, gradient * GRADIENT_SCALE,
                              rate_ratio)

    def get_sending_rate(self) -> float:
        """``GetSendingRate()``: the rate for the next interval (pps)."""
        if not self._registered:
            raise RuntimeError("call register() before get_sending_rate()")
        action = self.agent.act(self.history.vector(), self.weights, self.rng,
                                deterministic=self.deterministic)
        self.inference_count += 1
        self.rate = apply_action(self.rate, action, self.agent.config.action_scale)
        return self.rate
