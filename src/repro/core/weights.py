"""Application requirement (preference) vectors -- §4.1.

An application expresses its requirement as a weight vector
``w = <w_thr, w_lat, w_loss>`` with each ``w_i`` in the *open* interval
(0, 1) and ``sum(w) = 1``.  Offline training uses "landmark" objectives
taken from a regular grid over that simplex: at step size ``1/k`` the
interior grid has ``(k-1)(k-2)/2`` points, giving the paper's
``omega ∈ {3, 6, 10, 36, 171}`` for ``k ∈ {4, 5, 6, 10, 20}``
(Fig. 16; the 36-point grid at step 1/10 is the default, Table 2).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "THROUGHPUT_WEIGHTS",
    "LATENCY_WEIGHTS",
    "RTC_WEIGHTS",
    "BALANCE_WEIGHTS",
    "LOSS_WEIGHTS",
    "validate_weights",
    "simplex_grid",
    "step_for_omega",
    "omega_for_step",
    "sample_weight",
    "project_to_simplex",
    "nearest_grid_point",
]

#: w1 in Fig. 5/8: throughput-hungry applications (video streaming).
THROUGHPUT_WEIGHTS = np.array([0.8, 0.1, 0.1])
#: w2 in Fig. 5: latency-sensitive applications.
LATENCY_WEIGHTS = np.array([0.1, 0.8, 0.1])
#: Fig. 9's real-time communications weight.
RTC_WEIGHTS = np.array([0.4, 0.5, 0.1])
#: The "MOCC-Balance" variant of §6.4.
BALANCE_WEIGHTS = np.array([0.34, 0.33, 0.33])
#: Loss-averse weight (w6 in Fig. 14).
LOSS_WEIGHTS = np.array([0.1, 0.1, 0.8])


def validate_weights(weights, atol: float = 1e-6) -> np.ndarray:
    """Check the simplex constraint; return the vector as an ndarray.

    Raises ``ValueError`` when a component is outside (0, 1) or the
    components do not sum to one.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (3,):
        raise ValueError(f"weight vector must have 3 components, got shape {w.shape}")
    if not np.isclose(w.sum(), 1.0, atol=atol):
        raise ValueError(f"weights must sum to 1 (got {w.sum():.6f})")
    if np.any(w <= 0.0) or np.any(w >= 1.0):
        raise ValueError(f"each weight must lie in the open interval (0, 1): {w}")
    return w


def simplex_grid(step_denominator: int) -> np.ndarray:
    """Interior grid points of the weight simplex at step ``1/k``.

    Returns an array of shape ``(omega, 3)`` with
    ``omega = (k-1)(k-2)/2``, ordered lexicographically by
    ``(w_thr, w_lat)``.
    """
    k = int(step_denominator)
    if k < 3:
        raise ValueError("need step denominator >= 3 for interior points")
    points = []
    for i in range(1, k - 1):
        for j in range(1, k - i):
            l = k - i - j
            if l >= 1:
                points.append((i / k, j / k, l / k))
    return np.array(points)


def omega_for_step(step_denominator: int) -> int:
    """Number of interior grid points at step ``1/k``."""
    k = int(step_denominator)
    return (k - 1) * (k - 2) // 2


def step_for_omega(omega: int) -> int:
    """Inverse of :func:`omega_for_step` for the paper's omega values."""
    k = 3
    while omega_for_step(k) < omega:
        k += 1
        if k > 1000:
            raise ValueError(f"no grid as large as omega={omega}")
    if omega_for_step(k) != omega:
        raise ValueError(f"omega={omega} is not a triangular grid size")
    return k


def sample_weight(rng: np.random.Generator, min_weight: float = 0.05) -> np.ndarray:
    """Draw one weight vector uniformly from the (slightly shrunk) simplex.

    The Dirichlet(1,1,1) draw is re-scaled so every component is at
    least ``min_weight``, respecting the open-interval constraint.
    """
    raw = rng.dirichlet(np.ones(3))
    return project_to_simplex(raw, min_weight)


def project_to_simplex(weights, min_weight: float = 0.01) -> np.ndarray:
    """Clamp a vector onto the valid simplex interior.

    Used for the paper's "greedy" ``w = <1, 0, 0>`` (Fig. 10), which
    violates the open-interval constraint: components are floored at
    ``min_weight`` and the vector renormalised.
    """
    w = np.asarray(weights, dtype=np.float64).clip(min=0.0)
    total = w.sum()
    if total <= 0:
        return np.full(3, 1.0 / 3.0)
    w = w / total
    w = (1.0 - 3.0 * min_weight) * w + min_weight
    return w / w.sum()


def nearest_grid_point(weights, step_denominator: int) -> np.ndarray:
    """Closest landmark (Euclidean) to an arbitrary weight vector."""
    grid = simplex_grid(step_denominator)
    w = np.asarray(weights, dtype=np.float64)
    idx = int(np.argmin(np.sum((grid - w) ** 2, axis=1)))
    return grid[idx]
