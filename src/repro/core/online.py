"""Online adaptation with requirement replay (§4.3).

When a new application (weight vector) arrives:

* the offline-trained correlation model already provides a *moderate*
  policy for it (the preference sub-network interpolates between
  landmarks), so performance is reasonable from the first interval;
* transfer learning -- continuing PPO from the offline model --
  converges to the objective's optimal policy in a few iterations
  (Fig. 7a: 45 vs. Aurora's 639 from scratch, 14.2x);
* to avoid forgetting, each online step optimises the *requirement
  replay* loss (Eq. 6): the average of the PPO surrogate on the new
  objective and on an old objective sampled uniformly from the pool of
  previously-encountered applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_TRAINING, TrainingConfig
from repro.core.agent import MoccAgent
from repro.rl.collect import evaluate_policy
from repro.rl.parallel import EnvSpec, SerialCollector
from repro.rl.ppo import PPOConfig, PPOTrainer

__all__ = ["RequirementReplay", "AdaptationTrace", "OnlineAdapter"]


class RequirementReplay:
    """Pool of encountered application requirements (weight vectors)."""

    def __init__(self, tolerance: float = 1e-6):
        self.tolerance = tolerance
        self._pool: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._pool)

    def add(self, weights) -> bool:
        """Store a requirement; returns False if already present."""
        w = np.asarray(weights, dtype=np.float64)
        for existing in self._pool:
            if np.allclose(existing, w, atol=self.tolerance):
                return False
        self._pool.append(w.copy())
        return True

    def sample(self, rng: np.random.Generator, exclude=None) -> np.ndarray | None:
        """Uniform draw from the pool, optionally excluding one vector."""
        candidates = self._pool
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.float64)
            candidates = [w for w in self._pool
                          if not np.allclose(w, exclude, atol=self.tolerance)]
        if not candidates:
            return None
        return candidates[int(rng.integers(len(candidates)))]

    def all(self) -> np.ndarray:
        return np.array(self._pool)


@dataclass
class AdaptationTrace:
    """Reward traces recorded while adapting to a new objective."""

    #: Mean (stochastic) episode reward on the new objective, per iteration.
    rewards: list[float] = field(default_factory=list)
    #: (iteration, deterministic eval reward) on the new objective.
    new_marks: list[tuple[int, float]] = field(default_factory=list)
    #: (iteration, deterministic eval reward) on the old objective.
    old_marks: list[tuple[int, float]] = field(default_factory=list)

    def convergence_iteration(self, frac: float = 0.99, smooth: int = 5) -> int:
        """First iteration whose smoothed reward reaches ``frac * max``.

        This is the paper's §6.2 definition ("99 % of the maximum
        reward gain").  Returns the 1-based iteration index.

        ``np.convolve(..., mode="valid")`` index ``j`` averages original
        iterations ``j .. j+smooth-1``, so the crossing is re-centered
        onto the *last* iteration of its window -- the earliest point at
        which the smoothed gain has actually been observed.  Without the
        re-centering, convergence time is under-reported by
        ``smooth - 1`` iterations.
        """
        r = np.asarray(self.rewards, dtype=np.float64)
        if len(r) == 0:
            raise ValueError("empty trace")
        offset = 0
        if smooth > 1:
            smooth = min(smooth, len(r))
            kernel = np.ones(smooth) / smooth
            r = np.convolve(r, kernel, mode="valid")
            offset = smooth - 1
        threshold = frac * r.max()
        crossing = int(np.argmax(r >= threshold))
        return crossing + offset + 1

    def initial_reward(self) -> float:
        return self.rewards[0] if self.rewards else float("nan")

    def old_objective_retention(self) -> float:
        """min(old-objective reward) / first old-objective reward.

        1.0 means no forgetting; the paper reports <5 % loss for MOCC
        while Aurora collapses (916.1 -> 156.1).
        """
        if not self.old_marks:
            return float("nan")
        values = np.array([v for _, v in self.old_marks])
        if values[0] <= 0:
            return float("nan")
        return float(values.min() / values[0])


class OnlineAdapter:
    """Adapt a trained MOCC agent to new objectives on-the-fly."""

    def __init__(self, agent: MoccAgent, spec: EnvSpec,
                 config: TrainingConfig = DEFAULT_TRAINING,
                 ppo_config: PPOConfig | None = None,
                 replay: RequirementReplay | None = None,
                 collector=None, seed: int = 0):
        if agent.weight_dim == 0:
            raise ValueError("online adaptation needs a preference-conditioned agent")
        self.agent = agent
        self.spec = spec
        self.config = config
        self.replay = replay if replay is not None else RequirementReplay()
        self.collector = collector or SerialCollector(spec)
        ppo_cfg = ppo_config or PPOConfig.from_training_config(config)
        self.ppo = PPOTrainer(agent.model, ppo_cfg, rng=np.random.default_rng(seed + 1))
        self.rng = np.random.default_rng(seed + 2)
        self._eval_env = spec.build(seed_offset=77_777)

    def seed_replay(self, objectives) -> None:
        """Pre-populate the replay pool (e.g. with offline landmarks)."""
        for w in np.atleast_2d(np.asarray(objectives, dtype=np.float64)):
            self.replay.add(w)

    def adapt(self, new_weights, iterations: int, eval_every: int = 8,
              old_weights=None, use_replay: bool = True) -> AdaptationTrace:
        """Adapt to ``new_weights`` for ``iterations`` PPO iterations.

        Each iteration collects a rollout on the new objective and --
        when the replay pool is non-empty and ``use_replay`` -- one on a
        sampled old objective, then applies the averaged loss of Eq. 6.
        ``old_weights`` (if given) is evaluated every ``eval_every``
        iterations to measure forgetting (Fig. 7b's snapshots).
        """
        new_weights = np.asarray(new_weights, dtype=np.float64)
        trace = AdaptationTrace()
        steps = self.config.steps_per_iteration

        for it in range(iterations):
            buffers, boots, mean_reward = self.collector.collect(
                self.agent.model, new_weights, steps, self.rng)
            replay_w = None
            if use_replay:
                replay_w = self.replay.sample(self.rng, exclude=new_weights)
            if replay_w is not None:
                old_buffers, old_boots, _ = self.collector.collect(
                    self.agent.model, replay_w, steps, self.rng)
                self.ppo.update(buffers + old_buffers, boots + old_boots)
            else:
                self.ppo.update(buffers, boots)
            trace.rewards.append(mean_reward)

            if eval_every and (it % eval_every == 0 or it == iterations - 1):
                mark = evaluate_policy(self._eval_env, self.agent.model,
                                       new_weights, self.rng)
                trace.new_marks.append((it, mark))
                if old_weights is not None:
                    old_mark = evaluate_policy(self._eval_env, self.agent.model,
                                               old_weights, self.rng)
                    trace.old_marks.append((it, old_mark))

        self.replay.add(new_weights)
        return trace
