"""Two-phase offline training (§4.2).

Enumerating every possible objective is intractable (the preference
simplex is continuous), so MOCC trains on ``omega`` landmark objectives
in two phases:

1. **Bootstrapping** -- a small number of objectives (three, Appendix B)
   are trained to (near) convergence, producing a base model whose
   pivot policies are close to the convex coverage set.
2. **Fast traversing** -- the remaining ``omega - 3`` objectives are
   visited in the neighbourhood-sorted order (Algorithm 1), each for
   only a few PPO iterations, cycling until improvement flattens out.
   Because neighbouring objectives have close optimal policies, each
   visit starts from an almost-right model and needs very little work
   -- this is the transfer-learning speedup measured in Fig. 19.

For the paper's comparisons the module also provides *individual
training* (one single-objective model per objective, no transfer): the
Fig. 19 baseline, the "enhanced Aurora" of Fig. 6, and the from-scratch
Aurora adaptation curve of Fig. 7a.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import BOOTSTRAP_OBJECTIVES, DEFAULT_TRAINING, TRAINING_RANGES, TrainingConfig
from repro.core.agent import MoccAgent
from repro.core.sorting import neighborhood_sort
from repro.core.weights import simplex_grid, step_for_omega
from repro.rl.collect import evaluate_policy
from repro.rl.parallel import EnvSpec, SerialCollector
from repro.rl.policy import PreferenceActorCritic
from repro.rl.ppo import PPOConfig, PPOTrainer

__all__ = ["ObjectiveLog", "OfflineResult", "OfflineTrainer",
           "train_single_objective", "train_individual"]


@dataclass
class ObjectiveLog:
    """One PPO iteration's record during offline training."""

    phase: str
    objective: tuple
    iteration: int
    mean_reward: float


@dataclass
class OfflineResult:
    """Output of :meth:`OfflineTrainer.train`."""

    agent: MoccAgent
    landmarks: np.ndarray
    traversal: list[int]
    log: list[ObjectiveLog] = field(repr=False)
    wall_time: float = 0.0
    total_iterations: int = 0


class OfflineTrainer:
    """Drives the two-phase offline training of a :class:`MoccAgent`."""

    def __init__(self, spec: EnvSpec | None = None,
                 config: TrainingConfig = DEFAULT_TRAINING,
                 ppo_config: PPOConfig | None = None,
                 collector=None, seed: int = 0):
        self.spec = spec or EnvSpec(ranges=TRAINING_RANGES, seed=seed)
        self.config = config
        self.agent = MoccAgent(config, seed=seed)
        self.ppo = PPOTrainer(self.agent.model,
                              ppo_config or PPOConfig.from_training_config(config),
                              rng=np.random.default_rng(seed + 1))
        self.collector = collector or SerialCollector(self.spec)
        self.rng = np.random.default_rng(seed + 2)
        self.log: list[ObjectiveLog] = []
        self._iteration = 0
        self._eval_env = self.spec.build(seed_offset=99_991)

    # --- building blocks ---------------------------------------------------

    def train_objective(self, weights, iterations: int, phase: str = "manual") -> float:
        """Run PPO iterations for a single objective; returns last reward."""
        weights = np.asarray(weights, dtype=np.float64)
        mean_reward = 0.0
        for _ in range(iterations):
            buffers, boots, mean_reward = self.collector.collect(
                self.agent.model, weights, self.config.steps_per_iteration, self.rng)
            self.ppo.update(buffers, boots)
            self._iteration += 1
            self.log.append(ObjectiveLog(phase, tuple(np.round(weights, 6)),
                                         self._iteration, mean_reward))
        return mean_reward

    def train_objectives_jointly(self, objectives, iterations: int,
                                 phase: str = "joint") -> float:
        """PPO iterations over several objectives *simultaneously*.

        Each iteration collects one rollout per objective and performs a
        pooled update: minibatches mix samples whose states are similar
        but whose weight vectors (and therefore correct actions and
        values) differ, so the loss can only be reduced through the
        preference sub-network.  Training objectives in sequential
        blocks instead would let each block fit the current objective
        while ignoring the preference input -- and be overwritten by the
        next block (catastrophic interference).
        """
        objectives = [np.asarray(w, dtype=np.float64) for w in objectives]
        mean_reward = 0.0
        for _ in range(iterations):
            buffers, boots, rewards = [], [], []
            for w in objectives:
                bufs, bs, mr = self.collector.collect(
                    self.agent.model, w, self.config.steps_per_iteration, self.rng)
                buffers.extend(bufs)
                boots.extend(bs)
                rewards.append(mr)
            self.ppo.update(buffers, boots)
            self._iteration += 1
            mean_reward = float(np.mean(rewards))
            for w, r in zip(objectives, rewards):
                self.log.append(ObjectiveLog(phase, tuple(np.round(w, 6)),
                                             self._iteration, r))
        return mean_reward

    def evaluate(self, objectives, episodes: int = 1) -> np.ndarray:
        """Deterministic episodic reward on each objective."""
        rewards = [evaluate_policy(self._eval_env, self.agent.model, w,
                                   self.rng, episodes=episodes)
                   for w in np.atleast_2d(np.asarray(objectives, dtype=np.float64))]
        return np.asarray(rewards)

    # --- the §4.2 procedure ----------------------------------------------------

    def train(self, omega: int = 36, bootstrap_iters: int = 30,
              traverse_iters: int = 2, cycles: int = 2,
              bootstraps=BOOTSTRAP_OBJECTIVES) -> OfflineResult:
        """Two-phase offline training over an ``omega``-landmark grid.

        **Bootstrapping** trains the three pivot objectives jointly for
        ``bootstrap_iters`` iterations; joint (mixed-minibatch) updates
        are what teach the preference sub-network to *separate*
        objectives (see :meth:`train_objectives_jointly`).

        **Fast traversing** then visits the remaining landmarks in the
        neighbourhood-sorted order (Algorithm 1), ``traverse_iters``
        iterations each per cycle ("we do not train an objective until
        convergence but only for a few steps", §4.2).  Every visit
        trains the landmark *jointly with all bootstrap anchors*: the
        landmark grid is dominated by latency/loss-leaning objectives
        whose individually-optimal policies are conservative, and
        visiting them alone drags the shared trunk toward an idle
        policy for every objective (the multi-objective analogue of
        catastrophic forgetting the paper counters with replay).
        """
        start = time.perf_counter()
        grid = simplex_grid(step_for_omega(omega))
        order = neighborhood_sort(grid, bootstraps)
        anchors = [np.asarray(b, dtype=np.float64) for b in bootstraps]

        self.train_objectives_jointly(anchors, bootstrap_iters, phase="bootstrap")

        bootstrap_set = {tuple(np.round(a, 6)) for a in anchors}
        for _ in range(cycles):
            for idx in order:
                w = grid[idx]
                if tuple(np.round(w, 6)) in bootstrap_set:
                    continue
                self.train_objectives_jointly([w, *anchors], traverse_iters,
                                              phase="traverse")

        return OfflineResult(
            agent=self.agent, landmarks=grid, traversal=order, log=list(self.log),
            wall_time=time.perf_counter() - start, total_iterations=self._iteration)

    def train_individual_style(self, omega: int = 36, iters_per_objective: int = 30,
                               bootstraps=BOOTSTRAP_OBJECTIVES) -> OfflineResult:
        """Ablation: every landmark trained independently, no transfer.

        The model is still shared (so the comparison isolates the
        *schedule*, not the architecture), but each objective receives a
        full ``iters_per_objective`` budget with no neighbourhood
        ordering -- the "Individual Training" bar of Fig. 19.
        """
        start = time.perf_counter()
        grid = simplex_grid(step_for_omega(omega))
        for w in grid:
            self.train_objective(w, iters_per_objective, phase="individual")
        return OfflineResult(
            agent=self.agent, landmarks=grid, traversal=list(range(len(grid))),
            log=list(self.log), wall_time=time.perf_counter() - start,
            total_iterations=self._iteration)


def train_single_objective(spec: EnvSpec, weights, iterations: int,
                           config: TrainingConfig = DEFAULT_TRAINING,
                           seed: int = 0, collector=None,
                           eval_every: int = 0) -> tuple[MoccAgent, list[float], list[tuple[int, float]]]:
    """Train a *single-objective* agent (no preference sub-network).

    This is the Aurora training procedure (Fig. 2a): the weight vector
    parameterises only the environment's reward.  Returns the agent,
    the per-iteration mean episode rewards, and (optionally) sparser
    deterministic evaluation marks every ``eval_every`` iterations.
    """
    weights = np.asarray(weights, dtype=np.float64)
    agent = MoccAgent(config, weight_dim=0, seed=seed)
    trainer = PPOTrainer(agent.model, PPOConfig.from_training_config(config),
                         rng=np.random.default_rng(seed + 1))
    collector = collector or SerialCollector(spec)
    rng = np.random.default_rng(seed + 2)
    eval_env = spec.build(seed_offset=99_991)

    trace: list[float] = []
    marks: list[tuple[int, float]] = []
    for it in range(iterations):
        buffers, boots, mean_reward = collector.collect(
            agent.model, weights, config.steps_per_iteration, rng)
        trainer.update(buffers, boots)
        trace.append(mean_reward)
        if eval_every and (it % eval_every == 0 or it == iterations - 1):
            marks.append((it, evaluate_policy(eval_env, agent.model, weights, rng)))
    return agent, trace, marks


def train_individual(spec: EnvSpec, objectives, iterations: int,
                     config: TrainingConfig = DEFAULT_TRAINING,
                     seed: int = 0) -> dict[tuple, MoccAgent]:
    """One independent single-objective model per objective.

    Used for the "enhanced Aurora" of Fig. 6 (10 pre-trained models)
    and the individual-training wall-clock baseline of Fig. 19.
    """
    models: dict[tuple, MoccAgent] = {}
    for i, w in enumerate(np.atleast_2d(np.asarray(objectives, dtype=np.float64))):
        agent, _, _ = train_single_objective(spec, w, iterations, config, seed=seed + i)
        models[tuple(np.round(w, 6))] = agent
    return models
