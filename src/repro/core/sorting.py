"""Neighbourhood-based objective sorting (Appendix B, Algorithm 1).

Fast-traversal training visits the landmark objectives in an order that
keeps consecutive objectives *close* in preference space, so transfer
from the previous objective's policy is effective.  The paper builds an
undirected graph over the weight-simplex grid:

* vertices are the landmark weight vectors;
* two vectors are **neighbours** when they differ in at most two
  dimensions and each difference is within one grid step (so, on the
  integer grid, one unit moves from one coordinate to another);
* all edges have weight 1.

Algorithm 1 then interleaves Dijkstra expansions from each bootstrapped
objective, appending the nearest unvisited vertex each time and rotating
between bootstrap sources every ``ceil(|V| / |O|)`` visits, producing
the cyclic traversal of Fig. 4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.weights import simplex_grid

__all__ = ["objective_graph", "neighborhood_sort", "bootstrap_indices", "traversal_order"]


def _as_integer_grid(grid: np.ndarray) -> tuple[np.ndarray, int]:
    """Recover the integer lattice (i, j, l) and step denominator k."""
    k = int(round(1.0 / np.min(grid[grid > 0])))
    ints = np.rint(grid * k).astype(int)
    if not np.allclose(ints / k, grid, atol=1e-9):
        raise ValueError("grid points are not on a regular simplex lattice")
    return ints, k


def objective_graph(grid: np.ndarray) -> list[list[int]]:
    """Adjacency lists for the neighbourhood graph over ``grid``.

    Two grid points are adjacent iff they differ in at most two
    coordinates and every coordinate differs by at most one step
    (Appendix B's definition; e.g. at step 0.1, <0.2,0.4,0.4> and
    <0.2,0.5,0.3> are neighbours but <0.2,0.4,0.4> and <0.1,0.3,0.6>
    are not).
    """
    ints, _ = _as_integer_grid(grid)
    index = {tuple(p): i for i, p in enumerate(ints)}
    adjacency: list[list[int]] = [[] for _ in range(len(ints))]
    # All moves that change exactly two coordinates by +-1 and conserve
    # the sum: transfer one unit between a pair of coordinates.
    moves = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]
    for i, p in enumerate(ints):
        for src, dst in moves:
            q = list(p)
            q[src] -= 1
            q[dst] += 1
            j = index.get(tuple(q))
            if j is not None and j > i:
                adjacency[i].append(j)
                adjacency[j].append(i)
    return adjacency


def bootstrap_indices(grid: np.ndarray, bootstraps) -> list[int]:
    """Indices in ``grid`` of the bootstrap objectives (nearest match)."""
    out = []
    for b in bootstraps:
        b = np.asarray(b, dtype=np.float64)
        out.append(int(np.argmin(np.sum((grid - b) ** 2, axis=1))))
    return out


def _bfs_distances(adjacency: list[list[int]], source: int) -> np.ndarray:
    """Unit-weight Dijkstra == breadth-first distances."""
    n = len(adjacency)
    dist = np.full(n, np.inf)
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if dist[v] == np.inf:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def neighborhood_sort(grid: np.ndarray, bootstraps) -> list[int]:
    """Algorithm 1: the training order over ``grid``.

    Returns a permutation of ``range(len(grid))`` beginning with the
    bootstrap objectives' region and expanding outward, rotating
    between bootstrap sources so improvement stays balanced.
    """
    n = len(grid)
    adjacency = objective_graph(grid)
    sources = bootstrap_indices(grid, bootstraps)
    dist = [_bfs_distances(adjacency, s) for s in sources]

    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    per_source = math.ceil(n / len(sources))

    source_cycle = 0
    while len(order) < n:
        i = source_cycle % len(sources)
        source_cycle += 1
        budget = per_source
        s = sources[i]
        if not visited[s]:
            order.append(s)
            visited[s] = True
            budget -= 1
        while budget > 0 and len(order) < n:
            # Nearest unvisited vertex to this bootstrap source;
            # unreachable vertices (inf) are taken last, by index.
            candidates = np.where(~visited)[0]
            if len(candidates) == 0:
                break
            u = int(candidates[np.argmin(dist[i][candidates])])
            order.append(u)
            visited[u] = True
            budget -= 1
    return order


def traversal_order(step_denominator: int, bootstraps) -> np.ndarray:
    """Convenience: the sorted landmark list itself (shape ``(omega, 3)``)."""
    grid = simplex_grid(step_denominator)
    order = neighborhood_sort(grid, bootstraps)
    return grid[order]
