"""The dynamic reward function (Eq. 2) and online estimators.

    r_t = w_thr * O_thr + w_lat * O_lat + w_loss * O_loss

with the three performance measures normalised to [0, 1]:

* ``O_thr  = measured throughput / link capacity``
* ``O_lat  = base link latency / measured latency``
* ``O_loss = 1 - lost packets / total packets``

In simulation the capacity and base latency are known; online, the
paper estimates them from the *measured maximum throughput* and
*minimum delay* (§4.1) -- :class:`OnlineEstimator` implements exactly
that, with an exponential forgetting option so capacity changes are
eventually tracked.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.env import RewardComponents

__all__ = ["dynamic_reward", "components_from_measurements", "OnlineEstimator"]


def dynamic_reward(components: RewardComponents, weights) -> float:
    """Eq. 2: scalarise reward components with an application weight."""
    return components.weighted(weights)


def components_from_measurements(throughput: float, latency: float, loss_rate: float,
                                 capacity: float, base_latency: float) -> RewardComponents:
    """Build reward components from raw measurements.

    ``throughput``/``capacity`` may be in any common unit; ``latency``
    and ``base_latency`` likewise.  Values are clipped into [0, 1].
    """
    o_thr = min(throughput / capacity, 1.0) if capacity > 0 else 0.0
    o_lat = min(base_latency / latency, 1.0) if latency > 0 else 0.0
    o_loss = 1.0 - float(np.clip(loss_rate, 0.0, 1.0))
    return RewardComponents(o_thr=max(o_thr, 0.0), o_lat=max(o_lat, 0.0), o_loss=o_loss)


class OnlineEstimator:
    """Running estimates of link capacity and base latency (§4.1).

    The capacity estimate is the maximum throughput observed; the base
    latency is the minimum delay observed.  A ``decay`` slightly relaxes
    both each update so the estimator eventually adapts when the path
    changes (set ``decay=0`` for the paper's pure max/min).
    """

    def __init__(self, decay: float = 0.0):
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.decay = decay
        self.capacity: float | None = None
        self.base_latency: float | None = None

    def update(self, throughput: float, latency: float | None) -> None:
        """Fold one interval's measurements into the estimates."""
        if throughput > 0:
            if self.capacity is None:
                self.capacity = throughput
            else:
                if self.decay:
                    self.capacity *= (1.0 - self.decay)
                self.capacity = max(self.capacity, throughput)
        if latency is not None and latency > 0:
            if self.base_latency is None:
                self.base_latency = latency
            else:
                if self.decay:
                    self.base_latency *= (1.0 + self.decay)
                self.base_latency = min(self.base_latency, latency)

    def components(self, throughput: float, latency: float | None,
                   loss_rate: float) -> RewardComponents:
        """Reward components using the current estimates."""
        self.update(throughput, latency)
        if self.capacity is None or self.base_latency is None or latency is None:
            return RewardComponents(0.0, 0.0, 1.0 - float(np.clip(loss_rate, 0, 1)))
        return components_from_measurements(
            throughput, latency, loss_rate, self.capacity, self.base_latency)
