"""MOCC: the paper's primary contribution.

* :mod:`repro.core.weights` -- application requirement vectors and the
  landmark-objective simplex grids (§4.1, §4.2).
* :mod:`repro.core.objectives` -- the dynamic reward function (Eq. 2)
  and the online capacity/base-latency estimators.
* :mod:`repro.core.sorting` -- the neighbourhood-based objective sorting
  algorithm (Appendix B, Algorithm 1).
* :mod:`repro.core.agent` -- the preference-conditioned MOCC agent and
  its rate controller for the simulator.
* :mod:`repro.core.offline` -- two-phase offline training (§4.2).
* :mod:`repro.core.online` -- online adaptation with requirement replay
  (§4.3).
* :mod:`repro.core.library` -- the deployable library API (§5):
  ``register`` / ``report_status`` / ``get_sending_rate``.
"""

from repro.core.weights import (
    BALANCE_WEIGHTS,
    LATENCY_WEIGHTS,
    THROUGHPUT_WEIGHTS,
    omega_for_step,
    project_to_simplex,
    sample_weight,
    simplex_grid,
    validate_weights,
)
from repro.core.objectives import OnlineEstimator, dynamic_reward
from repro.core.sorting import neighborhood_sort, objective_graph
from repro.core.agent import MoccAgent, MoccController
from repro.core.offline import OfflineTrainer, OfflineResult
from repro.core.online import OnlineAdapter, RequirementReplay, AdaptationTrace
from repro.core.library import MOCC, NetworkStatus

__all__ = [
    "THROUGHPUT_WEIGHTS",
    "LATENCY_WEIGHTS",
    "BALANCE_WEIGHTS",
    "validate_weights",
    "simplex_grid",
    "omega_for_step",
    "sample_weight",
    "project_to_simplex",
    "dynamic_reward",
    "OnlineEstimator",
    "objective_graph",
    "neighborhood_sort",
    "MoccAgent",
    "MoccController",
    "OfflineTrainer",
    "OfflineResult",
    "OnlineAdapter",
    "RequirementReplay",
    "AdaptationTrace",
    "MOCC",
    "NetworkStatus",
]
