"""Copa (Arun & Balakrishnan 2018) -- practical delay-based control.

Copa steers the congestion window so the sending rate tracks the target

    lambda* = 1 / (delta * d_q)

where ``d_q`` is the measured queueing delay and ``delta`` trades
throughput for delay (default 0.5, i.e. ~2 packets of standing queue at
equilibrium).  The implementation follows the paper's per-ack update:

* ``srtt_standing`` is the minimum RTT over a sliding window of the
  last ``srtt / 2`` seconds (filters ack jitter without forgetting the
  standing queue);
* per ack, the window moves by ``v / (delta * cwnd)`` toward the
  target rate ``cwnd / srtt_standing``;
* the velocity ``v`` doubles once per RTT while the direction is
  unchanged and resets to 1 on reversal -- this is what gives Copa fast
  convergence with small steady-state oscillations;
* slow start doubles the window each RTT until the rate first exceeds
  the target.

Copa is *window-based*: ack-clocking bounds the overshoot while the
(RTT-delayed) delay signal catches up.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["Copa"]


class Copa(Controller):
    """Copa congestion-window control (per-ack, faithful to the paper)."""

    kind = "window"
    name = "Copa"

    def __init__(self, delta: float = 0.5, initial_cwnd: float = 10.0,
                 min_cwnd: float = 2.0, max_velocity: float = 16.0):
        self.delta = delta
        self._cwnd = float(initial_cwnd)
        self.min_cwnd = float(min_cwnd)
        self.max_velocity = max_velocity
        self._velocity = 1.0
        self._direction = 0
        self._last_double = 0.0
        self.slow_start = True
        #: Monotonic min-deque over the srtt/2 sliding window: rtts
        #: strictly increase left to right, so ``srtt_standing`` reads
        #: the front instead of scanning every in-window ack (the scan
        #: was O(acks-per-srtt) *per ack* -- quadratic in rate).  The
        #: windowed minimum it yields is exactly the scan's value; see
        #: ``on_ack`` for the dominated-sample argument.
        self._rtt_window: deque[tuple[float, float]] = deque()
        self._last_ss_double = 0.0

    def cwnd(self, now: float) -> float:
        return self._cwnd

    # --- measurement -------------------------------------------------------

    def _srtt_standing(self, flow: Flow, now: float) -> float | None:
        """Min RTT over the last srtt/2 seconds of samples."""
        srtt = flow.srtt
        if srtt is None:
            return None
        horizon = now - srtt / 2.0
        window = self._rtt_window
        while window and window[0][0] < horizon:
            window.popleft()
        if not window:
            return srtt
        return window[0][1]

    # --- per-ack control law ---------------------------------------------------

    def on_ack(self, flow: Flow, packet: Packet, now: float) -> None:
        rtt = now - packet.send_time
        # Monotonic-deque append: a sample that is older and no smaller
        # than the new rtt can never again be the window minimum (the
        # new sample outlives it at a smaller-or-equal value), so it is
        # dropped now instead of rescanned per ack.  The newest sample
        # always survives, keeping window-emptiness -- and therefore
        # the ``srtt`` fallback -- identical to the full-window deque.
        window = self._rtt_window
        while window and window[-1][1] >= rtt:
            window.pop()
        window.append((now, rtt))
        srtt = flow.srtt
        min_rtt = flow.min_rtt_seen
        if srtt is None or min_rtt is None:
            return
        standing = self._srtt_standing(flow, now)
        if standing is None:
            return

        queueing = max(standing - min_rtt, 0.0)
        if queueing < 1e-6:
            target_rate = float("inf")
        else:
            target_rate = 1.0 / (self.delta * queueing)
        current_rate = self._cwnd / standing

        if self.slow_start:
            # Exit as soon as a standing queue appears (before the rate
            # overshoots past the target and dumps a buffer of packets).
            if target_rate <= current_rate or queueing > 0.1 * min_rtt:
                self.slow_start = False
            elif now - self._last_ss_double >= srtt:
                self._cwnd *= 2.0
                self._last_ss_double = now
            if self.slow_start:
                return

        direction = 1 if target_rate > current_rate else -1
        if direction != self._direction:
            self._velocity = 1.0
            self._direction = direction
            self._last_double = now
        elif now - self._last_double >= srtt:
            self._velocity = min(self._velocity * 2.0, self.max_velocity)
            self._last_double = now

        # v/(delta*cwnd) per ack, but never more than one packet: the
        # raw step diverges at small cwnd and the measurement lag (~1
        # RTT) would turn that into violent cwnd oscillation.
        step = min(self._velocity / (self.delta * max(self._cwnd, 1.0)), 1.0)
        self._cwnd = max(self._cwnd + direction * step, self.min_cwnd)

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        # Copa's default mode is delay-driven, but buffer losses mean
        # the queue estimate lagged badly; apply a gentle brake (the
        # paper's TCP-competitive mode reacts to loss similarly).
        self.slow_start = False
        self._cwnd = max(self._cwnd * 0.9, self.min_cwnd)

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        """No per-interval logic; Copa is fully ack-driven."""
