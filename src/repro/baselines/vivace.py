"""PCC Vivace (Dong et al. 2018) -- gradient-ascent rate control.

Vivace replaces Allegro's direction test with online (no-regret)
gradient ascent on a smoother utility

    u(x) = x^0.9 - b * x * (dRTT/dt)+ - c * x * L

Each decision round tests ``rate*(1+eps)`` and ``rate*(1-eps)`` for two
monitor intervals each (mirrored, like Allegro's plan), estimates the
utility gradient from the per-trial results, and steps the rate by
``theta * gradient`` with a confidence amplifier that grows while the
gradient sign persists and a bound on per-decision change.

Like :class:`~repro.baselines.allegro.PCCAllegro`, trials are
attributed by send time and decisions are sequential (the sender holds
the base rate until a round's results are in).  Rates inside the
utility are expressed in Mbps -- the units of the Vivace paper -- so
the published coefficients ``b`` and ``c`` keep their intended balance.
"""

from __future__ import annotations

from repro.baselines._pcc_common import Trial, TrialTracker
from repro.baselines.base import vivace_utility
from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats
from repro.netsim.traces import pps_to_mbps

__all__ = ["PCCVivace"]


class PCCVivace(Controller):
    """PCC Vivace rate control via sequential utility-gradient rounds."""

    kind = "rate"
    name = "PCC Vivace"

    EPSILON = 0.05
    PLAN = (+1, -1, -1, +1)

    def __init__(self, initial_rate: float = 20.0, min_rate: float = 1.0,
                 theta: float = 1.0, max_change_fraction: float = 0.25,
                 packet_bytes: int = 1500):
        self.base_rate = float(initial_rate)
        self.min_rate = min_rate
        self.theta = theta
        self.max_change_fraction = max_change_fraction
        self.packet_bytes = packet_bytes

        self._tracker = TrialTracker()
        self._position = 0
        self._round = 0
        self._collected: list[Trial] = []
        self._confidence = 1.0
        self._last_sign = 0
        self._rtt_gradient = 0.0

    # --- datapath events --------------------------------------------------

    def on_flow_start(self, flow: Flow, now: float) -> None:
        self._begin_interval(now)

    def on_ack(self, flow: Flow, packet: Packet, now: float) -> None:
        self._tracker.on_ack(packet, now)

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        self._tracker.on_loss(packet)

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        self._rtt_gradient = stats.latency_gradient
        grace = 1.5 * (flow.srtt if flow.srtt is not None else stats.base_rtt)
        for trial in self._tracker.pop_resolved(now, grace):
            if trial.round_id == self._round and trial.sign != 0:
                self._collected.append(trial)

        if self._position < len(self.PLAN):
            self._position += 1
        if self._position >= len(self.PLAN) and len(self._collected) >= len(self.PLAN):
            self._decide(self._collected)
            self._collected = []
            self._round += 1
            self._position = 0
        self._begin_interval(now)

    # --- decision logic ------------------------------------------------------

    def _current_sign(self) -> int:
        if self._position < len(self.PLAN):
            return self.PLAN[self._position]
        return 0

    def _begin_interval(self, now: float) -> None:
        sign = self._current_sign()
        rate = max(self.base_rate * (1.0 + sign * self.EPSILON), self.min_rate)
        self._tracker.begin(sign, rate, now, self._round)

    def _utility(self, trial: Trial) -> float:
        return vivace_utility(pps_to_mbps(trial.rate, self.packet_bytes),
                              self._rtt_gradient, trial.loss_rate)

    def _decide(self, trials: list[Trial]) -> None:
        up = [self._utility(t) for t in trials if t.sign > 0]
        down = [self._utility(t) for t in trials if t.sign < 0]
        if not up or not down:
            return
        rate_mbps = pps_to_mbps(self.base_rate, self.packet_bytes)
        delta = 2.0 * self.EPSILON * rate_mbps
        if delta <= 0:
            return
        gradient = (sum(up) / len(up) - sum(down) / len(down)) / delta

        sign = 1 if gradient > 0 else (-1 if gradient < 0 else 0)
        if sign != 0 and sign == self._last_sign:
            self._confidence = min(self._confidence * 2.0, 1024.0)
        else:
            self._confidence = 1.0
        self._last_sign = sign

        change_mbps = self.theta * self._confidence * gradient
        change_pps = change_mbps * 1e6 / (self.packet_bytes * 8)
        bound = self.max_change_fraction * self.base_rate
        change_pps = max(min(change_pps, bound), -bound)
        self.base_rate = max(self.base_rate + change_pps, self.min_rate)

    # --- pacing ------------------------------------------------------------------

    def pacing_rate(self, now: float) -> float:
        sign = self._current_sign()
        return max(self.base_rate * (1.0 + sign * self.EPSILON), self.min_rate)
