"""TCP CUBIC (Ha, Rhee, Xu 2008) -- loss-based window control.

The congestion window grows along a cubic curve anchored at the window
size just before the last loss (``w_max``): concave while approaching
``w_max``, then convex while probing beyond it.  On loss the window is
reduced multiplicatively by ``beta`` (0.7) and a new epoch starts.  The
TCP-friendliness region and fast-convergence heuristic of the RFC are
included.

This is the paper's representative "loss-based heuristic": it fills the
bottleneck buffer, so it shows high utilization on deep buffers but
also high queueing delay (Fig. 5) -- exactly the behaviour the
reproduction should preserve.
"""

from __future__ import annotations

from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow

__all__ = ["Cubic"]


class Cubic(Controller):
    """TCP CUBIC congestion window control."""

    kind = "window"
    name = "CUBIC"

    #: Cubic scaling constant (packets/second^3), per the RFC.
    C = 0.4
    #: Multiplicative decrease factor.
    BETA = 0.7
    #: Reno AIMD slope of the TCP-friendly region,
    #: ``3 * (1 - BETA) / (1 + BETA)`` -- precomputed because on_ack
    #: runs once per delivered packet (same float as the inline
    #: expression it replaces).
    RENO_SLOPE = 3.0 * (1.0 - BETA) / (1.0 + BETA)

    def __init__(self, initial_cwnd: float = 10.0, min_cwnd: float = 2.0,
                 fast_convergence: bool = True):
        self._cwnd = float(initial_cwnd)
        self.min_cwnd = float(min_cwnd)
        self.fast_convergence = fast_convergence
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self.epoch_start: float | None = None
        self.k = 0.0
        self.origin_cwnd = 0.0
        self._last_reduction = -float("inf")

    # --- window ---------------------------------------------------------

    def cwnd(self, now: float) -> float:
        return self._cwnd

    # --- events -----------------------------------------------------------

    def on_ack(self, flow: Flow, packet: Packet, now: float) -> None:
        if self._cwnd < self.ssthresh:
            self._cwnd += 1.0  # slow start
            return
        if self.epoch_start is None:
            self._begin_epoch(now)
        t = now - self.epoch_start
        rtt = flow.srtt or 0.0
        target = self.origin_cwnd + self.C * (t + rtt - self.k) ** 3
        # TCP-friendly region: emulate Reno's AIMD growth.
        reno = (self.w_max * self.BETA
                + self.RENO_SLOPE * (t / (rtt if rtt > 1e-3 else 1e-3)))
        if reno > target:
            target = reno
        cwnd = self._cwnd
        if target > cwnd:
            self._cwnd = cwnd + (target - cwnd) / cwnd
        else:
            self._cwnd = cwnd + 0.01 / cwnd  # minimal probing

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        rtt = flow.srtt or 0.05
        if now - self._last_reduction < rtt:
            return  # at most one reduction per round trip
        self._last_reduction = now
        if self.fast_convergence and self._cwnd < self.w_max:
            self.w_max = self._cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = self._cwnd
        self._cwnd = max(self._cwnd * self.BETA, self.min_cwnd)
        self.ssthresh = self._cwnd
        self.epoch_start = None

    # --- internals -------------------------------------------------------------

    def _begin_epoch(self, now: float) -> None:
        self.epoch_start = now
        self.origin_cwnd = self._cwnd
        if self.w_max > self._cwnd:
            self.k = ((self.w_max - self._cwnd) / self.C) ** (1.0 / 3.0)
        else:
            self.k = 0.0
