"""Shared helpers for the baseline schemes.

Includes the published utility/reward functions of Table 1 -- the
objectives each learning-based scheme optimises:

========  =====================================================
Scheme    Objective (Table 1)
========  =====================================================
Allegro   ``T - delta * RTT``  (the PCC micro-experiment utility;
          the original sigmoid-gated form is also provided)
Vivace    ``T^t - b * d(RTT)/dt - c * L`` (rate-weighted)
Aurora    ``alpha*T - beta*RTT - gamma*L``
Orca      ``(T - eps*L) / RTT``, normalised by ``T_max/RTT_min``
========  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.netsim.sender import Controller

__all__ = [
    "aurora_utility",
    "vivace_utility",
    "allegro_utility",
    "allegro_sigmoid_utility",
    "orca_utility",
    "SCHEME_REGISTRY",
    "make_controller",
]


def aurora_utility(throughput_pps: float, latency_s: float, loss_rate: float,
                   alpha: float = 10.0, beta: float = 1000.0,
                   gamma: float = 2000.0) -> float:
    """Aurora's linear reward (Table 1): ``alpha*T - beta*RTT - gamma*L``.

    Units follow the Aurora paper: throughput in packets/second,
    latency in seconds, loss as a fraction.
    """
    return alpha * throughput_pps - beta * latency_s - gamma * loss_rate


def vivace_utility(rate_pps: float, rtt_gradient: float, loss_rate: float,
                   exponent: float = 0.9, b: float = 900.0,
                   c: float = 11.35) -> float:
    """PCC Vivace's utility (Table 1): ``x^t - b*x*(dRTT/dt)+ - c*x*L``.

    The latency-gradient term only penalises *increasing* RTT, as in
    the Vivace paper.
    """
    rate = max(rate_pps, 0.0)
    gradient_penalty = max(rtt_gradient, 0.0)
    return rate ** exponent - b * rate * gradient_penalty - c * rate * loss_rate


def allegro_utility(throughput_pps: float, rtt_s: float,
                    delta: float = 100.0) -> float:
    """The MOCC paper's Table-1 form for Allegro: ``T - delta*RTT``."""
    return throughput_pps - delta * rtt_s


def allegro_sigmoid_utility(rate_pps: float, loss_rate: float,
                            alpha: float = 100.0,
                            threshold: float = 0.05) -> float:
    """PCC Allegro's original sigmoid-gated utility.

    ``u = T * S(L - threshold) - x * L`` where ``T = x * (1 - L)`` and
    ``S`` is a steep sigmoid cutting throughput credit beyond ~5 % loss.
    """
    x = max(rate_pps, 0.0)
    goodput = x * (1.0 - loss_rate)
    sigmoid = 1.0 / (1.0 + np.exp(np.clip(alpha * (loss_rate - threshold), -500, 500)))
    return goodput * sigmoid - x * loss_rate


def orca_utility(throughput_pps: float, rtt_s: float, loss_rate: float,
                 max_throughput_pps: float, min_rtt_s: float,
                 eps: float = 0.05) -> float:
    """Orca's normalised reward (Table 1).

    ``((T - eps*L*T) / RTT) / (T_max / RTT_min)`` -- a power-style
    metric normalised by the best observed operating point.
    """
    if rtt_s <= 0 or max_throughput_pps <= 0 or min_rtt_s <= 0:
        return 0.0
    power = (throughput_pps - eps * loss_rate * throughput_pps) / rtt_s
    return power / (max_throughput_pps / min_rtt_s)


def make_controller(scheme: str, **kwargs) -> Controller:
    """Instantiate a baseline by name (see :data:`SCHEME_REGISTRY`)."""
    try:
        factory = SCHEME_REGISTRY[scheme.lower()]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}; known: {sorted(SCHEME_REGISTRY)}")
    return factory(**kwargs)


def _registry() -> dict:
    # Imported lazily to avoid import cycles at package load.
    from repro.baselines.cubic import Cubic
    from repro.baselines.vegas import Vegas
    from repro.baselines.bbr import BBR
    from repro.baselines.copa import Copa
    from repro.baselines.allegro import PCCAllegro
    from repro.baselines.vivace import PCCVivace

    return {
        "cubic": Cubic,
        "vegas": Vegas,
        "bbr": BBR,
        "copa": Copa,
        "allegro": PCCAllegro,
        "vivace": PCCVivace,
    }


class _LazyRegistry(dict):
    """Materialises the scheme registry on first access."""

    def _ensure(self):
        if super().__len__() == 0:
            super().update(_registry())

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self):
        self._ensure()
        return super().__len__()

    def keys(self):
        self._ensure()
        return super().keys()


#: Name -> controller class for the heuristic/online-learning schemes.
SCHEME_REGISTRY = _LazyRegistry()
