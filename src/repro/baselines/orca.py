"""Simplified Orca (Abbasloo et al. 2020) -- "classic meets modern".

Orca layers a deep-RL agent *on top of* classic TCP: CUBIC runs in the
datapath at packet granularity while the RL agent, consulted at a much
coarser cadence, scales the congestion window up or down around
CUBIC's decision.  This two-level design is why Orca's CPU overhead is
low (the model runs rarely -- Fig. 17) and why its behaviour partially
tracks CUBIC's (e.g. under random loss, Fig. 5c).

This reproduction keeps exactly that structure: a :class:`Cubic`
substrate plus a multiplicative cwnd scale driven by a single-objective
policy every ``rl_interval`` monitor intervals.  Without a model the
controller degrades to pure CUBIC (scale pinned at 1), which is useful
for tests.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cubic import Cubic
from repro.core.agent import MoccAgent
from repro.netsim.env import apply_action
from repro.netsim.history import StatHistory
from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["Orca"]


class Orca(Controller):
    """CUBIC substrate supervised by an RL cwnd multiplier."""

    kind = "window"
    name = "Orca"

    #: Bounds on the RL multiplier, keeping the heuristic in charge.
    MIN_SCALE = 0.25
    MAX_SCALE = 4.0

    def __init__(self, agent: MoccAgent | None = None, rl_interval: int = 4,
                 initial_cwnd: float = 10.0, action_scale: float = 0.2,
                 deterministic: bool = True, seed: int = 0):
        if agent is not None and agent.weight_dim != 0:
            raise ValueError("Orca uses a single-objective model (weight_dim=0)")
        self.cubic = Cubic(initial_cwnd=initial_cwnd)
        self.agent = agent
        self.rl_interval = max(int(rl_interval), 1)
        self.action_scale = action_scale
        self.deterministic = deterministic
        self.rng = np.random.default_rng(seed)
        self.scale = 1.0
        self.history = StatHistory(agent.config.history_length if agent else 10)
        self._mi_count = 0
        #: Policy inference counter (overhead accounting, Fig. 17).
        self.inference_count = 0

    def cwnd(self, now: float) -> float:
        return max(self.cubic.cwnd(now) * self.scale, 1.0)

    # --- delegate the datapath events to CUBIC -----------------------------

    def on_flow_start(self, flow: Flow, now: float) -> None:
        self.history.reset()

    def on_ack(self, flow: Flow, packet: Packet, now: float) -> None:
        self.cubic.on_ack(flow, packet, now)

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        self.cubic.on_loss(flow, packet, now)

    # --- the coarse RL supervision loop ----------------------------------------

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        self.history.push(flow, stats)
        self._mi_count += 1
        if self.agent is None or self._mi_count % self.rl_interval != 0:
            return
        action, _, _ = self.agent.model.act(self.history.vector(), None, self.rng,
                                            deterministic=self.deterministic)
        self.inference_count += 1
        self.scale = float(np.clip(
            apply_action(self.scale, float(action[0]), self.action_scale),
            self.MIN_SCALE, self.MAX_SCALE))
