"""PCC Allegro (Dong et al. 2015) -- micro-experiment rate control.

Allegro treats the network as a black box and runs randomised
controlled trials: each decision round sends at ``rate*(1+eps)`` for
two monitor intervals and ``rate*(1-eps)`` for two (interleaved), then
moves the base rate in whichever direction yielded higher empirical
utility.  Repeated moves in the same direction grow the step; a
reversal resets it.

Two fidelity points matter (both are how the real PCC sender works):

* results are attributed to trials by *send time* (see
  :mod:`repro.baselines._pcc_common`) -- loss notices arrive ~1 RTT
  late, and observation-time accounting would charge an up-trial's
  losses to the following down-trial, inverting the measured gradient;
* decisions are *sequential*: after the four trial intervals the sender
  stays at the base rate until the round's results are in, then decides
  and starts the next round.  Pipelining rounds lets several decisions
  fire on stale loss data and produces rate-crash cascades.

Utility is the original paper's sigmoid-gated form; the MOCC paper's
Table-1 summary (``T - delta*RTT``) is exposed separately as
:func:`repro.baselines.base.allegro_utility`.
"""

from __future__ import annotations

from repro.baselines._pcc_common import Trial, TrialTracker
from repro.baselines.base import allegro_sigmoid_utility
from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["PCCAllegro"]


class PCCAllegro(Controller):
    """PCC Allegro rate control via sequential 4-MI micro-experiments."""

    kind = "rate"
    name = "PCC Allegro"

    #: Trial rate perturbation.
    EPSILON = 0.05
    #: Perturbation schedule within one decision round.
    PLAN = (+1, -1, -1, +1)

    def __init__(self, initial_rate: float = 20.0, min_rate: float = 1.0,
                 step_fraction: float = 0.05, max_step_multiplier: int = 4):
        self.base_rate = float(initial_rate)
        self.min_rate = min_rate
        self.step_fraction = step_fraction
        self.max_step_multiplier = max_step_multiplier

        self._tracker = TrialTracker()
        self._position = 0            # index into PLAN, or len(PLAN) = waiting
        self._round = 0
        self._collected: list[Trial] = []
        self._consecutive = 0
        self._last_direction = 0

    # --- datapath events --------------------------------------------------

    def on_flow_start(self, flow: Flow, now: float) -> None:
        self._begin_interval(now)

    def on_ack(self, flow: Flow, packet: Packet, now: float) -> None:
        self._tracker.on_ack(packet, now)

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        self._tracker.on_loss(packet)

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        grace = 1.5 * (flow.srtt if flow.srtt is not None else stats.base_rtt)
        for trial in self._tracker.pop_resolved(now, grace):
            if trial.round_id == self._round and trial.sign != 0:
                self._collected.append(trial)

        if self._position < len(self.PLAN):
            self._position += 1
        if self._position >= len(self.PLAN) and len(self._collected) >= len(self.PLAN):
            self._decide(self._collected)
            self._collected = []
            self._round += 1
            self._position = 0
        self._begin_interval(now)

    # --- decision logic ------------------------------------------------------

    def _current_sign(self) -> int:
        if self._position < len(self.PLAN):
            return self.PLAN[self._position]
        return 0  # waiting at the base rate for results

    def _begin_interval(self, now: float) -> None:
        sign = self._current_sign()
        rate = max(self.base_rate * (1.0 + sign * self.EPSILON), self.min_rate)
        self._tracker.begin(sign, rate, now, self._round)

    def _decide(self, trials: list[Trial]) -> None:
        up = [allegro_sigmoid_utility(t.rate, t.loss_rate) for t in trials if t.sign > 0]
        down = [allegro_sigmoid_utility(t.rate, t.loss_rate) for t in trials if t.sign < 0]
        if not up or not down:
            return
        up_mean = sum(up) / len(up)
        down_mean = sum(down) / len(down)
        if up_mean > down_mean:
            direction = +1
        elif down_mean > up_mean:
            direction = -1
        else:
            direction = 0

        if direction == 0:
            self._consecutive = 0
            self._last_direction = 0
            return
        if direction == self._last_direction:
            self._consecutive = min(self._consecutive + 1, self.max_step_multiplier)
        else:
            self._consecutive = 1
        self._last_direction = direction
        step = self.step_fraction * self._consecutive
        self.base_rate = max(self.base_rate * (1.0 + direction * step), self.min_rate)

    # --- pacing ------------------------------------------------------------------

    def pacing_rate(self, now: float) -> float:
        sign = self._current_sign()
        return max(self.base_rate * (1.0 + sign * self.EPSILON), self.min_rate)
