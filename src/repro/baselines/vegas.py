"""TCP Vegas (Brakmo & Peterson 1994) -- delay-based window control.

Vegas compares the *expected* throughput (``cwnd / base_rtt``) with the
*actual* throughput (``cwnd / rtt``) and interprets the difference --
the number of packets parked in the bottleneck queue -- as the
congestion signal.  The window is nudged to keep that backlog between
``alpha`` and ``beta`` packets, which keeps queues (and therefore
latency) very small at the cost of utilization when competing with
loss-based flows or over lossy links.
"""

from __future__ import annotations

from repro.netsim.packet import Packet
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["Vegas"]


class Vegas(Controller):
    """TCP Vegas congestion window control."""

    kind = "window"
    name = "Vegas"

    def __init__(self, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0, initial_cwnd: float = 10.0,
                 min_cwnd: float = 2.0):
        if beta < alpha:
            raise ValueError("need beta >= alpha")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._cwnd = float(initial_cwnd)
        self.min_cwnd = float(min_cwnd)
        self.slow_start = True

    def cwnd(self, now: float) -> float:
        return self._cwnd

    def _backlog(self, flow: Flow, rtt: float) -> float:
        """Estimated packets queued at the bottleneck (the diff)."""
        base = flow.min_rtt_seen
        if base is None or rtt <= 0:
            return 0.0
        expected = self._cwnd / base
        actual = self._cwnd / rtt
        return (expected - actual) * base

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        # Vegas updates once per RTT; the monitor interval approximates it.
        rtt = stats.mean_rtt if stats.mean_rtt is not None else flow.srtt
        if rtt is None:
            return
        diff = self._backlog(flow, rtt)
        if self.slow_start:
            if diff > self.gamma:
                self.slow_start = False
                self._cwnd = max(self._cwnd - diff, self.min_cwnd)
            else:
                self._cwnd += 1.0  # doubling every other RTT, approximated
            return
        if diff < self.alpha:
            self._cwnd += 1.0
        elif diff > self.beta:
            self._cwnd = max(self._cwnd - 1.0, self.min_cwnd)

    def on_loss(self, flow: Flow, packet: Packet, now: float) -> None:
        self.slow_start = False
        self._cwnd = max(self._cwnd / 2.0, self.min_cwnd)
