"""Shared micro-experiment accounting for the PCC family.

PCC's utility must be computed over the packets *sent during* each
trial interval: loss notifications arrive roughly one RTT after the
offending send, so attributing them to the interval in which they are
*observed* systematically charges an up-trial's losses to the following
down-trial and inverts the measured gradient.  The
:class:`TrialTracker` therefore matches every ack/loss back to the
trial whose time window contains the packet's send time, and only
releases a trial for utility evaluation once a grace period (~1 RTT)
has passed since the trial ended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.packet import Packet

__all__ = ["Trial", "TrialTracker"]


@dataclass
class Trial:
    """One monitor interval sent at a perturbed trial rate."""

    sign: int              # +1 / -1 perturbation direction (0 = neutral)
    rate: float            # the trial's sending rate (pps)
    start: float
    end: float = float("inf")
    acked: int = 0
    lost: int = 0
    rtt_sum: float = 0.0
    round_id: int = 0

    @property
    def loss_rate(self) -> float:
        total = self.acked + self.lost
        return self.lost / total if total else 0.0

    @property
    def mean_rtt(self) -> float | None:
        return self.rtt_sum / self.acked if self.acked else None

    def goodput(self) -> float:
        """Delivered-rate estimate: trial rate discounted by loss."""
        return self.rate * (1.0 - self.loss_rate)


class TrialTracker:
    """Send-time attribution of acks/losses to trial windows."""

    def __init__(self):
        self._open: list[Trial] = []

    def begin(self, sign: int, rate: float, now: float, round_id: int) -> Trial:
        """Close the running trial (if any) and start a new one."""
        if self._open and self._open[-1].end == float("inf"):
            self._open[-1].end = now
        trial = Trial(sign=sign, rate=rate, start=now, round_id=round_id)
        self._open.append(trial)
        return trial

    def _find(self, send_time: float) -> Trial | None:
        for trial in self._open:
            if trial.start <= send_time < trial.end:
                return trial
        return None

    def on_ack(self, packet: Packet, now: float) -> None:
        trial = self._find(packet.send_time)
        if trial is not None:
            trial.acked += 1
            trial.rtt_sum += now - packet.send_time

    def on_loss(self, packet: Packet) -> None:
        trial = self._find(packet.send_time)
        if trial is not None:
            trial.lost += 1

    def pop_resolved(self, now: float, grace: float) -> list[Trial]:
        """Remove and return trials whose results are complete.

        A trial is resolved once ``grace`` seconds (~1 RTT, covering the
        ack/loss notification delay) have passed since it ended.
        """
        resolved = [t for t in self._open if t.end + grace <= now]
        if resolved:
            self._open = [t for t in self._open if t.end + grace > now]
        return resolved
