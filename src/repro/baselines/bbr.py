"""BBR (Cardwell et al. 2016) -- model-based rate control, simplified.

BBR maintains an explicit model of the path: the bottleneck bandwidth
(windowed max of delivered rate) and the round-trip propagation time
(windowed min RTT).  The pacing rate is ``gain * btl_bw`` where the
gain follows the classic state machine:

* STARTUP: gain 2/ln2 (~2.89) doubling delivery each round until the
  bandwidth estimate stops growing (three rounds below +25 %);
* DRAIN: inverse gain to empty the queue the startup built;
* PROBE_BW: the steady-state 8-phase gain cycle
  ``[1.25, 0.75, 1, 1, 1, 1, 1, 1]``, advancing roughly once per RTT;
* PROBE_RTT: every 10 s the rate is cut for a couple of intervals so
  the min-RTT filter can refresh.

This reproduction drives the state machine from monitor-interval
statistics (the delivered throughput and RTT of each MI), which at MI
~= RTT matches BBR's per-round updates closely.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["BBR"]

STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class BBR(Controller):
    """Simplified BBR pacing-rate control."""

    kind = "rate"
    name = "BBR"

    def __init__(self, initial_rate: float = 20.0, bw_window: int = 10,
                 rtprop_window_s: float = 10.0, probe_rtt_interval_s: float = 10.0):
        self.rate = float(initial_rate)
        self._bw_samples: deque[float] = deque(maxlen=bw_window)
        #: Sliding-window-minimum structure for the rt_prop filter: a
        #: *monotonic deque* of ``(time, rtt)`` with rtts strictly
        #: increasing left to right.  Appending pops dominated samples
        #: (older AND no smaller -- they could never be the window min
        #: again), so the front IS the windowed minimum and every query
        #: is O(1) amortized.  The old full-scan ``min()`` over all
        #: in-window samples was the single hottest line of a BBR
        #: simulation (called per send via ``inflight_cap``); the value
        #: returned is exactly identical.
        self._rtt_samples: deque[tuple[float, float]] = deque()
        self.rtprop_window_s = rtprop_window_s
        self.probe_rtt_interval_s = probe_rtt_interval_s

        self.state = "STARTUP"
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._drain_rounds = 0
        self._cycle_index = 0
        self._last_probe_rtt = 0.0
        self._probe_rtt_until = -1.0

    # --- filters ----------------------------------------------------------

    @property
    def btl_bw(self) -> float:
        return max(self._bw_samples) if self._bw_samples else 0.0

    def _rt_prop(self, now: float) -> float | None:
        samples = self._rtt_samples
        horizon = now - self.rtprop_window_s
        while samples and samples[0][0] < horizon:
            samples.popleft()
        if not samples:
            return None
        return samples[0][1]

    # --- state machine ---------------------------------------------------------

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        if stats.acked > 0:
            self._bw_samples.append(stats.throughput_pps)
        if stats.min_rtt is not None:
            # Monotonic-deque append: drop samples that are both older
            # and >= the new rtt.  The newest sample always survives,
            # so the deque is empty exactly when the plain deque would
            # be (every sample aged out) and its front is exactly the
            # plain deque's windowed min -- the filter's behaviour is
            # bit-identical, just no longer O(window) per query.
            samples = self._rtt_samples
            rtt = stats.min_rtt
            while samples and samples[-1][1] >= rtt:
                samples.pop()
            samples.append((now, rtt))

        bw = self.btl_bw
        if bw <= 0:
            return

        if self.state == "STARTUP":
            if bw > self._full_bw * 1.25:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self.state = "DRAIN"
                self._drain_rounds = 0
            self.rate = STARTUP_GAIN * bw
        elif self.state == "DRAIN":
            self.rate = DRAIN_GAIN * bw
            self._drain_rounds += 1
            rt_prop = self._rt_prop(now)
            drained = (rt_prop is not None and stats.min_rtt is not None
                       and stats.min_rtt <= 1.25 * rt_prop)
            if drained or self._drain_rounds >= 8:
                self.state = "PROBE_BW"
                self._cycle_index = 0
                self._last_probe_rtt = now
        elif self.state == "PROBE_RTT":
            self.rate = 0.5 * bw
            if now >= self._probe_rtt_until:
                self.state = "PROBE_BW"
                self._cycle_index = 0
        else:  # PROBE_BW
            if now - self._last_probe_rtt >= self.probe_rtt_interval_s:
                self.state = "PROBE_RTT"
                self._probe_rtt_until = now + max(2 * stats.duration, 0.2)
                self._last_probe_rtt = now
                self.rate = 0.5 * bw
                return
            gain = PROBE_GAINS[self._cycle_index % len(PROBE_GAINS)]
            self._cycle_index += 1
            self.rate = gain * bw

    def pacing_rate(self, now: float) -> float:
        return max(self.rate, 1.0)

    def inflight_cap(self, now: float) -> float | None:
        """BBR's cwnd backstop: 2x the estimated BDP."""
        rt_prop = self._rt_prop(now)
        bw = self.btl_bw
        if rt_prop is None or bw <= 0:
            return None
        return max(2.0 * bw * rt_prop, 4.0)
