"""Aurora (Jay et al. 2019) -- single-objective deep-RL congestion control.

Aurora is the paper's closest prior work (Fig. 2a): the same PPO
machinery and monitor-interval state as MOCC, but with a *fixed* reward
and no preference sub-network, so one trained model optimises exactly
one objective.  "Aurora-throughput" and "Aurora-latency" in the
evaluation are two separately-trained instances.

Training lives in :func:`repro.core.offline.train_single_objective`;
this module provides the inference-time controller and convenience
constructors.
"""

from __future__ import annotations

import numpy as np

from repro.core.agent import MoccAgent, PolicyRateController
from repro.core.weights import LATENCY_WEIGHTS, THROUGHPUT_WEIGHTS

__all__ = ["AuroraController", "aurora_objective"]


def aurora_objective(flavor: str) -> np.ndarray:
    """The environment objective a given Aurora flavour is trained for."""
    if flavor == "throughput":
        return THROUGHPUT_WEIGHTS.copy()
    if flavor == "latency":
        return LATENCY_WEIGHTS.copy()
    raise ValueError(f"unknown Aurora flavour {flavor!r}")


class AuroraController(PolicyRateController):
    """Inference-time Aurora: a frozen single-objective policy."""

    name = "Aurora"

    def __init__(self, agent: MoccAgent, initial_rate: float = 100.0,
                 deterministic: bool = True, seed: int = 0,
                 flavor: str | None = None):
        if agent.weight_dim != 0:
            raise ValueError("Aurora uses a single-objective model (weight_dim=0)")
        super().__init__(agent.model, weights=None, initial_rate=initial_rate,
                         action_scale=agent.config.action_scale,
                         history_length=agent.config.history_length,
                         deterministic=deterministic, seed=seed)
        if flavor:
            self.name = f"Aurora-{flavor}"
