"""Baseline congestion-control algorithms the paper compares against.

Hand-crafted: TCP CUBIC, TCP Vegas, BBR, Copa.
Learning-based (non-RL): PCC Allegro, PCC Vivace.
Learning-based (RL): Aurora (single-objective PPO) and a simplified
Orca (CUBIC substrate supervised by an RL multiplier).

Each controller implements the :class:`repro.netsim.sender.Controller`
interface, so any scheme can drive any flow in any topology.
"""

from repro.baselines.base import (
    SCHEME_REGISTRY,
    allegro_utility,
    aurora_utility,
    make_controller,
    orca_utility,
    vivace_utility,
)
from repro.baselines.cubic import Cubic
from repro.baselines.vegas import Vegas
from repro.baselines.bbr import BBR
from repro.baselines.copa import Copa
from repro.baselines.allegro import PCCAllegro
from repro.baselines.vivace import PCCVivace
from repro.baselines.aurora import AuroraController
from repro.baselines.orca import Orca

__all__ = [
    "Cubic",
    "Vegas",
    "BBR",
    "Copa",
    "PCCAllegro",
    "PCCVivace",
    "AuroraController",
    "Orca",
    "aurora_utility",
    "vivace_utility",
    "allegro_utility",
    "orca_utility",
    "SCHEME_REGISTRY",
    "make_controller",
]
