"""Datapath shims: how the MOCC library is deployed (§5).

The paper integrates the MOCC library with two datapaths:

* **UDT** -- a user-space transport; the shim-helper interacts with the
  library at *every* monitor interval, so model inference runs in the
  per-interval data loop (high CPU, Fig. 17);
* **CCP** -- congestion control off the datapath; the kernel reports
  aggregated measurements at a coarser cadence and the library is
  consulted correspondingly less often (low CPU, Fig. 17).

Both shims wrap the same :class:`repro.core.library.MOCC` object,
demonstrating the "plug-and-play with any networking datapath" claim.
"""

from repro.datapath.udt import UdtShim
from repro.datapath.ccp import CcpShim

__all__ = ["UdtShim", "CcpShim"]
