"""User-space (UDT-style) datapath shim.

UDT is a user-space UDP transport; integrating MOCC with it puts the
library's control loop directly in the per-interval datapath: every
monitor interval the shim reports the latest status and immediately
asks for a new sending rate, so one model inference runs per interval
-- the reason user-space MOCC's CPU overhead matches Aurora's in
Fig. 17.
"""

from __future__ import annotations

from repro.core.library import MOCC, NetworkStatus
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["UdtShim"]


class UdtShim(Controller):
    """Per-interval MOCC control loop (user-space deployment)."""

    kind = "rate"
    name = "MOCC-UDT"

    def __init__(self, library: MOCC, weights):
        self.library = library
        self.library.register(weights)
        self.rate = library.rate

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        status = NetworkStatus(sent=stats.sent, acked=stats.acked, lost=stats.lost,
                               mean_rtt=stats.mean_rtt, duration=stats.duration)
        self.library.report_status(status)
        self.rate = self.library.get_sending_rate()

    def pacing_rate(self, now: float) -> float:
        return self.rate
