"""Kernel-space (CCP-style) datapath shim.

CCP ("Congestion Control Plane", Narayan et al. 2018) restructures
endpoint congestion control: the datapath (e.g. the Linux kernel stack)
executes a tiny fold function over per-packet events and reports
*aggregated* measurements to an off-datapath agent at a coarse cadence.
The agent -- here, the MOCC library -- is therefore consulted once per
``batch`` monitor intervals instead of every interval, which is why
kernel-space MOCC's CPU overhead is close to Orca/CUBIC in Fig. 17.

Between reports the datapath keeps sending at the last rate the agent
installed, exactly as a CCP datapath program would.
"""

from __future__ import annotations

from repro.core.library import MOCC, NetworkStatus
from repro.netsim.sender import Controller, Flow, MonitorIntervalStats

__all__ = ["CcpShim"]


class CcpShim(Controller):
    """Batched MOCC control loop (kernel-space deployment)."""

    kind = "rate"
    name = "MOCC-Kernel"

    def __init__(self, library: MOCC, weights, batch: int = 4):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.library = library
        self.library.register(weights)
        self.rate = library.rate
        self.batch = batch
        self._pending: list[MonitorIntervalStats] = []

    def on_mi(self, flow: Flow, stats: MonitorIntervalStats, now: float) -> None:
        self._pending.append(stats)
        if len(self._pending) < self.batch:
            return
        # Aggregate the batch the way a CCP fold function would.
        sent = sum(s.sent for s in self._pending)
        acked = sum(s.acked for s in self._pending)
        lost = sum(s.lost for s in self._pending)
        duration = sum(s.duration for s in self._pending)
        rtts = [(s.mean_rtt, s.acked) for s in self._pending if s.mean_rtt is not None]
        if rtts:
            total_acked = sum(a for _, a in rtts)
            mean_rtt = (sum(r * a for r, a in rtts) / total_acked
                        if total_acked else rtts[-1][0])
        else:
            mean_rtt = None
        self._pending = []
        self.library.report_status(NetworkStatus(
            sent=sent, acked=acked, lost=lost, mean_rtt=mean_rtt, duration=duration))
        self.rate = self.library.get_sending_rate()

    def pacing_rate(self, now: float) -> float:
        return self.rate
