"""Configuration objects for the MOCC reproduction.

Two tables in the paper pin down the configuration surface:

* Table 2 lists the learning hyperparameters (discount factor, learning
  rate, action scale factor, history length, number of landmark
  objectives).
* Table 3 lists the network-parameter ranges used for training and the
  (deliberately wider) ranges used for testing.

Both are captured here as frozen dataclasses so every component of the
library draws its defaults from a single place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class TrainingConfig:
    """Learning hyperparameters (paper Table 2 plus PPO settings from §4.2/§5).

    Attributes mirror the paper's notation:

    * ``discount_factor`` -- gamma, discounting future rewards.
    * ``learning_rate`` -- Adam step size (the paper reuses the symbol
      epsilon for this; we avoid the clash by naming it explicitly).
    * ``action_scale`` -- alpha in Eq. 1, dampens rate oscillations.
    * ``history_length`` -- eta, number of past statistic vectors in the
      state.
    * ``num_landmarks`` -- omega, number of pre-trained landmark
      objectives (36 in the paper, simplex step 1/10).
    * ``clip_epsilon`` -- PPO clipping threshold (0.2, §5).
    * ``entropy_start`` / ``entropy_end`` / ``entropy_decay_iters`` --
      the entropy coefficient beta decays 1 -> 0.1 over 1000 iterations.
    """

    discount_factor: float = 0.99
    learning_rate: float = 1e-3
    action_scale: float = 0.025
    history_length: int = 10
    num_landmarks: int = 36
    clip_epsilon: float = 0.2
    entropy_start: float = 1.0
    entropy_end: float = 0.1
    entropy_decay_iters: int = 1000
    # Architecture (§5): two hidden layers of 64 and 32 units, tanh.
    hidden_sizes: tuple[int, ...] = (64, 32)
    preference_hidden: int = 16
    # Rollout/optimisation sizing (stable-baselines-style defaults, scaled
    # for a pure-Python simulator).
    steps_per_iteration: int = 256
    minibatch_size: int = 64
    epochs_per_iteration: int = 4
    gae_lambda: float = 0.95
    value_coef: float = 0.5
    max_grad_norm: float = 5.0
    seed: int = 0

    def entropy_coef(self, iteration: int) -> float:
        """Linearly decayed entropy coefficient for a given iteration."""
        if iteration >= self.entropy_decay_iters:
            return self.entropy_end
        frac = iteration / float(self.entropy_decay_iters)
        return self.entropy_start + frac * (self.entropy_end - self.entropy_start)

    def replace(self, **kwargs) -> "TrainingConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class NetworkRanges:
    """A range of network parameters (paper Table 3 rows).

    Bandwidth is in Mbps, latency is the one-way delay in milliseconds,
    queue size is in packets, and loss rate is a probability.
    """

    bandwidth_mbps: tuple[float, float]
    latency_ms: tuple[float, float]
    queue_packets: tuple[int, int]
    loss_rate: tuple[float, float]

    def sample(self, rng) -> "NetworkParams":
        """Draw one parameter set uniformly from the ranges."""
        return NetworkParams(
            bandwidth_mbps=float(rng.uniform(*self.bandwidth_mbps)),
            latency_ms=float(rng.uniform(*self.latency_ms)),
            queue_packets=int(rng.integers(self.queue_packets[0], self.queue_packets[1] + 1)),
            loss_rate=float(rng.uniform(*self.loss_rate)),
        )


@dataclass(frozen=True)
class NetworkParams:
    """A concrete network-condition point."""

    bandwidth_mbps: float
    latency_ms: float
    queue_packets: int
    loss_rate: float


#: Table 3, "Training" row: 1-5 Mbps, 10-50 ms, 0-3000 pkts, 0-3 % loss.
TRAINING_RANGES = NetworkRanges(
    bandwidth_mbps=(1.0, 5.0),
    latency_ms=(10.0, 50.0),
    queue_packets=(1, 3000),
    loss_rate=(0.0, 0.03),
)

#: Table 3, "Testing" row: 10-50 Mbps, 10-200 ms, 500-5000 pkts, 0-10 % loss.
TESTING_RANGES = NetworkRanges(
    bandwidth_mbps=(10.0, 50.0),
    latency_ms=(10.0, 200.0),
    queue_packets=(500, 5000),
    loss_rate=(0.0, 0.10),
)

#: Default hyperparameters (Table 2).
DEFAULT_TRAINING = TrainingConfig()

#: The three bootstrap landmark objectives from Appendix B.
BOOTSTRAP_OBJECTIVES = (
    (0.6, 0.3, 0.1),
    (0.1, 0.6, 0.3),
    (0.3, 0.1, 0.6),
)
