"""Maximum-likelihood Gaussian ellipses for throughput-latency plots.

Fig. 1(b) summarises each scheme's runs as "the 1-sigma elliptic
contour of the maximum-likelihood 2D Gaussian distribution that
explains the points".  :func:`sigma_ellipse` computes that contour's
parameters (centre, axes, orientation) from raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ellipse", "sigma_ellipse"]


@dataclass(frozen=True)
class Ellipse:
    """A 2-D confidence ellipse ``x = center + R(angle) @ diag(axes) @ unit``."""

    center: tuple[float, float]
    #: Semi-axis lengths (sqrt of covariance eigenvalues, scaled by n_sigma).
    axes: tuple[float, float]
    #: Rotation of the major axis, radians counter-clockwise from +x.
    angle: float

    def contour(self, points: int = 64) -> np.ndarray:
        """Sample the contour polyline (shape ``(points, 2)``)."""
        t = np.linspace(0.0, 2.0 * np.pi, points)
        unit = np.stack([np.cos(t), np.sin(t)])
        rot = np.array([[np.cos(self.angle), -np.sin(self.angle)],
                        [np.sin(self.angle), np.cos(self.angle)]])
        xy = rot @ (np.diag(self.axes) @ unit)
        return xy.T + np.asarray(self.center)

    def contains(self, point, tol: float = 1e-9) -> bool:
        """Whether a point lies inside (or on) the ellipse."""
        p = np.asarray(point, dtype=np.float64) - np.asarray(self.center)
        rot = np.array([[np.cos(self.angle), np.sin(self.angle)],
                        [-np.sin(self.angle), np.cos(self.angle)]])
        local = rot @ p
        a, b = self.axes
        if a <= 0 or b <= 0:
            return bool(np.allclose(p, 0.0, atol=tol))
        return (local[0] / a) ** 2 + (local[1] / b) ** 2 <= 1.0 + tol


def sigma_ellipse(samples: np.ndarray, n_sigma: float = 1.0) -> Ellipse:
    """ML-Gaussian ``n_sigma`` contour of 2-D ``samples`` (shape (n, 2))."""
    pts = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    if pts.shape[1] != 2:
        raise ValueError("samples must be (n, 2)")
    center = pts.mean(axis=0)
    if len(pts) < 2:
        return Ellipse(center=tuple(center), axes=(0.0, 0.0), angle=0.0)
    cov = np.cov(pts.T, bias=True)  # ML estimate (1/n)
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.clip(eigvals[order], 0.0, None)
    eigvecs = eigvecs[:, order]
    axes = n_sigma * np.sqrt(eigvals)
    angle = float(np.arctan2(eigvecs[1, 0], eigvecs[0, 0]))
    return Ellipse(center=(float(center[0]), float(center[1])),
                   axes=(float(axes[0]), float(axes[1])), angle=angle)
