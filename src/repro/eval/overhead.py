"""Control-loop CPU overhead measurement (Fig. 17).

The paper compares CPU utilization of user-space schemes (UDT-based
MOCC, Aurora, Vivace -- model inference or micro-experiment logic runs
in the datapath at per-interval granularity) against kernel-space
schemes (CCP-based MOCC, Orca, CUBIC, Vegas, BBR -- the control logic
is decoupled from the datapath and consulted far less often).

In simulation we measure the same quantity directly: the wall-clock
time spent inside a controller's decision callbacks per simulated
second of traffic.  The *relative* ordering (UDT-style per-interval
inference >> CCP-style batched inference ~ heuristics) is the result
the paper's Fig. 17 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.netsim.sender import Controller

__all__ = ["ProfilingController", "OverheadReport", "measure_overhead"]


class ProfilingController(Controller):
    """Transparent proxy accumulating wall-clock time in callbacks."""

    def __init__(self, inner: Controller):
        self.inner = inner
        self.kind = inner.kind
        self.name = inner.name
        self.control_seconds = 0.0
        self.calls = 0

    def _timed(self, fn, *args):
        start = time.perf_counter()
        try:
            return fn(*args)
        finally:
            self.control_seconds += time.perf_counter() - start
            self.calls += 1

    def on_flow_start(self, flow, now):
        return self._timed(self.inner.on_flow_start, flow, now)

    def on_ack(self, flow, packet, now):
        return self._timed(self.inner.on_ack, flow, packet, now)

    def on_loss(self, flow, packet, now):
        return self._timed(self.inner.on_loss, flow, packet, now)

    def on_mi(self, flow, stats, now):
        return self._timed(self.inner.on_mi, flow, stats, now)

    def pacing_rate(self, now):
        return self._timed(self.inner.pacing_rate, now)

    def cwnd(self, now):
        return self._timed(self.inner.cwnd, now)

    def inflight_cap(self, now):
        return self.inner.inflight_cap(now)


@dataclass
class OverheadReport:
    """Control cost of one scheme over one run."""

    scheme: str
    control_seconds: float
    sim_seconds: float
    calls: int
    inference_count: int

    @property
    def control_us_per_sim_second(self) -> float:
        """Microseconds of control computation per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return 1e6 * self.control_seconds / self.sim_seconds


def measure_overhead(controller: Controller, network, duration: float = 20.0,
                     seed: int = 0) -> OverheadReport:
    """Run one flow and report its control-loop cost.

    ``network`` is an :class:`repro.eval.runner.EvalNetwork`; import is
    deferred to avoid a cycle.
    """
    from repro.eval.runner import run_scheme

    profiled = ProfilingController(controller)
    run_scheme(profiled, network, duration=duration, seed=seed)
    inference = getattr(controller, "inference_count", 0)
    # Datapath shims expose their wrapped library's counter.
    library = getattr(controller, "library", None)
    if library is not None:
        inference = max(inference, getattr(library, "inference_count", 0))
    return OverheadReport(scheme=controller.name,
                          control_seconds=profiled.control_seconds,
                          sim_seconds=duration, calls=profiled.calls,
                          inference_count=inference)
