"""Resilient sweep runtime: crash recovery, timeouts, checkpoint/resume.

Production-scale sweeps die for reasons that have nothing to do with
the cells themselves: a worker process OOM-killed mid-batch, one cell
wedging on a pathological parameter corner, a corrupt cache entry, the
whole run preempted halfway through a 10^4-cell grid.  This module
gives :class:`~repro.eval.parallel.ParallelRunner` the machinery to
survive all four without compromising the determinism contract:

* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  seeded jitter for *transient* failures (worker crashes, timeouts).
  Deterministic cell failures -- an exception raised by the task
  function itself -- are never retried: a seeded simulation that
  failed once fails identically every time.
* :class:`ResilientPool` -- a fork-based process pool that knows which
  worker holds which task (one duplex pipe per worker), so a crashed
  or deadline-blown worker is terminated, respawned, and its task
  either requeued (within the retry budget) or reported as a failed
  result instead of wedging the sweep.
* :class:`SweepCheckpoint` -- an append-only JSONL journal of
  completed cells, each line fingerprint-keyed and content-checksummed
  so an interrupted grid resumes from exactly the cells it finished --
  with the original records, wall time, and event counts, hence
  row-for-row identical digests to an uninterrupted run.
* :func:`set_chaos_hook` -- the deterministic fault-injection point
  the chaos tests and the CI chaos smoke job use to kill a worker at a
  chosen cell (fork inheritance carries the hook into workers).

Retry safety is machine-checked: :data:`IDEMPOTENT_TASKS` is the
justified allowlist of task functions the pool may re-run, and
replint's ``resilience-idempotent-retry`` rule flags any
:class:`ResilientPool` call site whose task function is not listed.

All timeout arithmetic uses ``time.perf_counter()`` (monotonic,
wall-clock-rule clean) and never feeds simulation state -- elapsed
time is reporting, not physics.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

import numpy as np

from repro.eval.scenarios import SCENARIO_CACHE_VERSION
from repro.netsim.network import FlowRecord
from repro.netsim.sender import MonitorIntervalStats

__all__ = ["IDEMPOTENT_TASKS", "ResilientPool", "RetryPolicy",
           "SweepCheckpoint", "record_from_json", "record_to_json",
           "records_digest", "set_chaos_hook"]

#: Justified idempotent-task allowlist: the only functions a
#: :class:`ResilientPool` may be constructed around (and therefore
#: transparently re-run after a crash or timeout).  Each entry is
#: ``(dotted_function_name, justification)``.  The replint
#: ``resilience-idempotent-retry`` rule parses this tuple straight
#: from the AST and flags pool call sites whose task function is not
#: listed, plus stale entries naming functions that no longer exist.
IDEMPOTENT_TASKS: tuple[tuple[str, str], ...] = (
    ("repro.eval.parallel._execute_batch",
     "every batch cell is a pure function of its seeded scenario: "
     "re-running after a crash or timeout reproduces bit-identical "
     "records (the golden-trace gate pins this), and results land in "
     "a fingerprint-keyed store, so a duplicate completion is a "
     "harmless overwrite"),
)

# --- record (de)serialization ------------------------------------------------
# Shared by the result cache, the checkpoint journal, and the digest
# helpers; lives here (not in repro.eval.parallel) so parallel can
# import the resilience layer without a cycle.

#: Per-monitor-interval fields persisted in caches and checkpoints.
MI_FIELDS = ("flow_id", "start", "end", "sent", "acked", "lost", "mean_rtt",
             "min_rtt", "latency_gradient", "capacity_pps", "base_rtt",
             "packet_bytes", "rate_pps")
RECORD_FIELDS = ("flow_id", "scheme", "mean_throughput_pps",
                 "mean_throughput_mbps", "mean_utilization", "mean_rtt",
                 "base_rtt", "loss_rate")


def record_to_json(record: FlowRecord) -> dict:
    payload = {name: getattr(record, name) for name in RECORD_FIELDS}
    payload["records"] = [[getattr(s, name) for name in MI_FIELDS]
                          for s in record.records]
    return payload


def record_from_json(payload: dict) -> FlowRecord:
    stats = [MonitorIntervalStats(**dict(zip(MI_FIELDS, row)))
             for row in payload["records"]]
    fields = {name: payload[name] for name in RECORD_FIELDS}
    return FlowRecord(records=stats, **fields)


def records_json(records: list[FlowRecord]) -> str:
    """Canonical JSON body of a record list (checksum input)."""
    return json.dumps([record_to_json(r) for r in records], sort_keys=True)


def records_digest(records: list[FlowRecord]) -> str:
    """Content digest of a cell's records (order- and bit-sensitive)."""
    return hashlib.sha256(records_json(records).encode("utf-8")).hexdigest()


# --- chaos hook ---------------------------------------------------------------

#: Test/CI fault-injection hook, called by every pool worker with the
#: task argument before executing it.  Set in the parent before the
#: pool forks (children inherit it through fork); ``None`` disables.
#: Mutable module state is acceptable here -- the hook never feeds
#: simulation results, only kills or delays workers.
_CHAOS_HOOK = None


def set_chaos_hook(hook) -> None:
    """Install (or with ``None`` clear) the worker chaos hook."""
    global _CHAOS_HOOK
    _CHAOS_HOOK = hook


def chaos_probe(arg) -> None:
    """Invoke the installed chaos hook, if any (worker-side)."""
    hook = _CHAOS_HOOK
    if hook is not None:
        hook(arg)


# --- retry policy -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_attempts`` counts the first attempt: ``1`` disables retries
    entirely.  The backoff before attempt ``k+1`` is ``backoff_s *
    backoff_factor**(k-1)``, jittered multiplicatively by up to
    ``±jitter_frac`` from a generator seeded with ``seed`` -- the
    delays are reproducible, and they never touch any simulation
    stream (scheduling noise, not physics).
    """

    max_attempts: int = 3
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    def delay(self, failures: int, rng: np.random.Generator) -> float:
        """Backoff before the next attempt after ``failures`` failures."""
        base = self.backoff_s * self.backoff_factor ** (failures - 1)
        if self.jitter_frac > 0.0:
            base *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return base


# --- resilient pool -----------------------------------------------------------


def _pool_worker(conn, fn, initializer) -> None:
    """Worker main: receive ``(task_id, arg)``, send ``(task_id,
    result, error)``; a ``None`` message is the shutdown sentinel.

    Task exceptions come back as strings (unpicklable exception objects
    must never wedge the pipe); anything that kills the process --
    including the chaos hook -- surfaces in the parent as a crash.
    """
    if initializer is not None:
        initializer()
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            task_id, arg = message
            chaos_probe(arg)
            try:
                result = fn(arg)
            except Exception as exc:  # noqa: BLE001 -- reported per task
                conn.send((task_id, None, f"{type(exc).__name__}: {exc}"))
            else:
                conn.send((task_id, result, None))
    except (EOFError, OSError, KeyboardInterrupt):
        return


class _PoolTask:
    __slots__ = ("task_id", "arg", "timeout", "failures", "errors")

    def __init__(self, task_id, arg, timeout):
        self.task_id = task_id
        self.arg = arg
        self.timeout = timeout
        self.failures = 0
        self.errors: list[str] = []


class _PoolWorker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


class ResilientPool:
    """A crash- and timeout-surviving process pool for idempotent tasks.

    Unlike ``multiprocessing.Pool`` -- which wedges or collapses when a
    worker dies mid-task -- this pool assigns exactly one task per
    worker over a dedicated duplex pipe, so it always knows *which*
    task a dead or deadline-blown worker was holding.  That worker is
    terminated and respawned, and the task is requeued under
    ``retry`` (transient failures only: an exception *returned* by the
    task function is deterministic and reported immediately, never
    retried).  Tasks whose retry budget is exhausted come back as
    error results; the pool itself never raises for a task.

    ``fn`` must be a module-level function named in
    :data:`IDEMPOTENT_TASKS` -- re-running it must be observationally
    equivalent to running it once (replint enforces the allowlist).
    """

    #: Parent poll granularity, seconds: the latency ceiling on
    #: noticing a result, a crash, or an expired deadline.
    POLL_SECONDS = 0.05

    def __init__(self, n_workers: int, fn, initializer=None,
                 retry: RetryPolicy | None = None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.fn = fn
        self.initializer = initializer
        self.retry = retry if retry is not None else RetryPolicy()
        # Backoff jitter: scheduling noise only, never simulation
        # state; seeded so retry timing is reproducible.
        self._rng = np.random.default_rng(self.retry.seed)

    def _spawn(self, ctx) -> _PoolWorker:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_pool_worker,
                           args=(child_conn, self.fn, self.initializer),
                           daemon=True)
        proc.start()
        child_conn.close()
        return _PoolWorker(proc, parent_conn)

    def _kill(self, worker: _PoolWorker) -> None:
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _next_move(self, task: _PoolTask, reason: str, delayed: list):
        """Requeue a transiently-failed task or emit its error result."""
        task.failures += 1
        task.errors.append(reason)
        if task.failures >= self.retry.max_attempts:
            return (task.task_id, None, "; ".join(task.errors))
        delayed.append((time.perf_counter()
                        + self.retry.delay(task.failures, self._rng), task))
        return None

    def execute(self, tasks):
        """Yield one ``(task_id, result, error)`` per task, unordered.

        ``tasks`` is an iterable of ``(task_id, arg, timeout_s)``
        (``timeout_s=None`` = no deadline).  The generator owns the
        worker processes: closing it early (or an exception in the
        consuming loop) terminates them.
        """
        ctx = mp.get_context("fork")
        queue: deque[_PoolTask] = deque(
            _PoolTask(task_id, arg, timeout)
            for task_id, arg, timeout in tasks)
        if not queue:
            return
        delayed: list = []  # (ready_at, task) backing off before requeue
        workers = [self._spawn(ctx)
                   for _ in range(min(self.n_workers, len(queue)))]
        idle = list(workers)
        inflight: dict = {}  # conn -> (worker, task, deadline | None)
        try:
            while queue or delayed or inflight:
                now = time.perf_counter()
                if delayed:
                    waiting = []
                    for ready_at, task in delayed:
                        if ready_at <= now:
                            queue.append(task)
                        else:
                            waiting.append((ready_at, task))
                    delayed = waiting
                while idle and queue:
                    worker = idle.pop()
                    task = queue.popleft()
                    worker.conn.send((task.task_id, task.arg))
                    deadline = (None if task.timeout is None
                                else now + task.timeout)
                    inflight[worker.conn] = (worker, task, deadline)
                if not inflight:
                    # Everything is backing off; sleep to the earliest
                    # requeue (bounded by the poll granularity).
                    ready_at = min(entry[0] for entry in delayed)
                    pause = ready_at - time.perf_counter()
                    if pause > self.POLL_SECONDS:
                        pause = self.POLL_SECONDS
                    if pause > 0:
                        time.sleep(pause)
                    continue
                for conn in _connection_wait(list(inflight),
                                             timeout=self.POLL_SECONDS):
                    worker, task, _deadline = inflight[conn]
                    try:
                        task_id, result, error = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-task (chaos kill, OOM,
                        # segfault): respawn and requeue within budget.
                        del inflight[conn]
                        self._kill(worker)
                        idle.append(self._spawn(ctx))
                        verdict = self._next_move(
                            task, "WorkerCrash: worker process died "
                                  f"while running task {task.task_id!r}",
                            delayed)
                        if verdict is not None:
                            yield verdict
                    else:
                        del inflight[conn]
                        idle.append(worker)
                        yield (task_id, result, error)
                now = time.perf_counter()
                for conn in list(inflight):
                    worker, task, deadline = inflight[conn]
                    expired = deadline is not None and now > deadline
                    if worker.proc.is_alive() and not expired:
                        continue
                    del inflight[conn]
                    self._kill(worker)
                    idle.append(self._spawn(ctx))
                    if expired:
                        reason = (f"CellTimeout: task {task.task_id!r} "
                                  f"exceeded {task.timeout:.3f}s")
                    else:
                        reason = ("WorkerCrash: worker process died "
                                  f"while running task {task.task_id!r}")
                    verdict = self._next_move(task, reason, delayed)
                    if verdict is not None:
                        yield verdict
        finally:
            for worker in idle:
                try:
                    worker.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            for worker in workers:
                worker.proc.join(timeout=1.0)
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join()
                try:
                    worker.conn.close()
                except OSError:
                    pass


# --- sweep checkpoint ---------------------------------------------------------


def _line_sha(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()[:16]


def _suite_sha(fingerprints: list[str]) -> str:
    return hashlib.sha256(
        json.dumps(list(fingerprints)).encode("utf-8")).hexdigest()[:16]


class SweepCheckpoint:
    """Append-only JSONL journal of a sweep's completed cells.

    Line 0 is a manifest binding the journal to one suite (the ordered
    cell fingerprints) and one cache version; every following line is
    a completed cell -- index, fingerprint, records, wall time, event
    count -- sealed by a content checksum.  :meth:`resume` validates
    the chain and returns the completed cells; a manifest mismatch
    (different suite, changed code) starts the journal over, and a
    corrupt or torn tail is dropped (the journal is rewritten up to
    the last intact line) rather than trusted.

    The journal lives in the parent: workers never write it, so a
    crashed worker can at worst lose its in-flight cells, never
    corrupt completed ones.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    def resume(self, fingerprints: list[str]) -> dict[int, tuple]:
        """Validate the journal against ``fingerprints`` and open it.

        Returns ``{cell_index: (records, elapsed, events)}`` for every
        intact completed cell of the *same* suite; any mismatch or
        corruption resets the journal (fresh manifest, no cells).
        """
        fingerprints = list(fingerprints)
        suite = _suite_sha(fingerprints)
        completed: dict[int, tuple] = {}
        kept: list[str] = []
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            lines = []
        if lines:
            try:
                manifest = json.loads(lines[0])
            except ValueError:
                manifest = None
            if (isinstance(manifest, dict)
                    and manifest.get("kind") == "manifest"
                    and manifest.get("version") == SCENARIO_CACHE_VERSION
                    and manifest.get("suite") == suite):
                for line in lines[1:]:
                    entry = self._parse_cell(line, fingerprints)
                    if entry is None:
                        break  # torn/corrupt tail: drop it and stop
                    idx, payload = entry
                    completed[idx] = payload
                    kept.append(line)
        manifest_line = json.dumps({"kind": "manifest",
                                    "version": SCENARIO_CACHE_VERSION,
                                    "suite": suite, "cells": len(fingerprints)},
                                   sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text("\n".join([manifest_line] + kept) + "\n")
        tmp.replace(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        return completed

    def _parse_cell(self, line: str, fingerprints: list[str]):
        try:
            payload = json.loads(line)
        except ValueError:
            return None
        if not isinstance(payload, dict) or payload.get("kind") != "cell":
            return None
        sha = payload.pop("sha", None)
        if sha != _line_sha(payload):
            return None
        idx = payload.get("idx")
        if (not isinstance(idx, int) or not 0 <= idx < len(fingerprints)
                or payload.get("fp") != fingerprints[idx]):
            return None
        try:
            records = [record_from_json(r) for r in payload["records"]]
            return idx, (records, float(payload["elapsed"]),
                         int(payload["events"]))
        except (KeyError, TypeError, ValueError):
            return None

    def record(self, idx: int, fingerprint: str, records: list[FlowRecord],
               elapsed: float, events: int) -> None:
        """Append one completed cell (flushed so a kill loses nothing)."""
        if self._fh is None:
            raise RuntimeError("call resume() before record()")
        payload = {"kind": "cell", "idx": int(idx), "fp": fingerprint,
                   "elapsed": float(elapsed), "events": int(events),
                   "records": [record_to_json(r) for r in records]}
        payload["sha"] = _line_sha(payload)
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
