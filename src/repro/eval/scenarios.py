"""Declarative evaluation scenarios and scenario grids.

The paper's evaluation (Figs. 5-19) is a large matrix of network
conditions x objectives x competing schemes.  Instead of every
benchmark hand-rolling loops over :func:`repro.eval.runner.run_scheme`,
experiments *declare* what to run:

* :class:`AgentRef` -- a picklable reference to a pre-trained model in
  the :mod:`repro.models.zoo` cache (process workers resolve it
  locally instead of receiving a closure);
* :class:`FlowDef` -- one flow: scheme name, objective weights, agent,
  start/stop times, and (for multi-bottleneck topologies) the named
  path it traverses;
* :class:`ChurnSchedule` -- declarative flow churn: staggered
  arrivals/departures and on/off windows rewritten onto a line-up's
  ``start``/``stop`` fields;
* :class:`Scenario` -- a concrete experiment: network (or a
  :class:`~repro.netsim.topology.TopologySpec`) + optional named trace
  + flow line-up + duration + seed, with a content
  :meth:`Scenario.fingerprint` for result caching;
* :class:`ScenarioSuite` -- a named grid over bandwidth, RTT, loss,
  buffer, trace, topology, churn and scheme line-ups whose
  :meth:`ScenarioSuite.expand` yields the concrete scenarios.

:mod:`repro.eval.parallel` executes suites across OS processes and
memoizes finished scenarios on disk keyed by the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from itertools import product
from pathlib import Path

import numpy as np

from repro.eval.runner import EvalNetwork, build_competition, scheme_factory
from repro.netsim import engine_class
from repro.netsim.faults import coerce_faults, fault_signature
from repro.netsim.network import FlowRecord, FlowSpec, Simulation
from repro.netsim.topology import TopologySpec
from repro.netsim.traces import make_trace

__all__ = ["AgentRef", "ChurnSchedule", "FlowDef", "Scenario", "ScenarioSuite",
           "build_scenario_simulation", "run_scenario", "simulate_scenario"]

#: Bumped whenever scenario execution changes in a way that invalidates
#: previously cached results.  v7: cache entries gained a content
#: checksum and the topology signature gained per-link fault schedules
#: (v6: the ``engine=`` axis; v5: host-portable code digest; v4:
#: event-driven per-hop forward transit).
SCENARIO_CACHE_VERSION = "v7"


def _simulation_code_digest() -> str:
    """Digest of the source files that determine simulation results.

    Folded into every fingerprint so cached results go stale
    automatically when the simulator, the baselines, or the inference
    path change -- nobody has to remember to bump
    ``SCENARIO_CACHE_VERSION`` for behavioural PRs.  Conservative on
    purpose: a comment-only edit re-simulates, a silently wrong cached
    figure does not happen.
    """
    import repro.baselines
    import repro.core.agent
    import repro.netsim

    roots = [Path(repro.netsim.__file__).parent,
             Path(repro.baselines.__file__).parent]
    singles = [Path(repro.core.agent.__file__),
               Path(__file__).resolve().parent / "runner.py"]
    singles += [Path(repro.core.agent.__file__).parent.parent / "rl" / name
                for name in ("policy.py", "nn.py", "distributions.py")]
    files = [p for root in roots for p in sorted(root.glob("*.py"))] + singles
    package_root = Path(repro.netsim.__file__).resolve().parent.parent
    return _digest_files(files, package_root)


def _digest_files(files, root: Path) -> str:
    """sha256 digest of ``files``, identical on every host.

    Files are ordered and labelled by their POSIX-style path relative
    to ``root`` -- never by filesystem enumeration order or bare
    ``name`` (two ``__init__.py`` must not collide) -- and ``\\r\\n``
    is normalized to ``\\n`` so a CRLF-translating checkout does not
    masquerade as a behavioural change.
    """
    def key(path: Path) -> str:
        path = path.resolve()
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            return path.as_posix()

    digest = hashlib.sha256()
    for path in sorted(files, key=key):
        digest.update(key(path).encode())
        digest.update(path.read_bytes().replace(b"\r\n", b"\n"))
    return digest.hexdigest()[:16]


_CODE_DIGEST: str | None = None


def _code_digest() -> str:
    # Idempotent memo of a pure function of the on-disk sources: the
    # digest cannot change within a process, so the write is
    # observationally pure.
    global _CODE_DIGEST  # replint: disable=signature-purity
    if _CODE_DIGEST is None:
        _CODE_DIGEST = _simulation_code_digest()
    return _CODE_DIGEST


@dataclass(frozen=True)
class AgentRef:
    """Picklable reference to a model in the zoo's on-disk cache.

    ``kind`` selects the zoo entry point: ``"mocc"`` (the offline
    multi-objective model), ``"aurora"`` (``flavor`` in
    throughput/latency), or ``"aurora_for"`` (``flavor`` is the tag and
    ``weights`` the fixed objective).  Workers resolve refs through the
    process-wide zoo, so a model is loaded (or trained) at most once
    per process and inherited for free by forked workers.
    """

    kind: str = "mocc"
    flavor: str = "throughput"
    quality: str = "fast"
    seed: int = 0
    omega: int = 36
    weights: tuple | None = None

    def key(self) -> str:
        parts = [self.kind, self.flavor, self.quality,
                 f"seed{self.seed}", f"omega{self.omega}"]
        if self.weights is not None:
            parts.append("w" + ",".join(f"{float(w):.6f}" for w in self.weights))
        return "_".join(parts)

    def resolve(self, zoo=None):
        from repro.models.zoo import default_zoo
        zoo = zoo or default_zoo()
        if self.kind == "mocc":
            return zoo.mocc_offline(quality=self.quality, omega=self.omega,
                                    seed=self.seed)
        if self.kind == "aurora":
            return zoo.aurora(self.flavor, quality=self.quality, seed=self.seed)
        if self.kind == "aurora_for":
            if self.weights is None:
                raise ValueError("aurora_for needs an objective weight vector")
            return zoo.aurora_for(np.asarray(self.weights, dtype=np.float64),
                                  tag=self.flavor, quality=self.quality,
                                  seed=self.seed)
        raise ValueError(f"unknown agent kind {self.kind!r}")


def _agent_signature(agent) -> str:
    """Stable identity of a flow's agent for scenario fingerprints."""
    if agent is None:
        return "none"
    if isinstance(agent, AgentRef):
        return "ref:" + agent.key()
    # A live agent (e.g. handed in by a fixture): hash its parameters so
    # differently-trained models never share cache entries.  No
    # memoization by object identity -- online adaptation mutates
    # models in place, and a stale digest would alias cache entries.
    digest = hashlib.sha256()
    state = agent.model.state_dict()
    for name in sorted(state):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(state[name]).tobytes())
    return "live:" + digest.hexdigest()[:16]


def _resolve_agent(agent):
    if agent is None or not isinstance(agent, AgentRef):
        return agent
    return agent.resolve()


@dataclass(frozen=True)
class FlowDef:
    """One flow of a scenario.

    ``weights`` is the MOCC preference vector (ignored by heuristic
    schemes); ``agent`` is an :class:`AgentRef` or a live
    :class:`~repro.core.agent.MoccAgent` for the learning-based
    schemes.  ``rate_frac`` overrides the initial sending rate as a
    fraction of the bottleneck capacity (of the flow's own path for
    topology scenarios); ``seed`` overrides the controller seed
    (defaults to the scenario seed); ``path`` names the topology path
    the flow traverses (topology scenarios only; ``None`` = the
    topology's default path).
    """

    scheme: str
    weights: tuple | None = None
    agent: object | None = None
    start: float = 0.0
    stop: float = float("inf")
    seed: int | None = None
    rate_frac: float | None = None
    label: str = ""
    path: str | None = None

    def display_label(self) -> str:
        return self.label or self.scheme

    def signature(self) -> list:
        weights = None if self.weights is None else [
            f"{float(w):.8f}" for w in self.weights]
        return [self.scheme.lower(), weights, _agent_signature(self.agent),
                float(self.start), float(self.stop),
                self.seed, self.rate_frac, self.path]

    @staticmethod
    def coerce(flow) -> "FlowDef":
        if isinstance(flow, FlowDef):
            return flow
        if isinstance(flow, str):
            return FlowDef(scheme=flow)
        raise TypeError(f"cannot interpret {flow!r} as a flow")


def _trace_signature(trace) -> list | str | None:
    """Canonical content of a live trace object (for fingerprints)."""
    if trace is None:
        return None
    sig: list = [type(trace).__name__]
    for name in sorted(vars(trace)):
        value = vars(trace)[name]
        if isinstance(value, np.ndarray):
            value = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        sig.append([name, value if isinstance(value, str) else repr(value)])
    return sig


def _topology_signature(spec: TopologySpec | None) -> list | None:
    """Canonical content of a topology spec (for fingerprints).

    The spec's display ``name`` is excluded (renames keep their cache
    entries); named traces on links are hashed by the content their
    registry factory currently produces, mirroring scenario-level
    traces.
    """
    if spec is None:
        return None
    links = []
    for ld in spec.links:
        entry: list = [ld.name, ld.bandwidth_mbps, ld.delay_ms, ld.buffer_bdp,
                       ld.queue_packets, ld.loss_rate, ld.trace,
                       fault_signature(ld.faults)]
        if ld.trace is not None:
            entry.append(_trace_signature(make_trace(ld.trace)))
        links.append(entry)
    paths = [[p.name, list(p.links), p.return_delay_ms,
              None if p.reverse_links is None else list(p.reverse_links),
              p.ack_bytes]
             for p in spec.paths]
    return [links, paths, spec.default_path]


@dataclass(frozen=True)
class ChurnSchedule:
    """Declarative flow churn: who is active when.

    Applied to a line-up at scenario construction, rewriting each
    flow's ``start``/``stop``.  Kinds:

    * ``"staggered"`` -- flow ``i`` arrives at ``offset + i*gap`` and
      stays (the Fig. 11 arrival pattern as a reusable axis);
    * ``"departures"`` -- every flow starts at ``offset``; flow ``i``
      leaves at ``duration - i*gap`` (later flows leave earlier);
    * ``"on-off"`` -- flow ``i`` is active in
      ``[offset + i*gap, offset + i*gap + on_time)`` (``on_time``
      defaults to ``gap``: back-to-back sessions).  With ``period``
      the window *repeats* every ``period`` seconds until the scenario
      ends: each repeat is a fresh session (its own flow, restarting
      from the controller's initial state, like a user re-opening a
      connection).  ``duty`` sizes the window as a fraction of
      ``period`` instead of ``on_time``.

    ``skip`` exempts the first ``skip`` flows of the line-up -- e.g. a
    persistent through flow on a parking lot while the cross traffic
    churns around it.
    """

    kind: str = "staggered"
    gap: float = 2.0
    offset: float = 0.0
    on_time: float | None = None
    skip: int = 0
    period: float | None = None
    duty: float | None = None

    def __post_init__(self):
        if self.kind not in ("staggered", "departures", "on-off"):
            raise ValueError(f"unknown churn kind {self.kind!r}")
        if self.gap < 0 or self.offset < 0 or self.skip < 0:
            raise ValueError("gap, offset and skip must be non-negative")
        if self.on_time is not None and self.on_time <= 0:
            raise ValueError("on_time must be positive")
        if self.period is not None or self.duty is not None:
            if self.kind != "on-off":
                raise ValueError("period/duty only apply to on-off churn")
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be positive")
        if self.duty is not None:
            if self.period is None:
                raise ValueError("duty needs a period")
            if self.on_time is not None:
                raise ValueError("give either on_time or duty, not both")
            if not 0.0 < self.duty < 1.0:
                raise ValueError("duty must be in (0, 1)")
        if self.period is not None and self._on_duration() > self.period:
            raise ValueError("on_time must not exceed period "
                             "(windows would overlap themselves)")

    def _on_duration(self) -> float:
        if self.on_time is not None:
            return self.on_time
        if self.duty is not None:
            return self.duty * self.period
        return self.gap

    def label(self) -> str:
        bits = [self.kind, f"g{self.gap:g}"]
        if self.offset:
            bits.append(f"o{self.offset:g}")
        if self.on_time is not None:
            bits.append(f"on{self.on_time:g}")
        if self.period is not None:
            bits.append(f"p{self.period:g}")
        if self.duty is not None:
            bits.append(f"d{self.duty:g}")
        if self.skip:
            bits.append(f"s{self.skip}")
        return "-".join(bits)

    def windows(self, n: int, duration: float) -> list:
        """First ``(start, stop)`` window for each of ``n`` churned flows."""
        return [wins[0] for wins in self.all_windows(n, duration)]

    def all_windows(self, n: int, duration: float) -> list:
        """Every active window per churned flow (>= 1 each).

        Non-periodic schedules yield exactly one window per flow; an
        on-off schedule with ``period`` yields one per repeat whose
        start falls inside the run.
        """
        out = []
        for i in range(n):
            if self.kind == "staggered":
                starts, stop_after = [self.offset + i * self.gap], float("inf")
            elif self.kind == "departures":
                starts, stop_after = [self.offset], duration - i * self.gap
            else:  # on-off
                first = self.offset + i * self.gap
                stop_after = self._on_duration()
                starts = [first]
                if self.period is not None:
                    k = 1
                    while first + k * self.period < duration:
                        starts.append(first + k * self.period)
                        k += 1
            windows = []
            for start in starts:
                stop = (stop_after if self.kind != "on-off"
                        else start + stop_after)
                start = min(max(start, 0.0), duration)
                windows.append((start, max(stop, start)))
            out.append(windows)
        return out

    def apply(self, flows: tuple, duration: float) -> tuple:
        """Rewrite start/stop on every flow past the first ``skip``.

        A periodic on-off schedule expands each churned flow into one
        flow *per repeat window* (suffixed ``~r1``, ``~r2``, ... past
        the first), so every session restarts from controller initial
        state; without ``period`` the line-up shape is unchanged.
        """
        flows = tuple(flows)
        churned = flows[self.skip:]
        out = list(flows[:self.skip])
        for flow, windows in zip(churned, self.all_windows(len(churned),
                                                           duration)):
            for k, (start, stop) in enumerate(windows):
                clone = replace(flow, start=start, stop=stop)
                if k:
                    clone = replace(clone,
                                    label=f"{flow.display_label()}~r{k}")
                out.append(clone)
        return tuple(out)


@dataclass(frozen=True)
class Scenario:
    """A concrete, picklable, fingerprintable experiment."""

    name: str
    network: EvalNetwork
    flows: tuple
    duration: float = 20.0
    seed: int = 0
    mi_duration: float | None = None
    #: Name of a registered trace (see :func:`repro.netsim.traces.register_trace`)
    #: applied on top of ``network``; keeps the scenario declarative.
    trace: str | None = None
    #: Multi-bottleneck topology; when set it supersedes the
    #: single-link ``network`` (which still contributes packet size)
    #: and flows may name the paths they traverse.
    topology: TopologySpec | None = None
    #: Churn schedule applied to the flow line-up at construction.
    churn: ChurnSchedule | None = None
    #: Hop-transit scheme: ``"event"`` (per-hop arrival-time events,
    #: the production engine) or ``"eager"`` (the pre-refactor
    #: emit-time transit, kept as a comparison twin -- see
    #: :class:`repro.netsim.network.Simulation`).
    transit: str = "event"
    #: Engine core: ``"reference"`` (the pure-Python loop, default and
    #: source of truth) or ``"kernel"`` (the array-backed accelerated
    #: core, bit-identical by contract -- see
    #: :mod:`repro.netsim.kernel`).  Fingerprinted defensively: results
    #: must never differ, but a cached row should still say which
    #: engine produced it.
    engine: str = "reference"
    suite: str = ""
    #: Display label of the line-up this scenario came from (set by
    #: :meth:`ScenarioSuite.expand`); lets consumers key results
    #: structurally instead of parsing the scenario name.
    lineup: str = ""

    def __post_init__(self):
        flows = tuple(FlowDef.coerce(f) for f in self.flows)
        if not flows:
            raise ValueError("a scenario needs at least one flow")
        if self.churn is not None:
            flows = self.churn.apply(flows, self.duration)
        object.__setattr__(self, "flows", flows)
        if self.transit not in ("event", "eager"):
            raise ValueError(f"unknown transit mode {self.transit!r}; "
                             f"use 'event' or 'eager'")
        if self.engine not in ("reference", "kernel"):
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"use 'reference' or 'kernel'")
        if self.trace is not None and self.network.trace is not None:
            raise ValueError("give either a named trace or network.trace, not both")
        if self.topology is not None:
            if self.trace is not None or self.network.trace is not None:
                raise ValueError(
                    "topology links carry their own traces; drop the "
                    "scenario-level trace")
            for flow in flows:
                if flow.path is not None:
                    self.topology.path(flow.path)  # raises on unknown path
        elif any(flow.path is not None for flow in flows):
            raise ValueError("flow paths need a topology")

    def build_network(self, trace_cache: dict | None = None) -> EvalNetwork:
        if self.trace is None:
            return self.network
        return replace(self.network,
                       trace=make_trace(self.trace, cache=trace_cache))

    def fingerprint(self) -> str:
        """Content hash identifying the scenario's *results*.

        The display name, suite, and churn label are deliberately
        excluded so renames keep their cache entries (a churn schedule
        is fully captured by the start/stop it wrote onto the flows).
        A named trace -- scenario-level or on a topology link -- is
        hashed by the *content* its registry factory currently
        produces, not just the name, so re-registering a trace
        invalidates its cached results.  With a topology, the
        superseded single-link network axes are excluded too: only
        packet size still shapes results.
        """
        net = self.network
        named_trace = None if self.trace is None else _trace_signature(
            make_trace(self.trace))
        if self.topology is None:
            network_sig = [net.bandwidth_mbps, net.one_way_ms, net.buffer_bdp,
                           net.queue_packets, net.loss_rate, net.packet_bytes,
                           _trace_signature(net.trace)]
        else:
            network_sig = ["topology", net.packet_bytes]
        payload = {
            "version": SCENARIO_CACHE_VERSION,
            "code": _code_digest(),
            "network": network_sig,
            "trace": named_trace,
            "topology": _topology_signature(self.topology),
            "flows": [f.signature() for f in self.flows],
            "duration": float(self.duration),
            "seed": int(self.seed),
            "mi_duration": self.mi_duration,
            "transit": self.transit,
            "engine": self.engine,
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def run(self) -> list[FlowRecord]:
        return run_scenario(self)


def _controller_kwargs(flow: FlowDef, agent) -> dict:
    key = flow.scheme.lower()
    if key == "mocc":
        return {"mocc_agent": agent, "mocc_weights": flow.weights}
    if key.startswith("aurora"):
        return {"aurora_agent": agent}
    if key == "orca":
        return {"orca_agent": agent}
    return {}


def _build_controller(flow: FlowDef, network: EvalNetwork, seed: int):
    """One sized controller for ``flow`` on a (possibly per-path) network."""
    agent = _resolve_agent(flow.agent)
    initial_rate = None
    if flow.rate_frac is not None:
        initial_rate = flow.rate_frac * network.bottleneck_pps
    return scheme_factory(flow.scheme, network, seed=seed,
                          initial_rate=initial_rate,
                          **_controller_kwargs(flow, agent))


def build_scenario_simulation(scenario: Scenario,
                              trace_cache: dict | None = None) -> Simulation:
    """Wire one scenario into an unrun :class:`Simulation`.

    The construction half of :func:`run_scenario`: same agent
    resolution, controller sizing, link/topology seeding.  Exposed so
    engine-speed profiling (:mod:`repro.eval.perf`) can time ``run_all``
    and read ``Simulation.events_processed`` on exactly the simulations
    the evaluation pipeline would run.

    ``trace_cache`` is the batched-execution hook: cells built with a
    shared cache dict reuse (frozen, read-only) named-trace instances
    instead of re-running each registry factory per cell -- see
    :func:`repro.netsim.traces.make_trace`.
    """
    if scenario.topology is not None:
        return _build_topology_simulation(scenario, trace_cache)
    network = scenario.build_network(trace_cache)
    controllers, starts, stops = [], [], []
    for flow in scenario.flows:
        seed = scenario.seed if flow.seed is None else flow.seed
        controllers.append(_build_controller(flow, network, seed))
        starts.append(flow.start)
        stops.append(flow.stop)
    return build_competition(controllers, network, duration=scenario.duration,
                             start_times=starts, stop_times=stops,
                             seed=scenario.seed,
                             mi_duration=scenario.mi_duration,
                             transit=scenario.transit,
                             engine=scenario.engine)


def simulate_scenario(scenario: Scenario) -> tuple[list[FlowRecord], Simulation]:
    """Run one scenario; return ``(records, finished_simulation)``.

    The simulation comes back finalized, with engine diagnostics
    (``events_processed``, per-link counters) readable.
    """
    sim = build_scenario_simulation(scenario)
    return sim.run_all(), sim


def run_scenario(scenario: Scenario) -> list[FlowRecord]:
    """Execute one scenario serially; the runner's worker entry point.

    Equivalent to the hand-rolled ``scheme_factory`` + ``run_scheme`` /
    ``run_competition`` loops the benchmarks used to contain: same
    seeds, same event streams, identical records.
    """
    return simulate_scenario(scenario)[0]


def _build_topology_simulation(scenario: Scenario,
                               trace_cache: dict | None = None) -> Simulation:
    """Wire a multi-bottleneck scenario over its built topology.

    Controllers are sized per flow from the *path* the flow traverses
    (nominal bottleneck capacity and propagation delay), mirroring how
    single-link scenarios size from their ``EvalNetwork``.
    """
    spec = scenario.topology
    packet_bytes = scenario.network.packet_bytes
    topology = spec.build(packet_bytes=packet_bytes,
                          seed=scenario.seed * 31 + 17,
                          trace_cache=trace_cache)
    flow_specs = []
    for flow in scenario.flows:
        seed = scenario.seed if flow.seed is None else flow.seed
        path = spec.path(flow.path)
        path_network = EvalNetwork(
            bandwidth_mbps=spec.path_bottleneck_mbps(path.name),
            one_way_ms=spec.path_one_way_ms(path.name),
            packet_bytes=packet_bytes)
        controller = _build_controller(flow, path_network, seed)
        flow_specs.append(FlowSpec(
            controller=controller, start_time=flow.start, stop_time=flow.stop,
            packet_bytes=packet_bytes, mi_duration=scenario.mi_duration,
            path=flow.path))
    return engine_class(scenario.engine)(
        topology, flow_specs, duration=scenario.duration,
        seed=scenario.seed, transit=scenario.transit)


def _coerce_lineups(lineups) -> tuple:
    """Normalise a line-up description to ``((label, (FlowDef, ...)), ...)``.

    Accepts a dict mapping labels to line-ups, or a sequence whose items
    are a scheme name, a :class:`FlowDef`, or a sequence of either.
    """
    if isinstance(lineups, dict):
        items = list(lineups.items())
    else:
        items = [(None, lineup) for lineup in lineups]
    out = []
    seen = set()
    for label, lineup in items:
        if isinstance(lineup, (str, FlowDef)):
            lineup = (lineup,)
        flows = tuple(FlowDef.coerce(f) for f in lineup)
        if label is None:
            label = "+".join(f.display_label() for f in flows)
        if label in seen:
            label = f"{label}#{sum(1 for l, _ in out if l.split('#')[0] == label)}"
        seen.add(label)
        out.append((label, flows))
    return tuple(out)


@dataclass(frozen=True)
class ScenarioSuite:
    """A named grid of scenarios: line-ups x network axes x seeds.

    Axis semantics:

    * ``bandwidths_mbps``, ``losses`` -- the bottleneck's capacity and
      random loss rate;
    * ``rtts_ms`` -- round-trip propagation delay (one-way is half);
    * ``buffers`` -- queue size; ``float`` entries are multiples of the
      BDP, ``int`` entries absolute packets (matching Fig. 5's axes);
    * ``traces`` -- names from the trace registry (``None`` = constant
      bandwidth);
    * ``topologies`` -- :class:`~repro.netsim.topology.TopologySpec`
      entries (``None`` = the single-bottleneck network built from the
      axes above; a spec supersedes bandwidth/RTT/loss/buffer/trace for
      that cell);
    * ``reverse_paths`` -- ack-congestion axis: each entry is ``None``
      (the topology spec as declared) or a mapping of path name to an
      ordered tuple of reverse link names (wire real reverse-path
      queueing) or ``None`` (strip back to the pure-propagation twin at
      the same return propagation delay), applied to the cell's
      topology via :meth:`TopologySpec.with_reverse_paths` -- needs a
      non-``None`` topology;
    * ``faults`` -- ``None`` (fault-free, bit-identical to the golden
      traces) or a mapping of link name to a fault spec / tuple of
      fault specs from :mod:`repro.netsim.faults` (``None``/``()``
      strips a link back to fault-free), applied to the cell's
      topology via :meth:`TopologySpec.with_faults` -- needs a
      non-``None`` topology;
    * ``churns`` -- :class:`ChurnSchedule` entries rewriting the
      line-up's start/stop times (``None`` = the line-up's own times);
    * ``transits`` -- hop-transit schemes (``"event"`` and/or
      ``"eager"``): pairing both runs every cell under the per-hop
      event engine *and* its eager emit-time twin, the grid shape the
      shared-hop divergence benchmarks diff;
    * ``engines`` -- engine cores (``"reference"`` and/or
      ``"kernel"``): pairing both runs every cell under the pure-Python
      reference loop *and* the array-backed kernel, the grid shape the
      bit-identity gate diffs.

    ``expand()`` returns the cross product as concrete
    :class:`Scenario` objects with stable, human-readable names.
    """

    name: str
    lineups: tuple
    bandwidths_mbps: tuple = (20.0,)
    rtts_ms: tuple = (40.0,)
    losses: tuple = (0.0,)
    buffers: tuple = (1.0,)
    traces: tuple = (None,)
    topologies: tuple = (None,)
    reverse_paths: tuple = (None,)
    faults: tuple = (None,)
    churns: tuple = (None,)
    transits: tuple = ("event",)
    engines: tuple = ("reference",)
    seeds: tuple = (0,)
    duration: float = 20.0
    mi_duration: float | None = None
    packet_bytes: int = 1500

    def __post_init__(self):
        object.__setattr__(self, "lineups", _coerce_lineups(self.lineups))
        for axis in ("bandwidths_mbps", "rtts_ms", "losses", "buffers",
                     "traces", "topologies", "reverse_paths", "faults",
                     "churns", "transits", "engines", "seeds"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if any(rev is not None for rev in self.reverse_paths) and \
                any(topo is None for topo in self.topologies):
            raise ValueError("the reverse_paths axis rewires topology "
                             "paths; every topologies entry must be a "
                             "TopologySpec")
        if any(flt is not None for flt in self.faults) and \
                any(topo is None for topo in self.topologies):
            raise ValueError("the faults axis attaches per-link fault "
                             "schedules; every topologies entry must be "
                             "a TopologySpec")

    def __len__(self) -> int:
        return (len(self.lineups) * len(self.bandwidths_mbps) * len(self.rtts_ms)
                * len(self.losses) * len(self.buffers) * len(self.traces)
                * len(self.topologies) * len(self.reverse_paths)
                * len(self.faults) * len(self.churns) * len(self.transits)
                * len(self.engines) * len(self.seeds))

    def _network(self, bandwidth, rtt, loss, buffer, trace) -> EvalNetwork:
        is_packets = isinstance(buffer, (int, np.integer)) and not isinstance(buffer, bool)
        queue_packets = int(buffer) if is_packets else None
        buffer_bdp = float(buffer) if queue_packets is None else 1.0
        return EvalNetwork(bandwidth_mbps=float(bandwidth), one_way_ms=rtt / 2.0,
                           buffer_bdp=buffer_bdp, queue_packets=queue_packets,
                           loss_rate=float(loss), packet_bytes=self.packet_bytes)

    def expand(self) -> list[Scenario]:
        scenarios = []
        axes = [("bw", self.bandwidths_mbps), ("rtt", self.rtts_ms),
                ("loss", self.losses), ("buf", self.buffers),
                ("trace", self.traces), ("topo", self.topologies),
                ("rev", self.reverse_paths), ("faults", self.faults),
                ("churn", self.churns),
                ("transit", self.transits), ("engine", self.engines),
                ("seed", self.seeds)]
        varying = {label for label, values in axes if len(values) > 1}
        for (label, flows), bw, rtt, loss, buf, trace, topo, rev, flt, \
                churn, transit, engine, seed in product(
                self.lineups, self.bandwidths_mbps, self.rtts_ms, self.losses,
                self.buffers, self.traces, self.topologies,
                self.reverse_paths, self.faults, self.churns, self.transits,
                self.engines, self.seeds):
            if rev is not None:
                topo = topo.with_reverse_paths(rev)
            if flt is not None:
                topo = topo.with_faults(flt)
            parts = [label]
            values = {"bw": bw, "rtt": rtt, "loss": loss, "buf": buf,
                      "trace": trace,
                      "topo": topo.name if topo is not None else None,
                      "rev": _reverse_label(rev),
                      "faults": _faults_label(flt),
                      "churn": churn.label() if churn is not None else None,
                      "transit": transit, "engine": engine, "seed": seed}
            for axis in ("bw", "rtt", "loss", "buf", "trace", "topo",
                         "rev", "faults", "churn", "transit", "engine",
                         "seed"):
                if axis in varying:
                    parts.append(f"{axis}={values[axis]}")
            scenarios.append(Scenario(
                name="/".join([self.name] + parts),
                network=self._network(bw, rtt, loss, buf, trace),
                flows=flows, duration=self.duration, seed=int(seed),
                mi_duration=self.mi_duration,
                trace=None if topo is not None else trace,
                topology=topo, churn=churn, transit=transit, engine=engine,
                suite=self.name, lineup=label))
        return scenarios


def _reverse_label(rev) -> str | None:
    """Stable display label for a ``reverse_paths`` axis entry."""
    if rev is None:
        return None
    return ",".join(
        f"{path}:{'+'.join(links) if links is not None else 'prop'}"
        for path, links in sorted(rev.items()))


def _faults_label(flt) -> str | None:
    """Stable display label for a ``faults`` axis entry."""
    if flt is None:
        return None
    parts = []
    for link_name, specs in sorted(flt.items()):
        specs = coerce_faults(specs)
        kinds = "+".join(type(s).__name__ for s in specs) if specs else "none"
        parts.append(f"{link_name}:{kinds}")
    return ",".join(parts)
