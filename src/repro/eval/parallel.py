"""Sharded scenario execution with an incremental on-disk result cache.

Scenario sweeps are embarrassingly parallel (Pantheon-style: every
cell of the condition x scheme matrix is an independent simulation), so
:class:`ParallelRunner` shards the expanded scenarios of a
:class:`~repro.eval.scenarios.ScenarioSuite` across OS processes,
mirroring the picklable-spec idiom of :class:`repro.rl.parallel.EnvSpec`.

Completed scenarios are memoized on disk keyed by
:meth:`Scenario.fingerprint`, so re-runs only pay for the cells that
changed; a second run of an unchanged suite is pure cache reads.
Results aggregate into a tidy :class:`ResultTable` (one row per flow
per scenario) plus the raw per-MI :class:`FlowRecord` streams for the
fairness/CDF analyses.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.eval.batch import BatchRunner, warm_agent_refs
from repro.eval.resilience import (
    MI_FIELDS,
    RECORD_FIELDS,
    ResilientPool,
    RetryPolicy,
    SweepCheckpoint,
    record_from_json,
    record_to_json,
)
from repro.eval.scenarios import (
    SCENARIO_CACHE_VERSION,
    AgentRef,
    Scenario,
    ScenarioSuite,
    simulate_scenario,
)
from repro.netsim.network import FlowRecord

__all__ = ["ParallelRunner", "ResultCache", "ResultTable", "ScenarioError",
           "ScenarioResult", "SuiteResult"]


class ScenarioError(RuntimeError):
    """A scenario failed inside a suite run.

    Carries the scenario name so a 200-cell sweep's failure points at
    the offending cell, not just a worker traceback.
    """

    def __init__(self, scenario_name: str, detail: str = ""):
        self.scenario_name = scenario_name
        message = f"scenario {scenario_name!r} failed"
        if detail:
            message += f": {detail}"
        super().__init__(message)

# Record (de)serialization lives in repro.eval.resilience (shared with
# the checkpoint journal); the old private names stay importable.
_MI_FIELDS = MI_FIELDS
_RECORD_FIELDS = RECORD_FIELDS
_record_to_json = record_to_json
_record_from_json = record_from_json


def _payload_sha(records_payload: list) -> str:
    """Content checksum of a cache entry's serialised record list.

    Canonical-JSON based so it survives a write/parse round trip:
    verifying re-dumps the *parsed* payload and compares, which only
    works because ``json.dumps`` emits shortest-round-trip floats.
    """
    body = json.dumps(records_payload, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


#: Default size cap of the on-disk result cache, megabytes.  Long-lived
#: sweep machines accumulate entries across many suites; without a cap
#: the directory grows without bound.
DEFAULT_CACHE_MAX_MB = 2048.0


class ResultCache:
    """Fingerprint-keyed store of finished scenario results (JSON files).

    The default location is ``repro/eval/_cache`` next to the model
    cache; set ``REPRO_RESULT_CACHE`` to relocate it (CI points it at a
    workspace-local directory).

    The store is a size-capped LRU: ``get`` touches the entry's mtime,
    ``put`` evicts oldest-touched entries once the directory exceeds
    ``max_bytes`` (default :data:`DEFAULT_CACHE_MAX_MB`, overridable
    via ``REPRO_RESULT_CACHE_MAX_MB``; ``0`` disables eviction).
    ``prune()`` is the explicit entry point for maintenance jobs.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_bytes: int | None = None):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_RESULT_CACHE") or (
                Path(__file__).resolve().parent / "_cache")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            env = os.environ.get("REPRO_RESULT_CACHE_MAX_MB")
            max_mb = float(env) if env else DEFAULT_CACHE_MAX_MB
            max_bytes = int(max_mb * 1e6)
        self.max_bytes = int(max_bytes)
        #: Running size estimate so put() only pays a directory scan
        #: when the cap is actually threatened (None = not yet known).
        self._approx_bytes: int | None = None

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so its cell is recomputed.

        The entry is renamed to ``<fingerprint>.quarantined`` -- out of
        the ``*.json`` namespace, so it is never read again and never
        counts against the size cap, but stays inspectable for
        debugging.  ``clear()`` removes quarantined files too.  Racing
        removals are fine: the outcome either way is a cache miss.
        """
        try:
            path.replace(path.with_suffix(".quarantined"))
        except OSError:
            pass

    def get(self, fingerprint: str) -> list[FlowRecord] | None:
        path = self._path(fingerprint)
        if not path.exists():
            return None
        # Unreadable files and stale versions are plain misses; an
        # entry that *parses* but fails its content checksum (torn
        # write, bit rot, concurrent truncation) is quarantined so the
        # cell is recomputed instead of serving corrupt records.
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            version = payload.get("version")
        except ValueError:
            self._quarantine(path)
            return None
        if version != SCENARIO_CACHE_VERSION:
            return None  # stale format: put() will overwrite it
        try:
            body = payload["records"]
            if payload.get("sha") != _payload_sha(body):
                raise ValueError("cache entry failed its content checksum")
            records = [_record_from_json(r) for r in body]
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path)
            return None
        try:
            os.utime(path)  # LRU touch: a hit keeps the entry young
        except OSError:
            pass
        return records

    def put(self, fingerprint: str, name: str, records: list[FlowRecord]) -> None:
        records_payload = [_record_to_json(r) for r in records]
        payload = {"version": SCENARIO_CACHE_VERSION, "name": name,
                   "sha": _payload_sha(records_payload),
                   "records": records_payload}
        path = self._path(fingerprint)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        if self.max_bytes > 0:
            # Amortized eviction: keep a running size estimate and only
            # pay the full directory scan once it crosses the cap (an
            # overwrite counts its size twice, which merely prunes a
            # touch early -- prune() re-measures exactly).
            try:
                if self._approx_bytes is None:
                    total = 0
                    for p in sorted(self.cache_dir.glob("*.json")):
                        total += p.stat().st_size
                    self._approx_bytes = total
                else:
                    self._approx_bytes += path.stat().st_size
            except OSError:
                # A concurrent prune/clear raced the scan; the next
                # put() re-measures from scratch.
                self._approx_bytes = None
                return
            if self._approx_bytes > self.max_bytes:
                self.prune()

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries above the size cap.

        Returns the number of entries removed.  ``max_bytes`` overrides
        the cache's configured cap for this call; a cap <= 0 means
        unbounded (nothing is evicted).
        """
        cap = self.max_bytes if max_bytes is None else int(max_bytes)
        if cap <= 0:
            return 0
        entries = []
        total = 0
        for path in sorted(self.cache_dir.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        removed = 0
        for _, size, path in sorted(entries):
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self._approx_bytes = total
        return removed

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def clear(self) -> int:
        """Delete all entries (quarantined ones included); returns how
        many were removed.  Tolerates entries vanishing concurrently --
        two racing ``clear()`` calls both succeed, splitting the count.
        """
        removed = 0
        doomed = (sorted(self.cache_dir.glob("*.json"))
                  + sorted(self.cache_dir.glob("*.quarantined")))
        for path in doomed:
            try:
                path.unlink()
            except OSError:
                continue  # concurrently removed
            removed += 1
        self._approx_bytes = 0
        return removed


@dataclass
class ScenarioResult:
    """One executed (or cache-served, or failed) scenario."""

    scenario: Scenario
    records: list[FlowRecord]
    cached: bool = False
    elapsed: float = 0.0
    #: Heap events the simulation dispatched (0 for cache-served
    #: results -- no simulation ran).  Feeds the suite-level
    #: events/sec engine-speed metric (see :mod:`repro.eval.perf`).
    events: int = 0
    #: Failure detail when the cell failed inside a budgeted run
    #: (``ParallelRunner(max_failures=...)``); ``None`` for healthy
    #: cells.  Failed cells have no records -- their rows carry the
    #: condition columns plus this error, with metrics left ``None``.
    error: str | None = None

    def rows(self) -> list[dict]:
        net = self.scenario.network
        topo = self.scenario.topology
        rows = []
        if self.error is None:
            pairs = list(zip(self.scenario.flows, self.records))
        else:
            pairs = [(flow, None) for flow in self.scenario.flows]
        for i, (flow, record) in enumerate(pairs):
            if topo is None:
                path = flow.path
                bandwidth = net.bandwidth_mbps
                rtt_ms = 2.0 * net.one_way_ms
                loss = net.loss_rate
                buffer = (net.queue_packets if net.queue_packets is not None
                          else net.buffer_bdp)
            else:
                # The single-link axes are superseded; report what the
                # flow's *path* actually saw.  Buffers are per link
                # (no scalar truth), so that column stays empty.
                path = topo.path(flow.path).name
                bandwidth = topo.path_bottleneck_mbps(path)
                rtt_ms = 1000.0 * topo.path_rtt_s(path)
                loss = topo.path_loss_rate(path)
                buffer = None
            rows.append({
                "suite": self.scenario.suite,
                "scenario": self.scenario.name,
                "lineup": self.scenario.lineup,
                "flow": i,
                "label": flow.display_label(),
                "scheme": flow.scheme,
                "bandwidth_mbps": bandwidth,
                "rtt_ms": rtt_ms,
                "loss": loss,
                "buffer": buffer,
                "trace": self.scenario.trace,
                "topology": topo.name if topo is not None else None,
                "path": path,
                "churn": (self.scenario.churn.label()
                          if self.scenario.churn is not None else None),
                "transit": self.scenario.transit,
                "seed": self.scenario.seed,
                "duration": self.scenario.duration,
                "throughput_pps": (record.mean_throughput_pps
                                   if record is not None else None),
                "throughput_mbps": (record.mean_throughput_mbps
                                    if record is not None else None),
                "utilization": (record.mean_utilization
                                if record is not None else None),
                "latency_ratio": (record.latency_ratio
                                  if record is not None else None),
                "loss_rate": (record.loss_rate
                              if record is not None else None),
                "cached": self.cached,
                "error": self.error,
                # Per-cell engine accounting (0/0.0 for cache-served
                # cells): lets batched and per-process runs be compared
                # cell by cell straight from the table.
                "events": self.events,
                "wall_s": self.elapsed,
            })
        return rows


class ResultTable:
    """Tidy results: one row (a plain dict) per flow per scenario."""

    def __init__(self, rows: list[dict]):
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def filter(self, **equals) -> "ResultTable":
        """Rows matching all ``column=value`` constraints."""
        return ResultTable([r for r in self.rows
                            if all(r.get(k) == v for k, v in equals.items())])

    def values(self, column: str) -> np.ndarray:
        return np.asarray([r[column] for r in self.rows])

    def mean(self, column: str, **equals) -> float:
        table = self.filter(**equals) if equals else self
        return float(np.mean(table.values(column)))

    def pivot(self, index: str, columns: str, values: str) -> tuple:
        """``(row_labels, col_labels, matrix)`` -- means over duplicates."""
        row_labels = list(dict.fromkeys(r[index] for r in self.rows))
        col_labels = list(dict.fromkeys(r[columns] for r in self.rows))
        matrix = np.full((len(row_labels), len(col_labels)), np.nan)
        counts = np.zeros_like(matrix)
        for r in self.rows:
            i, j = row_labels.index(r[index]), col_labels.index(r[columns])
            if counts[i, j] == 0:
                matrix[i, j] = 0.0
            matrix[i, j] += r[values]
            counts[i, j] += 1
        with np.errstate(invalid="ignore"):
            matrix = np.where(counts > 0, matrix / np.maximum(counts, 1), np.nan)
        return row_labels, col_labels, matrix

    def format(self, columns: tuple = ("scenario", "label", "throughput_mbps",
                                       "utilization", "latency_ratio")) -> str:
        widths = [max(len(c), 10) for c in columns]
        lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
        for row in self.rows:
            cells = []
            for c, w in zip(columns, widths):
                value = row.get(c, "")
                text = f"{value:.3f}" if isinstance(value, float) else str(value)
                cells.append(text.ljust(w))
            lines.append("  ".join(cells))
        return "\n".join(lines)


@dataclass
class SuiteResult:
    """All scenario results of one runner invocation."""

    results: list[ScenarioResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def table(self) -> ResultTable:
        return ResultTable([row for result in self.results
                            for row in result.rows()])

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def total_events(self) -> int:
        """Heap events dispatched by the suite's *executed* cells."""
        return sum(r.events for r in self.results if not r.cached)

    @property
    def events_per_sec(self) -> float | None:
        """Aggregate engine speed over executed cells, events per
        *simulation* second (per-cell measured wall, so the number is
        comparable between serial and sharded runs; ``None`` when the
        whole suite was cache-served)."""
        sim_wall = sum(r.elapsed for r in self.results if not r.cached)
        if sim_wall <= 0:
            return None
        return self.total_events / sim_wall

    def records_for(self, name: str) -> list[FlowRecord]:
        for result in self.results:
            if result.scenario.name == name:
                return result.records
        raise KeyError(f"no scenario named {name!r}")

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _execute(scenario: Scenario) -> tuple[list[FlowRecord], float, int]:
    t0 = time.perf_counter()
    records, sim = simulate_scenario(scenario)
    return records, time.perf_counter() - t0, sim.events_processed


#: Cell batches staged for the forked pool, as lists of positions into
#: the pending list.  Workers index into the parent's copy-on-write
#: memory instead of receiving pickled scenarios -- live agents
#: embedded in a FlowDef would otherwise be serialised through the IPC
#: pipe once per task.
_FORK_BATCHES: list[list[int]] = []
_FORK_SCENARIOS: list[Scenario] = []
_FORK_WARM_REFS: tuple[AgentRef, ...] = ()


def _init_batch_worker() -> None:
    """Once-per-worker initializer: resolve the suite's agent refs.

    Under the fork start method the zoo memo is usually already warm
    (the parent resolves before forking, children inherit through
    copy-on-write), so this is a set of dict hits; under a cold child
    it loads each agent exactly once.  Either way no batch task ever
    re-resolves refs itself (``BatchRunner(prewarm=False)`` below).
    """
    for ref in _FORK_WARM_REFS:
        ref.resolve()


def _execute_batch(batch_index: int):
    """Worker entry point: one batch -> per-cell ``(position, payload,
    error)`` triples.

    Failures come back as strings instead of raised exceptions so the
    parent can decide (per its ``early_abort`` setting) whether one bad
    cell cancels the rest of the suite -- and so unpicklable exception
    objects never wedge the result pipe.  A failing cell never takes
    its batch siblings with it: ``BatchRunner`` isolates errors per
    cell.
    """
    positions = _FORK_BATCHES[batch_index]
    runner = BatchRunner(prewarm=False)
    cells = runner.run([_FORK_SCENARIOS[p] for p in positions])
    out = []
    for position, cell in zip(positions, cells):
        if cell.error is not None:
            out.append((position, None, cell.error))
        else:
            out.append((position,
                        (cell.records, cell.elapsed, cell.events), None))
    return out


class ParallelRunner:
    """Execute scenario suites across processes with result memoization.

    ``n_workers <= 1`` runs in-process (the reference serial path);
    results are bit-identical either way because every scenario is a
    self-contained, seeded simulation.  Workers are forked per ``run``
    call *after* agent references resolve in the parent, so children
    inherit the loaded models through copy-on-write memory instead of
    re-reading (or worse, re-training) them.

    Pending cells are dispatched to workers in *batches* executed by
    :class:`~repro.eval.batch.BatchRunner` -- interleaved event loops
    sharing frozen per-batch assets -- rather than one pool task per
    cell; ``batch_size=None`` picks a size that still leaves several
    tasks per worker for load balancing.  Cache semantics are
    unchanged: hits and misses, fingerprint keys, and result rows are
    all per cell.

    A failing scenario raises :class:`ScenarioError` naming the cell.
    With ``early_abort=True`` batching is disabled (cells dispatch
    one-per-task, exactly the pre-batching shape) so the first failure
    cancels outstanding shards immediately -- the pool is torn down,
    queued cells never start; otherwise the rest of the suite
    completes -- and is cached -- before the error is raised.
    ``max_failures`` trades that hard stop for a budget: up to that
    many failed cells are recorded as result rows carrying an
    ``error`` column (metrics ``None``) and the run succeeds; the
    failure past the budget aborts as before.

    Resilience knobs (all off by default -- the default dispatch path
    is byte-for-byte the classic ``multiprocessing.Pool``):

    * ``retry=RetryPolicy(...)`` and/or ``cell_timeout=seconds``
      switch multi-worker dispatch to
      :class:`~repro.eval.resilience.ResilientPool`: a worker that
      crashes or blows its deadline (``cell_timeout`` x cells in the
      batch) is respawned and the batch re-run within the retry
      budget, then reported as failed cells.  Results are bit-identical
      to the classic pool -- cells are pure seeded simulations.
    * ``checkpoint=path`` journals every completed cell to a
      :class:`~repro.eval.resilience.SweepCheckpoint`; re-running the
      same suite resumes from the completed cells with their original
      records, wall times, and event counts (row-for-row identical to
      an uninterrupted run).  ``REPRO_SWEEP_CHECKPOINT`` supplies a
      default path.  The journal only ever affects *which cells
      execute*, never their results.
    """

    #: Auto batch sizing: leave at least this many batches per worker
    #: so one slow batch cannot idle the rest of the pool...
    AUTO_BATCHES_PER_WORKER = 3
    #: ...and never interleave more cells than this in one process
    #: (bounds resident simulations per worker).
    MAX_AUTO_BATCH = 16

    def __init__(self, n_workers: int | None = None,
                 cache_dir: str | Path | None = None, use_cache: bool = True,
                 early_abort: bool = False,
                 cache_max_bytes: int | None = None,
                 batch_size: int | None = None,
                 max_failures: int | None = None,
                 cell_timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 checkpoint: str | Path | None = None):
        if n_workers is None:
            n_workers = max(1, min(mp.cpu_count(), 8))
        self.n_workers = int(n_workers)
        self.cache = (ResultCache(cache_dir, max_bytes=cache_max_bytes)
                      if use_cache else None)
        self.early_abort = bool(early_abort)
        if batch_size is not None and int(batch_size) < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = None if batch_size is None else int(batch_size)
        if max_failures is not None and int(max_failures) < 0:
            raise ValueError("max_failures must be >= 0")
        self.max_failures = (None if max_failures is None
                             else int(max_failures))
        if cell_timeout is not None and float(cell_timeout) <= 0.0:
            raise ValueError("cell_timeout must be positive")
        self.cell_timeout = (None if cell_timeout is None
                             else float(cell_timeout))
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")
        self.retry = retry
        if checkpoint is None:
            # Checkpoint location never reaches a simulation: it only
            # decides which already-journaled cells are skipped.
            checkpoint = os.environ.get("REPRO_SWEEP_CHECKPOINT") or None
        self.checkpoint_path = None if checkpoint is None else Path(checkpoint)

    def _warm_agents(self, scenarios: list[Scenario]) -> None:
        warm_agent_refs(scenarios)

    def _pick_batch_size(self, n_pending: int) -> int:
        if self.early_abort:
            return 1
        if self.batch_size is not None:
            return self.batch_size
        shards = max(1, self.n_workers) * self.AUTO_BATCHES_PER_WORKER
        return max(1, min(self.MAX_AUTO_BATCH, -(-n_pending // shards)))

    def run(self, suite) -> SuiteResult:
        """Run a :class:`ScenarioSuite`, scenario list, or single scenario."""
        if isinstance(suite, ScenarioSuite):
            scenarios = suite.expand()
        elif isinstance(suite, Scenario):
            scenarios = [suite]
        else:
            scenarios = list(suite)
        t0 = time.perf_counter()

        checkpoint: SweepCheckpoint | None = None
        restored: dict[int, tuple] = {}
        fingerprints: list[str | None] = [None] * len(scenarios)
        if self.checkpoint_path is not None:
            fingerprints = [s.fingerprint() for s in scenarios]
            checkpoint = SweepCheckpoint(self.checkpoint_path)
            restored = checkpoint.resume(fingerprints)

        try:
            return self._run_cells(scenarios, fingerprints, restored,
                                   checkpoint, t0)
        finally:
            if checkpoint is not None:
                checkpoint.close()

    def _run_cells(self, scenarios, fingerprints, restored, checkpoint, t0):
        results: dict[int, ScenarioResult] = {}
        pending: list[tuple[int, Scenario, str | None]] = []
        for idx, scenario in enumerate(scenarios):
            if idx in restored:
                # Journaled by an earlier (interrupted) run: restore
                # the original records, wall time, and event count so
                # the resumed table is row-for-row what an
                # uninterrupted run would have produced.
                records, elapsed, events = restored[idx]
                results[idx] = ScenarioResult(scenario, records,
                                              elapsed=elapsed, events=events)
                continue
            fingerprint = fingerprints[idx]
            if fingerprint is None and self.cache:
                fingerprint = scenario.fingerprint()
            cached = self.cache.get(fingerprint) if self.cache else None
            if cached is not None:
                results[idx] = ScenarioResult(scenario, cached, cached=True)
            else:
                pending.append((idx, scenario, fingerprint))

        if pending:
            self._warm_agents([s for _, s, _ in pending])
            failures: list[tuple[int, str, str]] = []

            def record_result(position: int, payload, error: str | None):
                idx, scenario, fingerprint = pending[position]
                if error is not None:
                    failures.append((position, scenario.name, error))
                    if self.early_abort:
                        # Raising inside the pool's with-block terminates
                        # it, cancelling every shard not yet started.
                        raise ScenarioError(scenario.name, error)
                    if (self.max_failures is not None
                            and len(failures) > self.max_failures):
                        raise ScenarioError(
                            scenario.name,
                            f"{error} (failure budget "
                            f"max_failures={self.max_failures} exhausted)")
                    results[idx] = ScenarioResult(scenario, [], error=error)
                    return
                records, elapsed, events = payload
                results[idx] = ScenarioResult(scenario, records,
                                              elapsed=elapsed, events=events)
                if self.cache:
                    self.cache.put(fingerprint, scenario.name, records)
                if checkpoint is not None:
                    checkpoint.record(idx, fingerprint, records,
                                      elapsed, events)

            batch_size = self._pick_batch_size(len(pending))
            batches = [list(range(start, min(start + batch_size,
                                             len(pending))))
                       for start in range(0, len(pending), batch_size)]

            if self.n_workers > 1 and len(batches) > 1:
                global _FORK_BATCHES, _FORK_SCENARIOS, _FORK_WARM_REFS
                _FORK_SCENARIOS = [s for _, s, _ in pending]
                _FORK_BATCHES = batches
                _FORK_WARM_REFS = tuple(sorted(
                    {flow.agent for s in _FORK_SCENARIOS for flow in s.flows
                     if isinstance(flow.agent, AgentRef)}, key=AgentRef.key))
                try:
                    if self.retry is not None or self.cell_timeout is not None:
                        self._run_resilient(batches, record_result)
                    else:
                        self._run_pool(batches, record_result)
                finally:
                    _FORK_BATCHES = []
                    _FORK_SCENARIOS = []
                    _FORK_WARM_REFS = ()
            else:
                # Serial reference path: same BatchRunner, in process.
                # The parent already warmed the zoo above.
                runner = BatchRunner(prewarm=False)
                for batch in batches:
                    cells = runner.run([pending[p][1] for p in batch])
                    for position, cell in zip(batch, cells):
                        if cell.error is not None:
                            record_result(position, None, cell.error)
                        else:
                            record_result(
                                position,
                                (cell.records, cell.elapsed, cell.events),
                                None)

            if failures and self.max_failures is None:
                failures.sort()
                _, name, error = failures[0]
                detail = error if len(failures) == 1 else (
                    f"{error} (+{len(failures) - 1} more failed cells)")
                raise ScenarioError(name, detail)

        ordered = [results[idx] for idx in range(len(scenarios))]
        return SuiteResult(results=ordered, elapsed=time.perf_counter() - t0)

    def _run_pool(self, batches: list[list[int]], record_result) -> None:
        """Classic dispatch: ``multiprocessing.Pool`` over batches."""
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=min(self.n_workers, len(batches)),
                      initializer=_init_batch_worker) as pool:
            # Unordered so completed batches cache (and abort checks
            # run) as they land, not in shard order.
            for batch_results in pool.imap_unordered(
                    _execute_batch, range(len(batches)), chunksize=1):
                for position, payload, error in batch_results:
                    record_result(position, payload, error)

    def _run_resilient(self, batches: list[list[int]],
                       record_result) -> None:
        """Crash/timeout-tolerant dispatch via ResilientPool.

        The batch deadline scales with its size (``cell_timeout`` is
        per cell).  A batch whose retry budget is exhausted -- or that
        dies on a deterministic worker fault with retries disabled --
        reports every one of its cells as failed.
        """
        pool = ResilientPool(min(self.n_workers, len(batches)),
                             _execute_batch,
                             initializer=_init_batch_worker,
                             retry=self.retry)
        tasks = []
        for index, batch in enumerate(batches):
            timeout = (None if self.cell_timeout is None
                       else self.cell_timeout * len(batch))
            tasks.append((index, index, timeout))
        for index, batch_results, error in pool.execute(tasks):
            if batch_results is None:
                for position in batches[index]:
                    record_result(position, None,
                                  error or "batch produced no result")
            else:
                for position, payload, cell_error in batch_results:
                    record_result(position, payload, cell_error)
