"""Sharded scenario execution with an incremental on-disk result cache.

Scenario sweeps are embarrassingly parallel (Pantheon-style: every
cell of the condition x scheme matrix is an independent simulation), so
:class:`ParallelRunner` shards the expanded scenarios of a
:class:`~repro.eval.scenarios.ScenarioSuite` across OS processes,
mirroring the picklable-spec idiom of :class:`repro.rl.parallel.EnvSpec`.

Completed scenarios are memoized on disk keyed by
:meth:`Scenario.fingerprint`, so re-runs only pay for the cells that
changed; a second run of an unchanged suite is pure cache reads.
Results aggregate into a tidy :class:`ResultTable` (one row per flow
per scenario) plus the raw per-MI :class:`FlowRecord` streams for the
fairness/CDF analyses.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.eval.batch import BatchRunner, warm_agent_refs
from repro.eval.scenarios import (
    SCENARIO_CACHE_VERSION,
    AgentRef,
    Scenario,
    ScenarioSuite,
    simulate_scenario,
)
from repro.netsim.network import FlowRecord
from repro.netsim.sender import MonitorIntervalStats

__all__ = ["ParallelRunner", "ResultCache", "ResultTable", "ScenarioError",
           "ScenarioResult", "SuiteResult"]


class ScenarioError(RuntimeError):
    """A scenario failed inside a suite run.

    Carries the scenario name so a 200-cell sweep's failure points at
    the offending cell, not just a worker traceback.
    """

    def __init__(self, scenario_name: str, detail: str = ""):
        self.scenario_name = scenario_name
        message = f"scenario {scenario_name!r} failed"
        if detail:
            message += f": {detail}"
        super().__init__(message)

#: Per-monitor-interval fields persisted in the result cache.
_MI_FIELDS = ("flow_id", "start", "end", "sent", "acked", "lost", "mean_rtt",
              "min_rtt", "latency_gradient", "capacity_pps", "base_rtt",
              "packet_bytes", "rate_pps")
_RECORD_FIELDS = ("flow_id", "scheme", "mean_throughput_pps",
                  "mean_throughput_mbps", "mean_utilization", "mean_rtt",
                  "base_rtt", "loss_rate")


def _record_to_json(record: FlowRecord) -> dict:
    payload = {name: getattr(record, name) for name in _RECORD_FIELDS}
    payload["records"] = [[getattr(s, name) for name in _MI_FIELDS]
                          for s in record.records]
    return payload


def _record_from_json(payload: dict) -> FlowRecord:
    stats = [MonitorIntervalStats(**dict(zip(_MI_FIELDS, row)))
             for row in payload["records"]]
    fields = {name: payload[name] for name in _RECORD_FIELDS}
    return FlowRecord(records=stats, **fields)


#: Default size cap of the on-disk result cache, megabytes.  Long-lived
#: sweep machines accumulate entries across many suites; without a cap
#: the directory grows without bound.
DEFAULT_CACHE_MAX_MB = 2048.0


class ResultCache:
    """Fingerprint-keyed store of finished scenario results (JSON files).

    The default location is ``repro/eval/_cache`` next to the model
    cache; set ``REPRO_RESULT_CACHE`` to relocate it (CI points it at a
    workspace-local directory).

    The store is a size-capped LRU: ``get`` touches the entry's mtime,
    ``put`` evicts oldest-touched entries once the directory exceeds
    ``max_bytes`` (default :data:`DEFAULT_CACHE_MAX_MB`, overridable
    via ``REPRO_RESULT_CACHE_MAX_MB``; ``0`` disables eviction).
    ``prune()`` is the explicit entry point for maintenance jobs.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_bytes: int | None = None):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_RESULT_CACHE") or (
                Path(__file__).resolve().parent / "_cache")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            env = os.environ.get("REPRO_RESULT_CACHE_MAX_MB")
            max_mb = float(env) if env else DEFAULT_CACHE_MAX_MB
            max_bytes = int(max_mb * 1e6)
        self.max_bytes = int(max_bytes)
        #: Running size estimate so put() only pays a directory scan
        #: when the cap is actually threatened (None = not yet known).
        self._approx_bytes: int | None = None

    def _path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> list[FlowRecord] | None:
        path = self._path(fingerprint)
        if not path.exists():
            return None
        # Any unreadable/stale/truncated entry is just a cache miss.
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != SCENARIO_CACHE_VERSION:
                return None
            records = [_record_from_json(r) for r in payload["records"]]
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None
        try:
            os.utime(path)  # LRU touch: a hit keeps the entry young
        except OSError:
            pass
        return records

    def put(self, fingerprint: str, name: str, records: list[FlowRecord]) -> None:
        payload = {"version": SCENARIO_CACHE_VERSION, "name": name,
                   "records": [_record_to_json(r) for r in records]}
        path = self._path(fingerprint)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        if self.max_bytes > 0:
            # Amortized eviction: keep a running size estimate and only
            # pay the full directory scan once it crosses the cap (an
            # overwrite counts its size twice, which merely prunes a
            # touch early -- prune() re-measures exactly).
            if self._approx_bytes is None:
                self._approx_bytes = sum(
                    p.stat().st_size
                    for p in sorted(self.cache_dir.glob("*.json")))
            else:
                self._approx_bytes += path.stat().st_size
            if self._approx_bytes > self.max_bytes:
                self.prune()

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries above the size cap.

        Returns the number of entries removed.  ``max_bytes`` overrides
        the cache's configured cap for this call; a cap <= 0 means
        unbounded (nothing is evicted).
        """
        cap = self.max_bytes if max_bytes is None else int(max_bytes)
        if cap <= 0:
            return 0
        entries = []
        total = 0
        for path in sorted(self.cache_dir.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        removed = 0
        for _, size, path in sorted(entries):
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self._approx_bytes = total
        return removed

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for path in sorted(self.cache_dir.glob("*.json")):
            path.unlink()
            removed += 1
        self._approx_bytes = 0
        return removed


@dataclass
class ScenarioResult:
    """One executed (or cache-served) scenario."""

    scenario: Scenario
    records: list[FlowRecord]
    cached: bool = False
    elapsed: float = 0.0
    #: Heap events the simulation dispatched (0 for cache-served
    #: results -- no simulation ran).  Feeds the suite-level
    #: events/sec engine-speed metric (see :mod:`repro.eval.perf`).
    events: int = 0

    def rows(self) -> list[dict]:
        net = self.scenario.network
        topo = self.scenario.topology
        rows = []
        for i, (flow, record) in enumerate(zip(self.scenario.flows, self.records)):
            if topo is None:
                path = flow.path
                bandwidth = net.bandwidth_mbps
                rtt_ms = 2.0 * net.one_way_ms
                loss = net.loss_rate
                buffer = (net.queue_packets if net.queue_packets is not None
                          else net.buffer_bdp)
            else:
                # The single-link axes are superseded; report what the
                # flow's *path* actually saw.  Buffers are per link
                # (no scalar truth), so that column stays empty.
                path = topo.path(flow.path).name
                bandwidth = topo.path_bottleneck_mbps(path)
                rtt_ms = 1000.0 * topo.path_rtt_s(path)
                loss = topo.path_loss_rate(path)
                buffer = None
            rows.append({
                "suite": self.scenario.suite,
                "scenario": self.scenario.name,
                "lineup": self.scenario.lineup,
                "flow": i,
                "label": flow.display_label(),
                "scheme": flow.scheme,
                "bandwidth_mbps": bandwidth,
                "rtt_ms": rtt_ms,
                "loss": loss,
                "buffer": buffer,
                "trace": self.scenario.trace,
                "topology": topo.name if topo is not None else None,
                "path": path,
                "churn": (self.scenario.churn.label()
                          if self.scenario.churn is not None else None),
                "transit": self.scenario.transit,
                "seed": self.scenario.seed,
                "duration": self.scenario.duration,
                "throughput_pps": record.mean_throughput_pps,
                "throughput_mbps": record.mean_throughput_mbps,
                "utilization": record.mean_utilization,
                "latency_ratio": record.latency_ratio,
                "loss_rate": record.loss_rate,
                "cached": self.cached,
                # Per-cell engine accounting (0/0.0 for cache-served
                # cells): lets batched and per-process runs be compared
                # cell by cell straight from the table.
                "events": self.events,
                "wall_s": self.elapsed,
            })
        return rows


class ResultTable:
    """Tidy results: one row (a plain dict) per flow per scenario."""

    def __init__(self, rows: list[dict]):
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def filter(self, **equals) -> "ResultTable":
        """Rows matching all ``column=value`` constraints."""
        return ResultTable([r for r in self.rows
                            if all(r.get(k) == v for k, v in equals.items())])

    def values(self, column: str) -> np.ndarray:
        return np.asarray([r[column] for r in self.rows])

    def mean(self, column: str, **equals) -> float:
        table = self.filter(**equals) if equals else self
        return float(np.mean(table.values(column)))

    def pivot(self, index: str, columns: str, values: str) -> tuple:
        """``(row_labels, col_labels, matrix)`` -- means over duplicates."""
        row_labels = list(dict.fromkeys(r[index] for r in self.rows))
        col_labels = list(dict.fromkeys(r[columns] for r in self.rows))
        matrix = np.full((len(row_labels), len(col_labels)), np.nan)
        counts = np.zeros_like(matrix)
        for r in self.rows:
            i, j = row_labels.index(r[index]), col_labels.index(r[columns])
            if counts[i, j] == 0:
                matrix[i, j] = 0.0
            matrix[i, j] += r[values]
            counts[i, j] += 1
        with np.errstate(invalid="ignore"):
            matrix = np.where(counts > 0, matrix / np.maximum(counts, 1), np.nan)
        return row_labels, col_labels, matrix

    def format(self, columns: tuple = ("scenario", "label", "throughput_mbps",
                                       "utilization", "latency_ratio")) -> str:
        widths = [max(len(c), 10) for c in columns]
        lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
        for row in self.rows:
            cells = []
            for c, w in zip(columns, widths):
                value = row.get(c, "")
                text = f"{value:.3f}" if isinstance(value, float) else str(value)
                cells.append(text.ljust(w))
            lines.append("  ".join(cells))
        return "\n".join(lines)


@dataclass
class SuiteResult:
    """All scenario results of one runner invocation."""

    results: list[ScenarioResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def table(self) -> ResultTable:
        return ResultTable([row for result in self.results
                            for row in result.rows()])

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def total_events(self) -> int:
        """Heap events dispatched by the suite's *executed* cells."""
        return sum(r.events for r in self.results if not r.cached)

    @property
    def events_per_sec(self) -> float | None:
        """Aggregate engine speed over executed cells, events per
        *simulation* second (per-cell measured wall, so the number is
        comparable between serial and sharded runs; ``None`` when the
        whole suite was cache-served)."""
        sim_wall = sum(r.elapsed for r in self.results if not r.cached)
        if sim_wall <= 0:
            return None
        return self.total_events / sim_wall

    def records_for(self, name: str) -> list[FlowRecord]:
        for result in self.results:
            if result.scenario.name == name:
                return result.records
        raise KeyError(f"no scenario named {name!r}")

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _execute(scenario: Scenario) -> tuple[list[FlowRecord], float, int]:
    t0 = time.perf_counter()
    records, sim = simulate_scenario(scenario)
    return records, time.perf_counter() - t0, sim.events_processed


#: Cell batches staged for the forked pool, as lists of positions into
#: the pending list.  Workers index into the parent's copy-on-write
#: memory instead of receiving pickled scenarios -- live agents
#: embedded in a FlowDef would otherwise be serialised through the IPC
#: pipe once per task.
_FORK_BATCHES: list[list[int]] = []
_FORK_SCENARIOS: list[Scenario] = []
_FORK_WARM_REFS: tuple[AgentRef, ...] = ()


def _init_batch_worker() -> None:
    """Once-per-worker initializer: resolve the suite's agent refs.

    Under the fork start method the zoo memo is usually already warm
    (the parent resolves before forking, children inherit through
    copy-on-write), so this is a set of dict hits; under a cold child
    it loads each agent exactly once.  Either way no batch task ever
    re-resolves refs itself (``BatchRunner(prewarm=False)`` below).
    """
    for ref in _FORK_WARM_REFS:
        ref.resolve()


def _execute_batch(batch_index: int):
    """Worker entry point: one batch -> per-cell ``(position, payload,
    error)`` triples.

    Failures come back as strings instead of raised exceptions so the
    parent can decide (per its ``early_abort`` setting) whether one bad
    cell cancels the rest of the suite -- and so unpicklable exception
    objects never wedge the result pipe.  A failing cell never takes
    its batch siblings with it: ``BatchRunner`` isolates errors per
    cell.
    """
    positions = _FORK_BATCHES[batch_index]
    runner = BatchRunner(prewarm=False)
    cells = runner.run([_FORK_SCENARIOS[p] for p in positions])
    out = []
    for position, cell in zip(positions, cells):
        if cell.error is not None:
            out.append((position, None, cell.error))
        else:
            out.append((position,
                        (cell.records, cell.elapsed, cell.events), None))
    return out


class ParallelRunner:
    """Execute scenario suites across processes with result memoization.

    ``n_workers <= 1`` runs in-process (the reference serial path);
    results are bit-identical either way because every scenario is a
    self-contained, seeded simulation.  Workers are forked per ``run``
    call *after* agent references resolve in the parent, so children
    inherit the loaded models through copy-on-write memory instead of
    re-reading (or worse, re-training) them.

    Pending cells are dispatched to workers in *batches* executed by
    :class:`~repro.eval.batch.BatchRunner` -- interleaved event loops
    sharing frozen per-batch assets -- rather than one pool task per
    cell; ``batch_size=None`` picks a size that still leaves several
    tasks per worker for load balancing.  Cache semantics are
    unchanged: hits and misses, fingerprint keys, and result rows are
    all per cell.

    A failing scenario raises :class:`ScenarioError` naming the cell.
    With ``early_abort=True`` batching is disabled (cells dispatch
    one-per-task, exactly the pre-batching shape) so the first failure
    cancels outstanding shards immediately -- the pool is torn down,
    queued cells never start; otherwise the rest of the suite
    completes -- and is cached -- before the error is raised.
    """

    #: Auto batch sizing: leave at least this many batches per worker
    #: so one slow batch cannot idle the rest of the pool...
    AUTO_BATCHES_PER_WORKER = 3
    #: ...and never interleave more cells than this in one process
    #: (bounds resident simulations per worker).
    MAX_AUTO_BATCH = 16

    def __init__(self, n_workers: int | None = None,
                 cache_dir: str | Path | None = None, use_cache: bool = True,
                 early_abort: bool = False,
                 cache_max_bytes: int | None = None,
                 batch_size: int | None = None):
        if n_workers is None:
            n_workers = max(1, min(mp.cpu_count(), 8))
        self.n_workers = int(n_workers)
        self.cache = (ResultCache(cache_dir, max_bytes=cache_max_bytes)
                      if use_cache else None)
        self.early_abort = bool(early_abort)
        if batch_size is not None and int(batch_size) < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = None if batch_size is None else int(batch_size)

    def _warm_agents(self, scenarios: list[Scenario]) -> None:
        warm_agent_refs(scenarios)

    def _pick_batch_size(self, n_pending: int) -> int:
        if self.early_abort:
            return 1
        if self.batch_size is not None:
            return self.batch_size
        shards = max(1, self.n_workers) * self.AUTO_BATCHES_PER_WORKER
        return max(1, min(self.MAX_AUTO_BATCH, -(-n_pending // shards)))

    def run(self, suite) -> SuiteResult:
        """Run a :class:`ScenarioSuite`, scenario list, or single scenario."""
        if isinstance(suite, ScenarioSuite):
            scenarios = suite.expand()
        elif isinstance(suite, Scenario):
            scenarios = [suite]
        else:
            scenarios = list(suite)
        t0 = time.perf_counter()

        results: dict[int, ScenarioResult] = {}
        pending: list[tuple[int, Scenario, str | None]] = []
        for idx, scenario in enumerate(scenarios):
            fingerprint = scenario.fingerprint() if self.cache else None
            cached = self.cache.get(fingerprint) if self.cache else None
            if cached is not None:
                results[idx] = ScenarioResult(scenario, cached, cached=True)
            else:
                pending.append((idx, scenario, fingerprint))

        if pending:
            self._warm_agents([s for _, s, _ in pending])
            failures: list[tuple[int, str, str]] = []

            def record_result(position: int, payload, error: str | None):
                idx, scenario, fingerprint = pending[position]
                if error is not None:
                    failures.append((position, scenario.name, error))
                    if self.early_abort:
                        # Raising inside the pool's with-block terminates
                        # it, cancelling every shard not yet started.
                        raise ScenarioError(scenario.name, error)
                    return
                records, elapsed, events = payload
                results[idx] = ScenarioResult(scenario, records,
                                              elapsed=elapsed, events=events)
                if self.cache:
                    self.cache.put(fingerprint, scenario.name, records)

            batch_size = self._pick_batch_size(len(pending))
            batches = [list(range(start, min(start + batch_size,
                                             len(pending))))
                       for start in range(0, len(pending), batch_size)]

            if self.n_workers > 1 and len(batches) > 1:
                global _FORK_BATCHES, _FORK_SCENARIOS, _FORK_WARM_REFS
                _FORK_SCENARIOS = [s for _, s, _ in pending]
                _FORK_BATCHES = batches
                _FORK_WARM_REFS = tuple(sorted(
                    {flow.agent for s in _FORK_SCENARIOS for flow in s.flows
                     if isinstance(flow.agent, AgentRef)}, key=AgentRef.key))
                try:
                    ctx = mp.get_context("fork")
                    with ctx.Pool(processes=min(self.n_workers, len(batches)),
                                  initializer=_init_batch_worker) as pool:
                        # Unordered so completed batches cache (and
                        # abort checks run) as they land, not in shard
                        # order.
                        for batch_results in pool.imap_unordered(
                                _execute_batch, range(len(batches)),
                                chunksize=1):
                            for position, payload, error in batch_results:
                                record_result(position, payload, error)
                finally:
                    _FORK_BATCHES = []
                    _FORK_SCENARIOS = []
                    _FORK_WARM_REFS = ()
            else:
                # Serial reference path: same BatchRunner, in process.
                # The parent already warmed the zoo above.
                runner = BatchRunner(prewarm=False)
                for batch in batches:
                    cells = runner.run([pending[p][1] for p in batch])
                    for position, cell in zip(batch, cells):
                        if cell.error is not None:
                            record_result(position, None, cell.error)
                        else:
                            record_result(
                                position,
                                (cell.records, cell.elapsed, cell.events),
                                None)

            if failures:
                failures.sort()
                _, name, error = failures[0]
                detail = error if len(failures) == 1 else (
                    f"{error} (+{len(failures) - 1} more failed cells)")
                raise ScenarioError(name, detail)

        ordered = [results[idx] for idx in range(len(scenarios))]
        return SuiteResult(results=ordered, elapsed=time.perf_counter() - t0)
