"""Evaluation harness: runners, metrics and figure-data generators.

Every table/figure in the paper's §6 is regenerated from these pieces:

* :mod:`repro.eval.runner` -- run one scheme on one network, collect
  :class:`FlowRecord` aggregates; run competing flows on shared links.
* :mod:`repro.eval.metrics` -- link utilization, latency ratio, Jain's
  fairness index, friendliness ratio, reward statistics.
* :mod:`repro.eval.scenarios` -- declarative scenarios and suite grids.
* :mod:`repro.eval.parallel` -- sharded suite execution + result cache.
* :mod:`repro.eval.sweeps` -- the Fig. 5 parameter sweeps and the
  multi-bottleneck + churn grids beyond the paper's evaluation.
* :mod:`repro.eval.perf` -- engine-speed profiling: events/sec and
  cells/sec on the standard shapes (the BENCH_engine harness).
* :mod:`repro.eval.gaussian` -- 1-sigma ellipses for Fig. 1(b).
* :mod:`repro.eval.cdf` -- empirical CDFs (Figs. 6, 12, 16, 18).
* :mod:`repro.eval.overhead` -- control-loop CPU cost (Fig. 17).
"""

from repro.eval.runner import (
    EvalNetwork,
    build_competition,
    run_competition,
    run_scheme,
    scheme_factory,
)
from repro.eval.scenarios import (
    AgentRef,
    ChurnSchedule,
    FlowDef,
    Scenario,
    ScenarioSuite,
    build_scenario_simulation,
    run_scenario,
    simulate_scenario,
)
from repro.eval.parallel import (
    ParallelRunner,
    ResultCache,
    ResultTable,
    ScenarioError,
    ScenarioResult,
    SuiteResult,
)
from repro.eval.metrics import (
    friendliness_ratio,
    jain_index,
    jain_index_series,
    reward_of_record,
)
from repro.eval.gaussian import sigma_ellipse
from repro.eval.cdf import empirical_cdf
from repro.eval.sweeps import (
    SweepResult,
    ack_congestion_suite,
    multihop_churn_suite,
    shared_hop_suites,
    sweep_schemes,
)

__all__ = [
    "EvalNetwork",
    "run_scheme",
    "run_competition",
    "scheme_factory",
    "jain_index",
    "jain_index_series",
    "friendliness_ratio",
    "reward_of_record",
    "sigma_ellipse",
    "empirical_cdf",
    "SweepResult",
    "sweep_schemes",
    "multihop_churn_suite",
    "ack_congestion_suite",
    "shared_hop_suites",
    "AgentRef",
    "ChurnSchedule",
    "FlowDef",
    "Scenario",
    "ScenarioSuite",
    "run_scenario",
    "ParallelRunner",
    "ResultCache",
    "ResultTable",
    "ScenarioError",
    "ScenarioResult",
    "SuiteResult",
]
