"""Parameter sweeps for the multi-objective performance study (Fig. 5).

Fig. 5 evaluates every scheme while varying one network parameter at a
time -- bandwidth (10-50 Mbps), one-way latency (10-200 ms), random
loss (0-10 %) and buffer size (500-5000 packets) -- reporting link
utilization for the throughput objective and latency ratio for the
latency objective.  The evaluation ranges deliberately exceed the
training ranges (Table 3) to probe robustness.

Sweeps are expressed as :class:`~repro.eval.scenarios.ScenarioSuite`
grids and executed through a :class:`~repro.eval.parallel.ParallelRunner`,
so they shard across cores and memoize per-scenario results; the
default runner (serial, uncached) reproduces the historical behaviour
exactly.

Beyond the paper's single-bottleneck grids, :func:`multihop_churn_suite`
declares parking-lot (multi-bottleneck) contention with churning cross
traffic over the ``topologies``/``churns`` axes -- the workload family
the paper's evaluation omits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.eval.parallel import ParallelRunner
from repro.eval.runner import EvalNetwork
from repro.eval.scenarios import ChurnSchedule, FlowDef, ScenarioSuite
from repro.netsim.topology import (
    LinkDef,
    PathDef,
    TopologySpec,
    dumbbell_asymmetric,
    parking_lot,
)

__all__ = ["SweepResult", "sweep_suite", "sweep_schemes",
           "multihop_churn_suite", "multihop_bench_suites",
           "ack_congestion_suite", "shared_hop_suites",
           "FIG5_BANDWIDTHS", "FIG5_LATENCIES", "FIG5_LOSSES", "FIG5_BUFFERS",
           "FIG5_BENCH_SCHEMES", "FIG5_BENCH_SWEEPS", "FIG5_BENCH_BASE",
           "FIG5_BENCH_DURATION", "FIG5_BENCH_SEED",
           "MULTIHOP_BENCH_SCHEMES", "MULTIHOP_BENCH_HOPS",
           "MULTIHOP_BENCH_CHURNS", "MULTIHOP_BENCH_BANDWIDTH",
           "MULTIHOP_BENCH_DELAY_MS", "MULTIHOP_BENCH_DURATION",
           "MULTIHOP_BENCH_SEED",
           "ACK_BENCH_SCHEMES", "ACK_BENCH_BANDWIDTH",
           "ACK_BENCH_REVERSE_BANDWIDTH", "ACK_BENCH_DELAY_MS",
           "ACK_BENCH_REVERSE_LOADS", "ACK_BENCH_CHURNS",
           "ACK_BENCH_DURATION", "ACK_BENCH_SEED",
           "SHARED_HOP_BENCH_SCHEMES", "SHARED_HOP_BENCH_HOPS",
           "SHARED_HOP_BENCH_BANDWIDTH", "SHARED_HOP_BENCH_DELAY_MS",
           "SHARED_HOP_BENCH_DURATION", "SHARED_HOP_BENCH_SEEDS"]

#: The x-axes of Fig. 5 (subsampled where the paper's grid is dense).
FIG5_BANDWIDTHS = (10.0, 20.0, 30.0, 40.0, 50.0)
FIG5_LATENCIES = (10.0, 40.0, 70.0, 100.0, 130.0, 160.0, 200.0)
FIG5_LOSSES = (0.0, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10)
FIG5_BUFFERS = (500, 1500, 2500, 3500, 5000)

#: The grid the Fig. 5 *benchmark* actually runs -- shared by
#: benchmarks/bench_fig5_sweeps.py and scripts/prewarm_cache.py so the
#: prewarmed cache fingerprints always match what the benchmark asks for.
FIG5_BENCH_SCHEMES = ("mocc", "cubic", "vegas", "bbr", "copa", "vivace",
                      "aurora-throughput")
FIG5_BENCH_SWEEPS = (
    ("bandwidth", (10.0, 20.0, 35.0, 50.0)),
    ("latency", (10.0, 70.0, 130.0, 200.0)),
    ("loss", (0.0, 0.02, 0.05, 0.10)),
    ("buffer", (500, 1500, 3000, 5000)),
)
FIG5_BENCH_BASE = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=20.0, buffer_bdp=1.0)
FIG5_BENCH_DURATION = 12.0
FIG5_BENCH_SEED = 2

#: The grid benchmarks/bench_multihop_churn.py runs: heuristic through
#: schemes on 2- and 3-bottleneck parking lots with churning CUBIC
#: cross traffic (no trained models, so the grid is CI-friendly).
MULTIHOP_BENCH_SCHEMES = ("cubic", "bbr", "copa", "vivace")
MULTIHOP_BENCH_HOPS = (2, 3)
MULTIHOP_BENCH_CHURNS = (
    None,
    ChurnSchedule("staggered", gap=4.0, skip=1),
    ChurnSchedule("on-off", gap=4.0, on_time=6.0, skip=1),
)
MULTIHOP_BENCH_BANDWIDTH = 16.0
MULTIHOP_BENCH_DELAY_MS = 8.0
MULTIHOP_BENCH_DURATION = 14.0
MULTIHOP_BENCH_SEED = 3

#: The grid benchmarks/bench_ack_congestion.py runs: heuristic through
#: schemes on an asymmetric dumbbell whose ack path is a real queued
#: link, against 0..2 reverse-direction CUBIC uploads, each cell paired
#: with its pure-propagation twin via the ``reverse_paths`` axis.
ACK_BENCH_SCHEMES = ("cubic", "bbr", "copa", "vivace")
ACK_BENCH_BANDWIDTH = 16.0
ACK_BENCH_REVERSE_BANDWIDTH = 1.6
ACK_BENCH_DELAY_MS = 8.0
ACK_BENCH_REVERSE_LOADS = (0, 1, 2)
ACK_BENCH_CHURNS = (
    None,
    ChurnSchedule("on-off", gap=3.0, on_time=4.0, period=8.0, skip=1),
)
ACK_BENCH_DURATION = 14.0
ACK_BENCH_SEED = 4

#: The grid benchmarks/bench_shared_hop_contention.py runs: heuristic
#: through schemes against per-hop CUBIC cross traffic, every cell run
#: under both the event-driven per-hop engine and its eager emit-time
#: twin -- a parking lot (where the engines must measurably diverge:
#: eager future-stamping misstates shared-hop queue occupancy) and a
#: single-bottleneck control (where they must agree bit-for-bit).
SHARED_HOP_BENCH_SCHEMES = ("cubic", "bbr", "copa", "vivace")
SHARED_HOP_BENCH_HOPS = 2
SHARED_HOP_BENCH_BANDWIDTH = 16.0
SHARED_HOP_BENCH_DELAY_MS = 8.0
SHARED_HOP_BENCH_DURATION = 14.0
SHARED_HOP_BENCH_SEEDS = (5, 6)


@dataclass
class SweepResult:
    """Utilization/latency-ratio matrices over a parameter sweep."""

    parameter: str
    values: tuple
    schemes: tuple
    #: shape (len(schemes), len(values))
    utilization: np.ndarray
    latency_ratio: np.ndarray
    loss_rate: np.ndarray

    def row(self, scheme: str) -> dict:
        i = self.schemes.index(scheme)
        return {"utilization": self.utilization[i],
                "latency_ratio": self.latency_ratio[i],
                "loss_rate": self.loss_rate[i]}

    def format_table(self, metric: str = "utilization") -> str:
        data = getattr(self, metric)
        header = "scheme".ljust(16) + "".join(f"{v:<9}" for v in self.values)
        lines = [f"[{metric} vs {self.parameter}]", header]
        for i, scheme in enumerate(self.schemes):
            cells = "".join(f"{data[i, j]:<9.3f}" for j in range(len(self.values)))
            lines.append(scheme.ljust(16) + cells)
        return "\n".join(lines)


def _flow_for(scheme: str, controller_kwargs: dict) -> FlowDef:
    key = scheme.lower()
    if key == "mocc":
        return FlowDef(scheme=scheme, agent=controller_kwargs.get("mocc_agent"),
                       weights=_as_weight_tuple(controller_kwargs.get("mocc_weights")))
    if key.startswith("aurora"):
        return FlowDef(scheme=scheme, agent=controller_kwargs.get("aurora_agent"))
    if key == "orca":
        return FlowDef(scheme=scheme, agent=controller_kwargs.get("orca_agent"))
    return FlowDef(scheme=scheme)


def _as_weight_tuple(weights):
    return None if weights is None else tuple(float(w) for w in np.asarray(weights))


def sweep_suite(schemes, parameter: str, values, base: EvalNetwork | None = None,
                duration: float = 20.0, seed: int = 0,
                controller_kwargs: dict | None = None,
                name: str | None = None) -> ScenarioSuite:
    """Declare the Fig. 5-style one-parameter sweep as a scenario grid."""
    base = base or EvalNetwork()
    controller_kwargs = controller_kwargs or {}
    schemes = tuple(schemes)
    values = tuple(values)
    axes = {"bandwidths_mbps": (base.bandwidth_mbps,),
            "rtts_ms": (2.0 * base.one_way_ms,),
            "losses": (base.loss_rate,),
            "buffers": (float(base.buffer_bdp),)}
    if parameter == "bandwidth":
        axes["bandwidths_mbps"] = tuple(float(v) for v in values)
    elif parameter == "latency":
        # Sweep values are one-way delays (the paper's axis); the suite's
        # RTT axis is round-trip.
        axes["rtts_ms"] = tuple(2.0 * float(v) for v in values)
    elif parameter == "loss":
        axes["losses"] = tuple(float(v) for v in values)
    elif parameter == "buffer":
        axes["buffers"] = tuple(int(v) for v in values)
    else:
        raise ValueError(f"unknown sweep parameter {parameter!r}")
    # A sequence (not a dict) so duplicate scheme names each get their
    # own line-up, as the pre-suite loop ran them.
    lineups = tuple((_flow_for(scheme, controller_kwargs),)
                    for scheme in schemes)
    return ScenarioSuite(name=name or f"fig5-{parameter}", lineups=lineups,
                         duration=duration, seeds=(seed,),
                         packet_bytes=base.packet_bytes, **axes)


def sweep_schemes(schemes, parameter: str, values, base: EvalNetwork | None = None,
                  duration: float = 20.0, seed: int = 0,
                  controller_kwargs: dict | None = None,
                  runner: ParallelRunner | None = None) -> SweepResult:
    """Run every scheme at every parameter value; collect the metrics.

    ``controller_kwargs`` carries the pre-trained agents for the
    learning-based schemes (see :func:`repro.eval.runner.scheme_factory`),
    either live or as :class:`~repro.eval.scenarios.AgentRef`.  Pass a
    shared ``runner`` to parallelise and cache; the default is the
    serial, uncached reference path.
    """
    schemes = tuple(schemes)
    values = tuple(values)
    suite = sweep_suite(schemes, parameter, values, base=base, duration=duration,
                        seed=seed, controller_kwargs=controller_kwargs)
    runner = runner or ParallelRunner(n_workers=1, use_cache=False)
    outcome = runner.run(suite)

    shape = (len(schemes), len(values))
    utilization = np.zeros(shape)
    latency_ratio = np.zeros(shape)
    loss_rate = np.zeros(shape)
    # expand() iterates line-ups (schemes) outermost, axis values inner.
    for i in range(len(schemes)):
        for j in range(len(values)):
            record = outcome.results[i * len(values) + j].records[0]
            utilization[i, j] = record.mean_utilization
            latency_ratio[i, j] = record.latency_ratio
            loss_rate[i, j] = record.loss_rate
    return SweepResult(parameter=parameter, values=values, schemes=schemes,
                       utilization=utilization, latency_ratio=latency_ratio,
                       loss_rate=loss_rate)


def multihop_churn_suite(schemes, hops: int = 3, churns=(None,),
                         bandwidth_mbps=MULTIHOP_BENCH_BANDWIDTH,
                         delay_ms=MULTIHOP_BENCH_DELAY_MS,
                         cross_scheme: str = "cubic",
                         duration: float = MULTIHOP_BENCH_DURATION,
                         seeds=(MULTIHOP_BENCH_SEED,),
                         controller_kwargs: dict | None = None,
                         trace: str | None = None,
                         transits=("event",),
                         name: str | None = None) -> ScenarioSuite:
    """Parking-lot contention with churning cross traffic as a grid.

    Each line-up is one ``scheme`` on the ``through`` path (all ``hops``
    bottlenecks) against one ``cross_scheme`` flow per hop; the
    ``churns`` axis drives cross-traffic arrival/departure schedules
    (``skip=1`` entries leave the through flow persistent).  Per-hop
    parameters accept scalars or length-``hops`` sequences, so uneven
    bottlenecks and per-hop traces (e.g. ``"leo-handover"``) drop in.
    ``transits=("event", "eager")`` additionally pairs every cell with
    its eager emit-time twin.
    """
    controller_kwargs = controller_kwargs or {}
    topo = parking_lot(hops, bandwidth_mbps=bandwidth_mbps, delay_ms=delay_ms,
                       trace=trace)
    lineups = {}
    for scheme in schemes:
        through = replace(_flow_for(scheme, controller_kwargs),
                          path="through", label=f"{scheme}-through")
        cross = tuple(FlowDef(cross_scheme, path=f"cross{i}", label=f"cross{i}")
                      for i in range(hops))
        lineups[f"{scheme}-through"] = (through,) + cross
    return ScenarioSuite(name=name or f"multihop{hops}", lineups=lineups,
                         topologies=(topo,), churns=tuple(churns),
                         transits=tuple(transits),
                         duration=duration, seeds=tuple(seeds))


def ack_congestion_suite(schemes, bandwidth_mbps=ACK_BENCH_BANDWIDTH,
                         reverse_bandwidth_mbps=ACK_BENCH_REVERSE_BANDWIDTH,
                         delay_ms=ACK_BENCH_DELAY_MS,
                         reverse_loads=ACK_BENCH_REVERSE_LOADS,
                         reverse_scheme: str = "cubic",
                         churns=(None,),
                         duration: float = ACK_BENCH_DURATION,
                         seeds=(ACK_BENCH_SEED,),
                         controller_kwargs: dict | None = None,
                         name: str | None = None) -> ScenarioSuite:
    """Ack-path congestion on an asymmetric dumbbell as a grid.

    Each line-up is one ``scheme`` downloading over the ``through``
    path while ``n`` ``reverse_scheme`` uploads (one per entry of
    ``reverse_loads``) saturate the skinny reverse link the through
    flow's acks share.  The ``reverse_paths`` axis pairs every cell
    with its *pure-propagation twin* -- same base RTT, no reverse
    queueing -- so the cost of ack-path congestion is directly
    measurable (`rev=None` wired vs ``rev=...prop`` twin cells).
    ``churns`` (e.g. periodic on-off with ``skip=1``) drives upload
    session arrival/restart patterns around the persistent download.
    """
    controller_kwargs = controller_kwargs or {}
    topo = dumbbell_asymmetric(bandwidth_mbps=bandwidth_mbps,
                               delay_ms=delay_ms,
                               reverse_bandwidth_mbps=reverse_bandwidth_mbps)
    lineups = {}
    for scheme in schemes:
        for n in reverse_loads:
            through = replace(_flow_for(scheme, controller_kwargs),
                              path="through", label=f"{scheme}-dl")
            uploads = tuple(FlowDef(reverse_scheme, path="reverse",
                                    label=f"ul{i}") for i in range(n))
            lineups[f"{scheme}-rev{n}"] = (through,) + uploads
    twin = {"through": None, "reverse": None}
    return ScenarioSuite(name=name or "ack-congestion", lineups=lineups,
                         topologies=(topo,), reverse_paths=(None, twin),
                         churns=tuple(churns), duration=duration,
                         seeds=tuple(seeds))


def shared_hop_suites(schemes=SHARED_HOP_BENCH_SCHEMES,
                      hops=SHARED_HOP_BENCH_HOPS,
                      bandwidth_mbps=SHARED_HOP_BENCH_BANDWIDTH,
                      delay_ms=SHARED_HOP_BENCH_DELAY_MS,
                      cross_scheme: str = "cubic",
                      duration: float = SHARED_HOP_BENCH_DURATION,
                      seeds=SHARED_HOP_BENCH_SEEDS,
                      controller_kwargs: dict | None = None) -> tuple:
    """``(parking_lot_suite, control_suite)`` for the engine-twin diff.

    Both grids run every cell under ``transits=("event", "eager")``:

    * the parking lot shares its downstream hops between the through
      flow and per-hop cross traffic, so the eager twin's future-stamped
      transits misstate queue occupancy there -- the engines must
      measurably diverge;
    * the control is the same contention collapsed onto a *single*
      shared bottleneck (through + one cross flow on one link), where
      neither engine schedules any intermediate hop event -- results
      must agree bit-for-bit.
    """
    controller_kwargs = controller_kwargs or {}
    lot = multihop_churn_suite(
        schemes, hops=hops, churns=(None,), bandwidth_mbps=bandwidth_mbps,
        delay_ms=delay_ms, cross_scheme=cross_scheme, duration=duration,
        seeds=tuple(seeds), controller_kwargs=controller_kwargs,
        transits=("event", "eager"), name=f"shared-hop{hops}")
    control_topo = TopologySpec(
        name="shared-hop-ctrl",
        links=(LinkDef(name="hop0", bandwidth_mbps=float(bandwidth_mbps),
                       delay_ms=float(delay_ms)),),
        paths=(PathDef("through", ("hop0",)), PathDef("cross0", ("hop0",))),
        default_path="through")
    lineups = {}
    for scheme in schemes:
        through = replace(_flow_for(scheme, controller_kwargs),
                          path="through", label=f"{scheme}-through")
        lineups[f"{scheme}-through"] = (
            through, FlowDef(cross_scheme, path="cross0", label="cross0"))
    control = ScenarioSuite(name="shared-hop-ctrl", lineups=lineups,
                            topologies=(control_topo,),
                            transits=("event", "eager"),
                            duration=duration, seeds=tuple(seeds))
    return lot, control


def multihop_bench_suites(schemes=MULTIHOP_BENCH_SCHEMES,
                          hops=MULTIHOP_BENCH_HOPS,
                          churns=MULTIHOP_BENCH_CHURNS,
                          controller_kwargs: dict | None = None) -> list:
    """One suite per hop count -- the bench_multihop_churn.py grid.

    Split by hop count because each hop count is a different topology
    with its own ``cross{i}`` path set (a single topologies axis would
    leave 3-hop line-ups referencing paths a 2-hop spec lacks).
    """
    return [multihop_churn_suite(schemes, hops=h, churns=churns,
                                 controller_kwargs=controller_kwargs)
            for h in hops]
