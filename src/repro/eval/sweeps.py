"""Parameter sweeps for the multi-objective performance study (Fig. 5).

Fig. 5 evaluates every scheme while varying one network parameter at a
time -- bandwidth (10-50 Mbps), one-way latency (10-200 ms), random
loss (0-10 %) and buffer size (500-5000 packets) -- reporting link
utilization for the throughput objective and latency ratio for the
latency objective.  The evaluation ranges deliberately exceed the
training ranges (Table 3) to probe robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.runner import EvalNetwork, run_scheme, scheme_factory

__all__ = ["SweepResult", "sweep_schemes", "FIG5_BANDWIDTHS", "FIG5_LATENCIES",
           "FIG5_LOSSES", "FIG5_BUFFERS"]

#: The x-axes of Fig. 5 (subsampled where the paper's grid is dense).
FIG5_BANDWIDTHS = (10.0, 20.0, 30.0, 40.0, 50.0)
FIG5_LATENCIES = (10.0, 40.0, 70.0, 100.0, 130.0, 160.0, 200.0)
FIG5_LOSSES = (0.0, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10)
FIG5_BUFFERS = (500, 1500, 2500, 3500, 5000)


@dataclass
class SweepResult:
    """Utilization/latency-ratio matrices over a parameter sweep."""

    parameter: str
    values: tuple
    schemes: tuple
    #: shape (len(schemes), len(values))
    utilization: np.ndarray
    latency_ratio: np.ndarray
    loss_rate: np.ndarray

    def row(self, scheme: str) -> dict:
        i = self.schemes.index(scheme)
        return {"utilization": self.utilization[i],
                "latency_ratio": self.latency_ratio[i],
                "loss_rate": self.loss_rate[i]}

    def format_table(self, metric: str = "utilization") -> str:
        data = getattr(self, metric)
        header = "scheme".ljust(16) + "".join(f"{v:<9}" for v in self.values)
        lines = [f"[{metric} vs {self.parameter}]", header]
        for i, scheme in enumerate(self.schemes):
            cells = "".join(f"{data[i, j]:<9.3f}" for j in range(len(self.values)))
            lines.append(scheme.ljust(16) + cells)
        return "\n".join(lines)


def _network_for(parameter: str, value, base: EvalNetwork) -> EvalNetwork:
    if parameter == "bandwidth":
        return EvalNetwork(bandwidth_mbps=float(value), one_way_ms=base.one_way_ms,
                           buffer_bdp=base.buffer_bdp, loss_rate=base.loss_rate,
                           packet_bytes=base.packet_bytes)
    if parameter == "latency":
        return EvalNetwork(bandwidth_mbps=base.bandwidth_mbps, one_way_ms=float(value),
                           buffer_bdp=base.buffer_bdp, loss_rate=base.loss_rate,
                           packet_bytes=base.packet_bytes)
    if parameter == "loss":
        return EvalNetwork(bandwidth_mbps=base.bandwidth_mbps, one_way_ms=base.one_way_ms,
                           buffer_bdp=base.buffer_bdp, loss_rate=float(value),
                           packet_bytes=base.packet_bytes)
    if parameter == "buffer":
        return EvalNetwork(bandwidth_mbps=base.bandwidth_mbps, one_way_ms=base.one_way_ms,
                           queue_packets=int(value), loss_rate=base.loss_rate,
                           packet_bytes=base.packet_bytes)
    raise ValueError(f"unknown sweep parameter {parameter!r}")


def sweep_schemes(schemes, parameter: str, values, base: EvalNetwork | None = None,
                  duration: float = 20.0, seed: int = 0,
                  controller_kwargs: dict | None = None) -> SweepResult:
    """Run every scheme at every parameter value; collect the metrics.

    ``controller_kwargs`` carries the pre-trained agents for the
    learning-based schemes (see :func:`repro.eval.runner.scheme_factory`).
    """
    base = base or EvalNetwork()
    controller_kwargs = controller_kwargs or {}
    schemes = tuple(schemes)
    values = tuple(values)
    shape = (len(schemes), len(values))
    utilization = np.zeros(shape)
    latency_ratio = np.zeros(shape)
    loss_rate = np.zeros(shape)
    for j, value in enumerate(values):
        network = _network_for(parameter, value, base)
        for i, scheme in enumerate(schemes):
            controller = scheme_factory(scheme, network, seed=seed, **controller_kwargs)
            record = run_scheme(controller, network, duration=duration, seed=seed)
            utilization[i, j] = record.mean_utilization
            latency_ratio[i, j] = record.latency_ratio
            loss_rate[i, j] = record.loss_rate
    return SweepResult(parameter=parameter, values=values, schemes=schemes,
                       utilization=utilization, latency_ratio=latency_ratio,
                       loss_rate=loss_rate)
