"""Engine-speed measurement: events/sec and cells/sec profiling helpers.

The ROADMAP's "as fast as the hardware allows" needs a number attached
to it.  This module defines the repo's canonical engine-speed metric --
**events/sec**, heap events dispatched by ``Simulation.run`` per second
of wall time (read from ``Simulation.events_processed``) -- and the
standard shapes it is measured on:

* ``single-bottleneck`` -- all heuristic schemes competing on one link
  (the paper's dumbbell, the baseline shape);
* ``parking-lot``      -- each scheme as a through flow across two
  shared hops against per-hop CUBIC cross traffic (the shared-hop grid
  whose honesty PR 4 bought; the shape the hot-path optimizations are
  gated on);
* ``ack-congestion``   -- each scheme downloading over an asymmetric
  dumbbell against a CUBIC upload queued on the ack path (wired
  reverse-link transit).

Every shape is measured under both transit engines (``event`` and the
frozen ``eager`` twin), through the *standard* scenario wiring
(:func:`~repro.eval.scenarios.build_scenario_simulation`), so the
numbers describe what evaluation sweeps actually pay.

Because absolute events/sec moves with the host, the report also
carries a :func:`calibration_score` -- a fixed pure-Python heap+float
loop timed on the same machine -- and a *normalized* events/sec
(events per calibration op).  CI regression gates compare normalized
numbers, which survive runner-hardware churn far better than raw ones
(``benchmarks/BENCH_engine_baseline.json`` is the checked-in baseline;
see :func:`check_regression`).
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.eval.batch import BatchRunner
from repro.eval.parallel import ParallelRunner
from repro.eval.runner import EvalNetwork
from repro.eval.scenarios import (
    FlowDef,
    Scenario,
    ScenarioSuite,
    build_scenario_simulation,
)
from repro.netsim.topology import dumbbell_asymmetric, parking_lot

__all__ = ["PERF_SCHEMES", "PERF_SHAPES", "KERNEL_GATED_SHAPES",
           "KERNEL_MIN_SPEEDUP", "EngineSample", "perf_scenarios",
           "measure_shape", "calibration_score", "batched_grid_scenarios",
           "measure_batched", "measure_kernel", "engine_speed_report",
           "check_regression"]

#: Heuristic schemes the perf shapes run (no trained models: the
#: harness must be cold-start cheap and CI-friendly).
PERF_SCHEMES = ("cubic", "bbr", "copa", "vivace")
#: The canonical measurement shapes, in report order.
PERF_SHAPES = ("single-bottleneck", "parking-lot", "ack-congestion")

_PERF_BANDWIDTH_MBPS = 16.0
_PERF_DELAY_MS = 8.0


#: Shapes the kernel speedup acceptance applies to (the two event-loop
#: bound grids; ack-congestion is RTO/recovery dominated and only
#: bit-identity gated).
KERNEL_GATED_SHAPES = ("single-bottleneck", "parking-lot")


def perf_scenarios(shape: str, transit: str = "event", duration: float = 10.0,
                   seed: int = 0, schemes=PERF_SCHEMES,
                   engine: str = "reference") -> list[Scenario]:
    """The concrete scenarios one measurement shape runs."""
    schemes = tuple(schemes)
    if engine != "reference":
        return [replace(s, engine=engine)
                for s in perf_scenarios(shape, transit=transit,
                                        duration=duration, seed=seed,
                                        schemes=schemes)]
    net = EvalNetwork(bandwidth_mbps=_PERF_BANDWIDTH_MBPS,
                      one_way_ms=_PERF_DELAY_MS)
    if shape == "single-bottleneck":
        return [Scenario(name=f"perf/single/{'+'.join(schemes)}", network=net,
                         flows=schemes, duration=duration, seed=seed,
                         transit=transit, suite="perf")]
    if shape == "parking-lot":
        topo = parking_lot(2, bandwidth_mbps=_PERF_BANDWIDTH_MBPS,
                           delay_ms=_PERF_DELAY_MS)
        return [Scenario(
            name=f"perf/lot/{scheme}", network=net,
            flows=(FlowDef(scheme, path="through", label=f"{scheme}-through"),
                   FlowDef("cubic", path="cross0", label="cross0"),
                   FlowDef("cubic", path="cross1", label="cross1")),
            topology=topo, duration=duration, seed=seed, transit=transit,
            suite="perf") for scheme in schemes]
    if shape == "ack-congestion":
        topo = dumbbell_asymmetric(
            bandwidth_mbps=_PERF_BANDWIDTH_MBPS, delay_ms=_PERF_DELAY_MS,
            reverse_bandwidth_mbps=_PERF_BANDWIDTH_MBPS / 10.0)
        return [Scenario(
            name=f"perf/ack/{scheme}", network=net,
            flows=(FlowDef(scheme, path="through", label=f"{scheme}-dl"),
                   FlowDef("cubic", path="reverse", label="ul0")),
            topology=topo, duration=duration, seed=seed, transit=transit,
            suite="perf") for scheme in schemes]
    raise ValueError(f"unknown perf shape {shape!r}; known: {PERF_SHAPES}")


@dataclass
class EngineSample:
    """One timed measurement: a shape under one transit mode and one
    engine core."""

    shape: str
    transit: str
    cells: int
    events: int
    wall_s: float
    engine: str = "reference"

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cells_per_sec(self) -> float:
        return self.cells / self.wall_s if self.wall_s > 0 else 0.0


def measure_shape(shape: str, transit: str = "event", duration: float = 10.0,
                  seed: int = 0, schemes=PERF_SCHEMES,
                  repeats: int = 1, engine: str = "reference") -> EngineSample:
    """Build a shape's simulations, time ``run_all``, count events.

    Construction (controller sizing, topology builds) happens *outside*
    the timed window: the metric is engine speed, not setup speed.
    With ``repeats > 1`` each round rebuilds and re-runs the identical
    simulations and the *fastest* round is reported (the
    pytest-benchmark convention: the minimum is the measurement least
    polluted by interpreter warm-up, allocator growth, and CPU
    frequency excursions).
    """
    best: EngineSample | None = None
    for _ in range(max(1, repeats)):
        scenarios = perf_scenarios(shape, transit=transit, duration=duration,
                                   seed=seed, schemes=schemes, engine=engine)
        sims = [build_scenario_simulation(s) for s in scenarios]
        t0 = time.perf_counter()
        for sim in sims:
            sim.run_all()
        wall = time.perf_counter() - t0
        events = sum(sim.events_processed for sim in sims)
        sample = EngineSample(shape=shape, transit=transit, cells=len(sims),
                              events=events, wall_s=wall, engine=engine)
        if best is None or sample.wall_s < best.wall_s:
            best = sample
    return best


def calibration_score(iters: int = 300_000, repeats: int = 3) -> float:
    """Machine-speed yardstick: ops/sec of a fixed heap+float loop.

    The loop imitates the engine's per-event profile (tuple heap push /
    pop plus float arithmetic) without touching any repo code, so the
    score moves with interpreter and hardware speed but *not* with
    engine changes.  Normalizing events/sec by this score makes perf
    baselines portable across CI runner generations.  Best-of-N, like
    :func:`measure_shape`, so the yardstick and the measurement share
    the same noise posture.
    """
    best = 0.0
    push, pop = heapq.heappush, heapq.heappop
    for _ in range(max(1, repeats)):
        heap: list = []
        x = 0.0
        t0 = time.perf_counter()
        for i in range(iters):
            push(heap, (x, i))
            x = (x + 1.000001) * 0.999999
            if i & 1:
                pop(heap)
        wall = time.perf_counter() - t0
        if wall > 0:
            best = max(best, iters / wall)
    return best


#: The batched-dispatch measurement grid: cells x duration chosen so
#: per-cell *setup* (named-trace build, controller sizing, pool task
#: dispatch) is comparable to per-cell run time -- the regime batched
#: execution exists for (short-horizon screening runs, successive-
#: halving first rungs).  ``wifi-walk`` is the most construction-heavy
#: registered trace, which is exactly what the shared per-batch trace
#: cache amortizes.
BATCH_GRID_CELLS = 16
BATCH_GRID_DURATION = 0.25
BATCH_GRID_TRACE = "wifi-walk"


def batched_grid_scenarios(cells: int = BATCH_GRID_CELLS,
                           duration: float = BATCH_GRID_DURATION,
                           schemes=PERF_SCHEMES,
                           trace: str = BATCH_GRID_TRACE) -> list[Scenario]:
    """The short-duration grid the batched-dispatch shape measures."""
    schemes = tuple(schemes)
    if cells % len(schemes):
        raise ValueError(f"cells ({cells}) must be a multiple of the "
                         f"scheme count ({len(schemes)})")
    suite = ScenarioSuite(name="perf-batched", lineups=list(schemes),
                          traces=(trace,),
                          seeds=tuple(range(cells // len(schemes))),
                          duration=duration)
    return suite.expand()


def measure_batched(cells: int = BATCH_GRID_CELLS,
                    duration: float = BATCH_GRID_DURATION,
                    n_workers: int = 2, repeats: int = 3,
                    schemes=PERF_SCHEMES) -> dict:
    """Time the grid under batch dispatch vs cell-per-task dispatch.

    Both modes run the *same* uncached :class:`ParallelRunner` pipeline
    at the same worker count; only the dispatch shape differs --
    ``batch_size=1`` (one pool task per cell, the pre-batching model)
    against one batch per worker.  Wall time is end to end (forks,
    construction, event loops, result aggregation): dispatch overhead
    is precisely what is being measured.  Best-of-``repeats`` per mode,
    like :func:`measure_shape`.
    """
    scenarios = batched_grid_scenarios(cells=cells, duration=duration,
                                       schemes=schemes)
    batch_size = -(-len(scenarios) // max(1, n_workers))
    modes = {"per_cell": 1, "batched": batch_size}
    # One throwaway batched pass warms traces/zoo/allocator so neither
    # timed mode is billed for cold start.
    ParallelRunner(n_workers=n_workers, use_cache=False,
                   batch_size=batch_size).run(scenarios)
    walls = {}
    for label, size in modes.items():
        runner = ParallelRunner(n_workers=n_workers, use_cache=False,
                                batch_size=size)
        best = None
        for _ in range(max(1, repeats)):
            wall = runner.run(scenarios).elapsed
            if best is None or wall < best:
                best = wall
        walls[label] = best
    per_cell_rate = cells / walls["per_cell"] if walls["per_cell"] > 0 else 0.0
    batched_rate = cells / walls["batched"] if walls["batched"] > 0 else 0.0
    return {
        "cells": int(cells),
        "duration": float(duration),
        "n_workers": int(n_workers),
        "batch_size": int(batch_size),
        "trace": BATCH_GRID_TRACE,
        "per_cell_wall_s": round(walls["per_cell"], 4),
        "batched_wall_s": round(walls["batched"], 4),
        "per_cell_cells_per_sec": round(per_cell_rate, 2),
        "batched_cells_per_sec": round(batched_rate, 2),
        "speedup": round(batched_rate / per_cell_rate, 3)
        if per_cell_rate > 0 else 0.0,
    }


#: Kernel speedup acceptance floors by build mode, recorded into every
#: kernel measurement (and hence into the checked-in baseline, which is
#: where :func:`check_regression` reads them back from).  The >=1.5x
#: acceptance applies to *compiled* builds (CI's mypyc job): under
#: CPython 3.11's cheap Python-to-Python calls the interpreted kernel's
#: structural wins (struct-of-arrays pool, fused dispatch) buy ~1.1x,
#: so the interpreted gate is a parity floor -- the kernel may never be
#: meaningfully slower than the reference it mirrors.
KERNEL_MIN_SPEEDUP = {"compiled": 1.5, "uncompiled": 0.95}


def _measure_kernel_batched(cells: int, duration: float, schemes,
                            repeats: int) -> dict:
    """Kernel vs reference through the in-process batch interleaver.

    Reuses the standard batched grid's scenarios (wifi-walk dumbbell
    cells) but at a longer horizon than the dispatch-overhead grid, so
    the sliced ``step_until`` event loops -- the thing the kernel
    accelerates -- dominate the wall time instead of cell construction.
    Engines alternate inside every repeat round; best wall per engine.
    """
    base = batched_grid_scenarios(cells=cells, duration=duration,
                                  schemes=schemes)
    grids = (("reference", base),
             ("kernel", [replace(s, engine="kernel") for s in base]))
    runner = BatchRunner()
    runner.run(base)  # warm traces/zoo/allocator outside any timed pass
    walls: dict = {}
    events: dict = {}
    for _ in range(max(1, repeats)):
        for engine, scenarios in grids:
            t0 = time.perf_counter()
            out = runner.run(scenarios)
            wall = time.perf_counter() - t0
            for cell in out:
                if cell.error is not None:
                    raise RuntimeError(
                        f"batched kernel measurement: {engine} cell "
                        f"{cell.scenario.name!r} failed: {cell.error}")
            events[engine] = sum(c.events for c in out)
            if engine not in walls or wall < walls[engine]:
                walls[engine] = wall
    ref_eps = (events["reference"] / walls["reference"]
               if walls["reference"] > 0 else 0.0)
    ker_eps = (events["kernel"] / walls["kernel"]
               if walls["kernel"] > 0 else 0.0)
    return {
        "cells": int(cells),
        "duration": float(duration),
        "trace": BATCH_GRID_TRACE,
        "reference_wall_s": round(walls["reference"], 4),
        "kernel_wall_s": round(walls["kernel"], 4),
        "reference_events_per_sec": round(ref_eps, 1),
        "kernel_events_per_sec": round(ker_eps, 1),
        "events_match": events["reference"] == events["kernel"],
        "speedup": round(ker_eps / ref_eps, 3) if ref_eps > 0 else 0.0,
    }


def measure_kernel(duration: float = 6.0, seed: int = 0, schemes=PERF_SCHEMES,
                   repeats: int = 3, batched: bool = True,
                   batch_cells: int = 8, batch_duration: float = 3.0) -> dict:
    """Paired reference-vs-kernel measurement on the gated shapes.

    Solo: each :data:`KERNEL_GATED_SHAPES` shape runs under both engine
    cores at event transit, *interleaved* (reference then kernel inside
    every repeat round, best-of per engine) so machine-speed drift hits
    both engines alike instead of biasing whichever ran last.  Batched:
    the same comparison through an in-process
    :class:`~repro.eval.batch.BatchRunner` grid -- sliced ``step_until``
    driving, the regime batching exists for.

    Returns the ``kernel`` report section: per-shape events/sec for
    both engines, speedups (plain same-machine ratios -- no calibration
    normalization needed), an ``events_match`` flag (bit-identity makes
    any event-count mismatch an accounting bug), the build mode
    (``compiled``), and the :data:`KERNEL_MIN_SPEEDUP` floors the
    checked-in baseline carries for :func:`check_regression`.
    """
    from repro.netsim.kernel import KERNEL_COMPILED

    payload = {
        "compiled": bool(KERNEL_COMPILED),
        "duration": float(duration),
        "repeats": int(repeats),
        "schemes": list(schemes),
        "min_speedup": dict(KERNEL_MIN_SPEEDUP),
        "shapes": {},
    }
    events_match = True
    for shape in KERNEL_GATED_SHAPES:
        best: dict = {"reference": None, "kernel": None}
        for _ in range(max(1, repeats)):
            for engine in ("reference", "kernel"):
                sample = measure_shape(shape, transit="event",
                                       duration=duration, seed=seed,
                                       schemes=schemes, engine=engine)
                prev = best[engine]
                if prev is None or sample.wall_s < prev.wall_s:
                    best[engine] = sample
        ref, ker = best["reference"], best["kernel"]
        match = ref.events == ker.events
        events_match = events_match and match
        speedup = (ker.events_per_sec / ref.events_per_sec
                   if ref.events_per_sec > 0 else 0.0)
        payload["shapes"][shape] = {
            "reference_events_per_sec": round(ref.events_per_sec, 1),
            "kernel_events_per_sec": round(ker.events_per_sec, 1),
            "reference_events": int(ref.events),
            "kernel_events": int(ker.events),
            "events_match": match,
            "speedup": round(speedup, 3),
        }
        payload["speedup_" + shape.replace("-", "_")] = round(speedup, 3)
    if batched:
        b = _measure_kernel_batched(cells=batch_cells,
                                    duration=batch_duration,
                                    schemes=schemes, repeats=repeats)
        payload["batched"] = b
        payload["batched_speedup"] = b["speedup"]
        events_match = events_match and b["events_match"]
    payload["events_match"] = events_match
    return payload


def engine_speed_report(shapes=PERF_SHAPES, transits=("event", "eager"),
                        duration: float = 10.0, seed: int = 0,
                        schemes=PERF_SCHEMES, repeats: int = 1,
                        pipeline: bool = True, batched: bool = True,
                        kernel: bool = True) -> dict:
    """Measure every shape x transit; return the BENCH_engine payload.

    ``pipeline=True`` additionally times the same scenarios end to end
    through a serial, uncached :class:`ParallelRunner` -- cells/sec of
    the full evaluation pipeline (fingerprinting, controller builds,
    result aggregation), the number sweep wall-clock scales with.

    ``batched=True`` adds the batched multi-cell dispatch shape
    (:func:`measure_batched`): the 16-cell short-duration grid under
    batch-per-worker vs cell-per-task dispatch, with the speedup and a
    calibration-normalized cells/sec that :func:`check_regression`
    gates against the baseline.

    ``kernel=True`` adds the kernel-engine shape
    (:func:`measure_kernel`): paired reference-vs-kernel speedups on
    the gated shapes, solo and batched, gated by
    :func:`check_regression` against the build-mode floor.
    """
    # Warm the interpreter (bytecode caches, allocator arenas, numpy
    # dispatch) outside any timed window so the first measured shape is
    # not billed for process cold start.
    measure_shape(shapes[0], transit=transits[0], duration=min(duration, 2.0),
                  seed=seed, schemes=schemes)
    calibration = calibration_score()
    samples = [measure_shape(shape, transit=transit, duration=duration,
                             seed=seed, schemes=schemes, repeats=repeats)
               for shape in shapes for transit in transits]
    report = {
        "benchmark": "engine_speed",
        "duration": float(duration),
        "seed": int(seed),
        "schemes": list(schemes),
        "repeats": int(repeats),
        "calibration_ops_per_sec": round(calibration, 1),
        "shapes": [dict(asdict(s),
                        events_per_sec=round(s.events_per_sec, 1),
                        cells_per_sec=round(s.cells_per_sec, 4),
                        events_per_calibration_op=round(
                            s.events_per_sec / calibration, 6))
                   for s in samples],
    }
    if pipeline:
        scenarios = [s for shape in shapes for transit in transits
                     for s in perf_scenarios(shape, transit=transit,
                                             duration=duration, seed=seed,
                                             schemes=schemes)]
        runner = ParallelRunner(n_workers=1, use_cache=False)
        outcome = runner.run(scenarios)
        report["pipeline_cells"] = len(outcome)
        report["pipeline_wall_s"] = round(outcome.elapsed, 3)
        report["pipeline_cells_per_sec"] = round(
            len(outcome) / outcome.elapsed, 4) if outcome.elapsed > 0 else 0.0
        eps = outcome.events_per_sec
        report["pipeline_events_per_sec"] = (round(eps, 1)
                                             if eps is not None else None)
    if batched:
        sample = measure_batched(repeats=max(1, repeats))
        sample["cells_per_calibration_op"] = round(
            sample["batched_cells_per_sec"] / calibration, 9)
        report["batched"] = sample
    if kernel:
        # Short diagnostic reports keep the batched grid's horizon in
        # proportion; full-length runs use the standard 3.0s regime.
        report["kernel"] = measure_kernel(duration=duration, seed=seed,
                                          schemes=schemes,
                                          repeats=max(1, repeats),
                                          batch_duration=min(3.0, duration))
    return report


def check_regression(report: dict, baseline: dict,
                     tolerance: float = 0.30) -> list[str]:
    """Compare a fresh report against a checked-in baseline.

    Returns human-readable failure strings for every shape x transit
    whose *normalized* events/sec (events per calibration op) fell more
    than ``tolerance`` below the baseline's; empty list means no
    regression.  Shapes present in only one report are ignored (grids
    may grow).

    When both reports carry the ``batched`` dispatch shape, its
    calibration-normalized cells/sec and its batched-over-per-cell
    speedup are gated the same way -- so a change that quietly erodes
    the batching win (say, per-batch setup creeping back in) fails CI
    just like an event-loop slowdown.

    When both reports carry the ``kernel`` engine shape, its speedups
    are gated against the *absolute* floor the baseline's
    ``min_speedup`` table records for the fresh report's build mode
    (``compiled`` -> the 1.5x acceptance; interpreted fallback -> the
    parity floor).  Speedups are same-machine ratios, so no tolerance
    is applied; an engine event-count mismatch also fails outright.
    """
    def normalized(payload: dict) -> dict:
        return {(s["shape"], s["transit"]): s["events_per_calibration_op"]
                for s in payload.get("shapes", [])}

    fresh, base = normalized(report), normalized(baseline)
    failures = []
    for key in sorted(set(fresh) & set(base)):
        floor = base[key] * (1.0 - tolerance)
        if fresh[key] < floor:
            shape, transit = key
            failures.append(
                f"{shape}/{transit}: normalized events/sec "
                f"{fresh[key]:.6f} fell below {floor:.6f} "
                f"(baseline {base[key]:.6f} - {tolerance:.0%})")
    fresh_b, base_b = report.get("batched"), baseline.get("batched")
    if fresh_b and base_b:
        gates = (("cells_per_calibration_op", "normalized batched cells/sec",
                  ".9f"),
                 ("speedup", "batched dispatch speedup", ".3f"))
        for key, label, fmt in gates:
            if key not in fresh_b or key not in base_b:
                continue
            floor = base_b[key] * (1.0 - tolerance)
            if fresh_b[key] < floor:
                failures.append(
                    f"batched: {label} {fresh_b[key]:{fmt}} fell below "
                    f"{floor:{fmt}} (baseline {base_b[key]:{fmt}} - "
                    f"{tolerance:.0%})")
    fresh_k, base_k = report.get("kernel"), baseline.get("kernel")
    if fresh_k and base_k:
        floors = base_k.get("min_speedup") or KERNEL_MIN_SPEEDUP
        mode = "compiled" if fresh_k.get("compiled") else "uncompiled"
        floor = float(floors.get(mode, KERNEL_MIN_SPEEDUP[mode]))
        for key, label in (("speedup_single_bottleneck",
                            "single-bottleneck kernel speedup"),
                           ("speedup_parking_lot",
                            "parking-lot kernel speedup"),
                           ("batched_speedup", "batched kernel speedup")):
            val = fresh_k.get(key)
            if val is not None and val < floor:
                failures.append(
                    f"kernel[{mode}]: {label} {val:.3f}x fell below the "
                    f"{floor:.2f}x floor (same-machine ratio; no "
                    f"tolerance applied)")
        if not fresh_k.get("events_match", True):
            failures.append(
                "kernel: engines disagree on events processed "
                "(events accounting or bit-identity break)")
    return failures


def write_report(report: dict, path: str | Path) -> Path:
    """Write a report as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
