"""In-process batched multi-cell execution.

A grid sweep's cells are independent simulations, but running each in
its own pool task pays per-cell dispatch and construction overhead
that dwarfs the event loop once durations shrink (short-horizon
screening runs, successive-halving first rungs).  ``BatchRunner``
builds N cells of a suite through the existing
:func:`~repro.eval.scenarios.build_scenario_simulation` split and
interleaves their event loops inside one process, advancing each
cell's :class:`~repro.netsim.network.SimState` in round-robin time
slices until every cell drains.

Cross-cell isolation contract
-----------------------------
Interleaved cells must behave exactly as if each ran alone in a fresh
process; the batch layer therefore shares only *immutable* assets:

* named traces -- built once per batch via ``make_trace(cache=...)``,
  frozen read-only before any cell sees them;
* the process-wide agent zoo -- resolved once (sorted order) before
  any cell is built; agents are inference-only during evaluation.

Everything mutable -- links, controllers, flows, heaps, and every RNG
stream -- is constructed per cell by ``build_scenario_simulation``
from the cell's own scenario seed, so generators always trace to a
cell-indexed derivation through the :mod:`repro.netsim.rngstreams`
registry and no two cells ever share one.  The batch layer itself
never mints or drains a stream.  ``repro.analysis``'s ``isolation``
rule family machine-checks all of this: the static rules read
:data:`SHARED_IMMUTABLE_ALLOWLIST` below, and the live rule walks two
probe cells' object graphs asserting no unlisted mutable object is
reachable from both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.eval.scenarios import (
    AgentRef,
    Scenario,
    build_scenario_simulation,
)
from repro.netsim.network import FlowRecord, Simulation

__all__ = ["SHARED_IMMUTABLE_ALLOWLIST", "BatchCell", "BatchRunner",
           "warm_agent_refs"]

#: Justified shared-immutable allowlist: the only names through which
#: an object created outside the per-cell build loop may flow into a
#: cell.  Each entry is ``(binding_name, justification)``.  The replint
#: ``isolation`` family parses this tuple straight from the AST: the
#: ``batch-shared-mutable`` rule flags any outside-loop binding handed
#: to a cell build under a name not listed here, and the live
#: ``batch-cell-isolation`` rule independently verifies the objects
#: those names carry really are immutable at share time.
SHARED_IMMUTABLE_ALLOWLIST: tuple[tuple[str, str], ...] = (
    ("trace_cache",
     "named-trace instances are pure time->capacity functions, memoized "
     "and frozen read-only by make_trace(cache=...) before any cell "
     "sees them"),
)

#: Default interleave granularity, simulated seconds per slice.  Small
#: enough that cells of typical evaluation durations (2-30 s) swap
#: many times per run -- exercising resumability rather than degrading
#: to sequential execution -- while keeping per-slice bookkeeping
#: (two clock reads per cell) far below the event-loop cost.
DEFAULT_SLICE_SECONDS = 0.25


def warm_agent_refs(scenarios: list[Scenario]) -> None:
    """Resolve every :class:`AgentRef` in ``scenarios``, sorted.

    Sorted so every host trains/loads missing zoo entries in the same
    order (set order varies with hash randomization).  Resolution goes
    through the process-wide zoo memo, so calling this again -- e.g.
    per batch after a worker initializer already warmed the zoo -- is
    a cheap no-op.
    """
    refs = {flow.agent for s in scenarios for flow in s.flows
            if isinstance(flow.agent, AgentRef)}
    for ref in sorted(refs, key=AgentRef.key):
        ref.resolve()


@dataclass
class BatchCell:
    """One cell of a batch: its simulation and per-cell accounting.

    ``elapsed`` is the cell's own wall time -- construction plus the
    sum of its interleave slices plus finalization -- so batched and
    per-process runs report comparable per-cell numbers.  A failed
    cell carries ``error`` (``"Type: detail"``, the same shape the
    pool workers report) and ``records is None``; sibling cells are
    unaffected.
    """

    scenario: Scenario
    sim: Simulation | None = None
    records: list[FlowRecord] | None = None
    elapsed: float = 0.0
    error: str | None = None

    @property
    def events(self) -> int:
        return self.sim.events_processed if self.sim is not None else 0


class BatchRunner:
    """Run many scenario cells inside one process, interleaved.

    ``run`` never raises for a cell failure: each :class:`BatchCell`
    carries its own ``error`` so one bad cell cannot take down its
    siblings (the parent runner decides what a failure means for the
    suite).  Results are bit-identical to running every cell solo --
    cells share no mutable state, and slicing a cell's event loop
    cannot reorder its heap (see :class:`~repro.netsim.network.SimState`).
    """

    def __init__(self, slice_seconds: float = DEFAULT_SLICE_SECONDS,
                 prewarm: bool = True):
        if slice_seconds <= 0:
            raise ValueError("slice_seconds must be positive")
        self.slice_seconds = float(slice_seconds)
        #: Pool workers whose initializer already warmed the zoo pass
        #: ``prewarm=False`` so batches skip even the no-op re-resolve.
        self.prewarm = bool(prewarm)

    def build_cells(self, scenarios: list[Scenario]) -> list[BatchCell]:
        """Construct every cell, sharing one frozen named-trace cache.

        Build failures are captured per cell, not raised.  Exposed for
        the replint ``batch-cell-isolation`` probe and the isolation
        tests, which inspect built-but-unrun cells.
        """
        if self.prewarm:
            warm_agent_refs(scenarios)
        trace_cache: dict = {}
        cells = []
        for scenario in scenarios:
            cell = BatchCell(scenario)
            t0 = time.perf_counter()
            try:
                cell.sim = build_scenario_simulation(scenario, trace_cache)
            except Exception as exc:  # noqa: BLE001 -- reported per cell
                cell.error = f"{type(exc).__name__}: {exc}"
            cell.elapsed += time.perf_counter() - t0
            cells.append(cell)
        return cells

    def run(self, scenarios: list[Scenario]) -> list[BatchCell]:
        """Build, interleave to completion, finalize; one result per cell."""
        cells = self.build_cells(scenarios)
        live = [c for c in cells if c.error is None]
        horizon = 0.0
        step = self.slice_seconds
        while live:
            horizon += step
            still = []
            for cell in live:
                state = cell.sim.state
                t0 = time.perf_counter()
                try:
                    state.step_until(min(horizon, cell.sim.duration))
                except Exception as exc:  # noqa: BLE001 -- isolate the cell
                    cell.error = f"{type(exc).__name__}: {exc}"
                    cell.elapsed += time.perf_counter() - t0
                    continue
                cell.elapsed += time.perf_counter() - t0
                if state.done:
                    t0 = time.perf_counter()
                    try:
                        cell.records = cell.sim.run_all()
                    except Exception as exc:  # noqa: BLE001
                        cell.error = f"{type(exc).__name__}: {exc}"
                    cell.elapsed += time.perf_counter() - t0
                else:
                    still.append(cell)
            live = still
        return cells
