"""Evaluation metrics: fairness, friendliness, rewards.

* **Jain's fairness index** (Fig. 12): ``(sum x)^2 / (n * sum x^2)``,
  1.0 = perfectly fair.
* **Friendliness ratio** (Figs. 14/15): delivery rate of the probed
  scheme over the delivery rate of the competing CUBIC flow.
* **Reward of a run** (Figs. 6/16/18): the Eq. 2 scalarisation of a
  flow's mean performance components.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.env import components_from_stats
from repro.netsim.network import FlowRecord

__all__ = ["jain_index", "jain_index_series", "friendliness_ratio",
           "reward_of_record", "mean_components_of_record"]


def jain_index(throughputs) -> float:
    """Jain, Durresi & Babic's fairness index over flow throughputs."""
    x = np.asarray(throughputs, dtype=np.float64)
    x = x[x >= 0]
    if len(x) == 0 or np.all(x == 0):
        return 1.0
    return float(x.sum() ** 2 / (len(x) * np.sum(x ** 2)))


def jain_index_series(records: list[FlowRecord], interval: float = 1.0,
                      duration: float | None = None) -> np.ndarray:
    """Per-``interval`` Jain index over the flows' throughput timelines.

    The paper computes the index "for each second" while flows come and
    go (Fig. 12); intervals where fewer than two flows are active are
    skipped.
    """
    if duration is None:
        duration = max((r.records[-1].end for r in records if r.records), default=0.0)
    edges = np.arange(0.0, duration + interval, interval)
    series = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        rates = []
        for record in records:
            acked = sum(s.acked for s in record.records if lo <= s.start < hi)
            active = any(lo <= s.start < hi and s.sent > 0 for s in record.records)
            if active:
                rates.append(acked / interval)
        if len(rates) >= 2:
            series.append(jain_index(rates))
    return np.asarray(series)


def friendliness_ratio(scheme_record: FlowRecord, cubic_record: FlowRecord) -> float:
    """Delivery rate of the scheme over the competing CUBIC flow's."""
    if cubic_record.mean_throughput_pps <= 0:
        return float("inf")
    return scheme_record.mean_throughput_pps / cubic_record.mean_throughput_pps


def mean_components_of_record(record: FlowRecord) -> np.ndarray:
    """Per-MI average of (O_thr, O_lat, O_loss) over a run."""
    if not record.records:
        return np.zeros(3)
    comps = [components_from_stats(s).as_array() for s in record.records]
    return np.mean(comps, axis=0)


def reward_of_record(record: FlowRecord, weights) -> float:
    """Eq. 2 reward of a run: the weighted mean performance components."""
    w = np.asarray(weights, dtype=np.float64)
    return float(np.dot(mean_components_of_record(record), w))
