"""Run congestion-control schemes on simulated networks.

:class:`EvalNetwork` describes the evaluation topology (one bottleneck
link, Pantheon-style); :func:`run_scheme` runs a single flow of a named
scheme on it and returns the aggregate :class:`FlowRecord`;
:func:`run_competition` runs several (possibly different) controllers
sharing the bottleneck -- the fairness/friendliness setups of §6.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    AuroraController,
    BBR,
    Copa,
    Cubic,
    Orca,
    PCCAllegro,
    PCCVivace,
    Vegas,
)
from repro.core.agent import MoccAgent, MoccController
from repro.netsim.link import Link
from repro.netsim.network import FlowRecord, FlowSpec, Simulation
from repro.netsim.topology import MIN_QUEUE_PACKETS
from repro.netsim.traces import BandwidthTrace, ConstantTrace, mbps_to_pps

__all__ = ["EvalNetwork", "scheme_factory", "build_competition", "run_scheme",
           "run_competition"]


@dataclass(frozen=True)
class EvalNetwork:
    """A single-bottleneck evaluation network.

    ``buffer_bdp`` sizes the queue in bandwidth-delay products unless
    ``queue_packets`` is given explicitly.  ``trace`` (optional)
    overrides the constant bandwidth.
    """

    bandwidth_mbps: float = 20.0
    one_way_ms: float = 20.0
    buffer_bdp: float = 1.0
    queue_packets: int | None = None
    loss_rate: float = 0.0
    packet_bytes: int = 1500
    trace: BandwidthTrace | None = None

    @property
    def bottleneck_pps(self) -> float:
        return mbps_to_pps(self.bandwidth_mbps, self.packet_bytes)

    @property
    def base_rtt(self) -> float:
        return 2.0 * self.one_way_ms / 1000.0

    def queue_size(self) -> int:
        if self.queue_packets is not None:
            return self.queue_packets
        bdp = self.bottleneck_pps * self.base_rtt
        return max(int(round(self.buffer_bdp * bdp)), MIN_QUEUE_PACKETS)

    def build_link(self, seed: int = 0) -> Link:
        trace = self.trace or ConstantTrace(self.bottleneck_pps)
        return Link(trace=trace, delay=self.one_way_ms / 1000.0,
                    queue_size=self.queue_size(), loss_rate=self.loss_rate,
                    rng=np.random.default_rng(seed))


def scheme_factory(name: str, network: EvalNetwork, seed: int = 0,
                   mocc_agent: MoccAgent | None = None, mocc_weights=None,
                   aurora_agent: MoccAgent | None = None,
                   orca_agent: MoccAgent | None = None,
                   initial_rate: float | None = None):
    """Build a controller for ``name``, sized sensibly for the network.

    Heuristic schemes need no models; ``mocc``/``aurora``/``orca`` take
    the corresponding pre-trained agents (see :mod:`repro.models.zoo`).
    Initial rates start at roughly a third of the bottleneck, as a real
    deployment's slow-start handoff would; ``initial_rate`` (pps)
    overrides that for rate-based schemes.
    """
    pps = network.bottleneck_pps
    start_rate = max(pps / 3.0, 2.0) if initial_rate is None else float(initial_rate)
    key = name.lower()
    if key == "cubic":
        return Cubic()
    if key == "vegas":
        return Vegas()
    if key == "bbr":
        return BBR(initial_rate=start_rate)
    if key == "copa":
        return Copa()
    if key in ("allegro", "pcc allegro"):
        return PCCAllegro(initial_rate=start_rate)
    if key in ("vivace", "pcc vivace"):
        return PCCVivace(initial_rate=start_rate, packet_bytes=network.packet_bytes)
    if key == "mocc":
        if mocc_agent is None or mocc_weights is None:
            raise ValueError("MOCC needs mocc_agent and mocc_weights")
        return MoccController(mocc_agent, mocc_weights, initial_rate=start_rate, seed=seed)
    if key.startswith("aurora"):
        if aurora_agent is None:
            raise ValueError("Aurora needs a pre-trained aurora_agent")
        flavor = key.split("-", 1)[1] if "-" in key else None
        return AuroraController(aurora_agent, initial_rate=start_rate, seed=seed,
                                flavor=flavor)
    if key == "orca":
        return Orca(agent=orca_agent, seed=seed)
    raise ValueError(f"unknown scheme {name!r}")


def run_scheme(controller, network: EvalNetwork, duration: float = 30.0,
               seed: int = 0, mi_duration: float | None = None,
               transit: str = "event") -> FlowRecord:
    """Run one flow of ``controller`` over ``network``; return aggregates."""
    link = network.build_link(seed=seed * 31 + 17)
    spec = FlowSpec(controller=controller, packet_bytes=network.packet_bytes,
                    mi_duration=mi_duration)
    sim = Simulation(link, [spec], duration=duration, seed=seed,
                     transit=transit)
    return sim.run_all()[0]


def build_competition(controllers, network: EvalNetwork, duration: float = 60.0,
                      start_times=None, stop_times=None, seed: int = 0,
                      mi_duration: float | None = None,
                      transit: str = "event",
                      engine: str = "reference") -> Simulation:
    """Wire several controllers sharing the bottleneck into a Simulation.

    The construction half of :func:`run_competition`, split out so
    callers that need the live :class:`Simulation` -- engine-speed
    profiling (:mod:`repro.eval.perf`), incremental ``run(until=...)``
    drivers -- reuse the exact seeding and sizing of the standard
    evaluation path.  ``engine`` selects the core
    (:func:`repro.netsim.engine_class`): the pure-Python reference or
    the bit-identical array-backed kernel.
    """
    from repro.netsim import engine_class

    n = len(controllers)
    start_times = start_times or [0.0] * n
    stop_times = stop_times or [float("inf")] * n
    link = network.build_link(seed=seed * 31 + 17)
    specs = [FlowSpec(controller=c, packet_bytes=network.packet_bytes,
                      start_time=t0, stop_time=t1, mi_duration=mi_duration)
             for c, t0, t1 in zip(controllers, start_times, stop_times)]
    return engine_class(engine)(link, specs, duration=duration, seed=seed,
                                transit=transit)


def run_competition(controllers, network: EvalNetwork, duration: float = 60.0,
                    start_times=None, stop_times=None, seed: int = 0,
                    mi_duration: float | None = None,
                    transit: str = "event") -> list[FlowRecord]:
    """Run several controllers sharing the bottleneck (dumbbell setup).

    ``start_times``/``stop_times`` allow the staggered-flow arrivals of
    the fairness experiment (Fig. 11).  ``transit`` selects the
    hop-transit scheme (bit-identical either way on this single-link
    shape; see :class:`~repro.netsim.network.Simulation`).
    """
    sim = build_competition(controllers, network, duration=duration,
                            start_times=start_times, stop_times=stop_times,
                            seed=seed, mi_duration=mi_duration,
                            transit=transit)
    return sim.run_all()
