"""Empirical CDFs for the reward-distribution figures (6, 12, 16, 18)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "cdf_at", "format_cdf_table"]


def empirical_cdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative probabilities (right-continuous)."""
    x = np.sort(np.asarray(samples, dtype=np.float64))
    if len(x) == 0:
        return x, x
    p = np.arange(1, len(x) + 1) / len(x)
    return x, p


def cdf_at(samples, value: float) -> float:
    """Fraction of samples <= value."""
    x = np.asarray(samples, dtype=np.float64)
    if len(x) == 0:
        return 0.0
    return float(np.mean(x <= value))


def format_cdf_table(named_samples: dict[str, np.ndarray],
                     percentiles=(10, 25, 50, 75, 90)) -> str:
    """Tabulate per-scheme reward percentiles (the figures' key content)."""
    header = "scheme".ljust(18) + "".join(f"p{p:<8}" for p in percentiles) + "mean"
    lines = [header]
    for name, samples in named_samples.items():
        samples = np.asarray(samples, dtype=np.float64)
        cells = "".join(f"{np.percentile(samples, p):<9.3f}" for p in percentiles)
        lines.append(name.ljust(18) + cells + f"{samples.mean():.3f}")
    return "\n".join(lines)
