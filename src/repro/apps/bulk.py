"""Bulk data transfer workload (Fig. 10).

The paper transfers a 100 MB file 50 times over a link with 0.5 %
random loss (emulating background-traffic interference) and reports
the mean and standard deviation of flow completion time (FCT).

The reproduction measures the same thing: the simulation runs until
the flow has delivered the requested number of packets, and the FCT is
the time of the last delivery.  File size defaults to a scaled-down
value so a 50-repeat benchmark remains fast; the FCT *ordering* across
schemes is what Fig. 10 compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.runner import EvalNetwork
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import Controller

__all__ = ["BulkResult", "run_bulk_transfers"]


@dataclass
class BulkResult:
    """FCT statistics over repeated transfers."""

    fct_seconds: np.ndarray
    file_mbytes: float

    @property
    def mean_fct(self) -> float:
        return float(np.mean(self.fct_seconds))

    @property
    def std_fct(self) -> float:
        return float(np.std(self.fct_seconds))

    def summary(self) -> str:
        return (f"{self.file_mbytes:.1f} MB: mean FCT {self.mean_fct:.3f}s "
                f"+- {self.std_fct:.3f}s over {len(self.fct_seconds)} transfers")


def _single_transfer(controller_factory, network: EvalNetwork,
                     file_packets: int, seed: int) -> float:
    """Run one transfer to completion; return the FCT in seconds."""
    link = network.build_link(seed=seed * 131 + 7)
    controller = controller_factory()
    spec = FlowSpec(controller=controller, packet_bytes=network.packet_bytes)
    # Generous horizon: 20x the ideal transfer time plus slow-start room.
    ideal = file_packets / network.bottleneck_pps
    horizon = 20.0 * ideal + 30.0
    sim = Simulation(link, [spec], duration=horizon, seed=seed)
    flow = sim.flows[0]

    step = max(network.base_rtt, 0.05)
    t = 0.0
    while flow.total_acked < file_packets and t < horizon:
        t = min(t + step, horizon)
        sim.run(until=t)
    if flow.total_acked < file_packets:
        return float("inf")
    # The exact completion moment is the ack time of the last needed
    # packet; the coarse loop overshoots by at most one step.
    return sim.now


def run_bulk_transfers(controller_factory, network: EvalNetwork | None = None,
                       file_mbytes: float = 4.0, repeats: int = 10,
                       seed: int = 0) -> BulkResult:
    """Repeatedly transfer a file; collect FCT statistics.

    ``controller_factory`` builds a *fresh* controller per transfer
    (congestion state must not leak between repeats).  The default
    network follows the paper: a clean switch path with 0.5 % random
    loss emulating background interference.
    """
    if network is None:
        network = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=5.0,
                              buffer_bdp=2.0, loss_rate=0.005)
    packet_bits = network.packet_bytes * 8
    file_packets = int(np.ceil(file_mbytes * 8e6 / packet_bits))
    fcts = [_single_transfer(controller_factory, network, file_packets, seed + i)
            for i in range(repeats)]
    return BulkResult(fct_seconds=np.asarray(fcts), file_mbytes=file_mbytes)
