"""Application workloads for the real-application study (§6.3).

* :mod:`repro.apps.video` -- MPC-based adaptive-bitrate video streaming
  (the Pensieve-style setup of Fig. 8);
* :mod:`repro.apps.rtc` -- real-time communications measuring
  inter-packet delay (the Salsify-style setup of Fig. 9);
* :mod:`repro.apps.bulk` -- bulk data transfer measuring flow
  completion time (Fig. 10).

Each workload runs over any congestion controller, so a single MOCC
model (with per-application weight vectors) can be compared against
the kernel heuristics exactly as the paper does.
"""

from repro.apps.video import VideoSession, VideoResult, BITRATES_MBPS
from repro.apps.rtc import RtcResult, run_rtc
from repro.apps.bulk import BulkResult, run_bulk_transfers

__all__ = [
    "VideoSession",
    "VideoResult",
    "BITRATES_MBPS",
    "RtcResult",
    "run_rtc",
    "BulkResult",
    "run_bulk_transfers",
]
