"""Real-time communications workload (Fig. 9).

The paper's RTC experiment (a Salsify-style conference call) measures
*inter-packet delay*: the spacing between consecutive packet arrivals
at the receiver.  A transport that keeps queues short and its rate
smooth delivers packets at an even, small spacing; bufferbloat or rate
oscillation shows up directly as large or bursty gaps.

The workload runs a congestion-controlled flow with per-packet
recording enabled and computes the arrival-gap statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.runner import EvalNetwork
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import Controller

__all__ = ["RtcResult", "run_rtc"]


@dataclass
class RtcResult:
    """Inter-packet delay statistics of one RTC run."""

    mean_gap_ms: float
    p95_gap_ms: float
    jitter_ms: float          # std of arrival gaps
    mean_rtt_ms: float
    loss_rate: float
    delivered: int

    def summary(self) -> str:
        return (f"inter-packet delay {self.mean_gap_ms:.2f} ms "
                f"(p95 {self.p95_gap_ms:.2f}, jitter {self.jitter_ms:.2f}), "
                f"RTT {self.mean_rtt_ms:.1f} ms, loss {self.loss_rate:.2%}")


def run_rtc(controller: Controller, network: EvalNetwork, duration: float = 30.0,
            seed: int = 0) -> RtcResult:
    """Run an RTC-like flow and measure receiver-side packet spacing."""
    link = network.build_link(seed=seed * 31 + 17)
    spec = FlowSpec(controller=controller, packet_bytes=network.packet_bytes,
                    keep_packets=True)
    sim = Simulation(link, [spec], duration=duration, seed=seed)
    record = sim.run_all()[0]
    flow = sim.flows[0]

    arrivals = np.array(sorted(p.arrival_time for p in flow.packets
                               if p.arrival_time is not None))
    if len(arrivals) < 2:
        return RtcResult(float("inf"), float("inf"), float("inf"),
                         float("inf"), record.loss_rate, len(arrivals))
    gaps_ms = np.diff(arrivals) * 1000.0
    mean_rtt = record.mean_rtt if record.mean_rtt is not None else float("inf")
    return RtcResult(
        mean_gap_ms=float(gaps_ms.mean()),
        p95_gap_ms=float(np.percentile(gaps_ms, 95)),
        jitter_ms=float(gaps_ms.std()),
        mean_rtt_ms=mean_rtt * 1000.0,
        loss_rate=record.loss_rate,
        delivered=len(arrivals),
    )
