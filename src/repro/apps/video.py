"""Adaptive-bitrate video streaming over a congestion-controlled flow.

Reproduces the Fig. 8 setup: a video server streams chunked video; the
transport's delivered throughput determines how fast chunks download;
an MPC-style ABR algorithm (as used by Pensieve's MPC baseline) picks
each chunk's quality level to maximise QoE -- bitrate reward minus
rebuffering and quality-switch penalties -- using a harmonic-mean
throughput predictor over a short horizon.

The transport and the ABR are layered exactly as in the real system:
first the congestion controller runs on the network (producing the
delivered-throughput timeline of Fig. 8 top), then the streaming
session consumes that timeline chunk by chunk (producing the
quality-level histogram of Fig. 8 bottom).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.netsim.network import FlowRecord

__all__ = ["BITRATES_MBPS", "VideoResult", "VideoSession"]

#: Pensieve's quality ladder (Mbps); level 5 is the best.
BITRATES_MBPS = (0.3, 0.75, 1.2, 1.85, 2.85, 4.3)


@dataclass
class VideoResult:
    """Outcome of one streaming session."""

    qualities: list[int]
    rebuffer_seconds: float
    #: Mean delivered throughput of the transport (Mbps).
    mean_throughput_mbps: float

    def quality_counts(self) -> np.ndarray:
        """Chunks per quality level (the Fig. 8 histogram)."""
        counts = np.zeros(len(BITRATES_MBPS), dtype=int)
        for q in self.qualities:
            counts[q] += 1
        return counts

    @property
    def mean_quality(self) -> float:
        return float(np.mean(self.qualities)) if self.qualities else 0.0


class VideoSession:
    """MPC ABR streaming over a transport's throughput timeline."""

    def __init__(self, chunk_seconds: float = 4.0, horizon: int = 3,
                 buffer_capacity_s: float = 30.0, rebuffer_penalty: float = 4.3,
                 switch_penalty: float = 1.0, predictor_window: int = 5):
        self.chunk_seconds = chunk_seconds
        self.horizon = horizon
        self.buffer_capacity_s = buffer_capacity_s
        self.rebuffer_penalty = rebuffer_penalty
        self.switch_penalty = switch_penalty
        self.predictor_window = predictor_window

    # --- throughput timeline -------------------------------------------------

    @staticmethod
    def _timeline(record: FlowRecord):
        """(end_time, cumulative delivered megabits) steps from MI stats."""
        times, cum = [], []
        total = 0.0
        for s in record.records:
            total += s.acked * s.packet_bytes * 8 / 1e6
            times.append(s.end)
            cum.append(total)
        return np.asarray(times), np.asarray(cum)

    def stream(self, record: FlowRecord, n_chunks: int = 30) -> VideoResult:
        """Stream ``n_chunks`` over the transport's delivered timeline."""
        times, cum = self._timeline(record)
        if len(times) == 0:
            return VideoResult([], 0.0, 0.0)

        def downloaded_until(start_megabits: float, need: float) -> float:
            """Wall time at which ``need`` megabits past ``start`` are in."""
            target = start_megabits + need
            idx = int(np.searchsorted(cum, target))
            if idx >= len(cum):
                return float(times[-1]) + 1e9  # starved: never completes
            if idx == 0:
                prev_t, prev_c = 0.0, 0.0
            else:
                prev_t, prev_c = times[idx - 1], cum[idx - 1]
            seg = cum[idx] - prev_c
            frac = 0.0 if seg <= 0 else (target - prev_c) / seg
            return float(prev_t + frac * (times[idx] - prev_t))

        qualities: list[int] = []
        recent_mbps: list[float] = []
        rebuffer = 0.0
        now = float(times[0])
        consumed = 0.0  # megabits already downloaded
        buffer_s = 0.0
        last_quality = 0

        for _ in range(n_chunks):
            quality = self._mpc_choice(recent_mbps, buffer_s, last_quality)
            need = BITRATES_MBPS[quality] * self.chunk_seconds
            done = downloaded_until(consumed, need)
            elapsed = max(done - now, 1e-9)
            if done > times[-1]:
                break  # transport starved; session ends early
            recent_mbps.append(need / elapsed)
            if len(recent_mbps) > self.predictor_window:
                recent_mbps.pop(0)

            # Buffer dynamics: drains while downloading, +chunk on arrival.
            if elapsed > buffer_s:
                rebuffer += elapsed - buffer_s
                buffer_s = 0.0
            else:
                buffer_s -= elapsed
            buffer_s = min(buffer_s + self.chunk_seconds, self.buffer_capacity_s)

            qualities.append(quality)
            last_quality = quality
            consumed += need
            now = done

        return VideoResult(qualities=qualities, rebuffer_seconds=rebuffer,
                           mean_throughput_mbps=record.mean_throughput_mbps)

    # --- MPC ----------------------------------------------------------------------

    def _predict_mbps(self, recent: list[float]) -> float:
        """Harmonic-mean predictor (robust to outliers, as in MPC)."""
        if not recent:
            return BITRATES_MBPS[0]
        inv = [1.0 / max(r, 1e-6) for r in recent]
        return len(inv) / sum(inv)

    def _mpc_choice(self, recent: list[float], buffer_s: float,
                    last_quality: int) -> int:
        """Pick the next quality maximising QoE over the horizon."""
        predicted = self._predict_mbps(recent)
        best_q, best_score = 0, -np.inf
        for plan in itertools.product(range(len(BITRATES_MBPS)), repeat=self.horizon):
            score = 0.0
            buf = buffer_s
            prev = last_quality
            for q in plan:
                download = BITRATES_MBPS[q] * self.chunk_seconds / max(predicted, 1e-6)
                rebuf = max(download - buf, 0.0)
                buf = max(buf - download, 0.0) + self.chunk_seconds
                score += (BITRATES_MBPS[q]
                          - self.rebuffer_penalty * rebuf
                          - self.switch_penalty * abs(BITRATES_MBPS[q] - BITRATES_MBPS[prev]))
                prev = q
            if score > best_score:
                best_score = score
                best_q = plan[0]
        return best_q
