"""The default replint rule set, in stable report order."""

from __future__ import annotations

from repro.analysis.rules_batch import (
    BatchIsolationRule,
    BatchRngRule,
    BatchSharedMutableRule,
)
from repro.analysis.rules_dataflow import (
    EnvTaintRule,
    MutableGlobalStateRule,
    RngForeignDrawRule,
    RngSharedDrainRule,
    RngStreamOwnershipRule,
    SignaturePurityRule,
)
from repro.analysis.rules_determinism import (
    GlobalRandomRule,
    SetIterationRule,
    UnseededRngRule,
    UnsortedWalkRule,
    WallClockRule,
)
from repro.analysis.rules_compiled import (
    CompiledDigestRule,
    CompiledHandlerTableRule,
    CompiledPoolFieldsRule,
)
from repro.analysis.rules_engine import (
    EventTableRule,
    HeapPushRule,
    SlotsAttrsRule,
    TransmitUnpackRule,
)
from repro.analysis.rules_fingerprint import FingerprintCoverageRule
from repro.analysis.rules_resilience import (
    FaultSignatureCoverageRule,
    FaultStreamDeclarationRule,
    ResilienceRetryRule,
)
from repro.analysis.rules_rng import AdhocRngRule

__all__ = ["all_rules", "rules_by_id"]

_RULE_CLASSES = (
    # determinism
    UnseededRngRule,
    GlobalRandomRule,
    WallClockRule,
    UnsortedWalkRule,
    SetIterationRule,
    # fingerprint coverage
    FingerprintCoverageRule,
    # engine invariants
    EventTableRule,
    HeapPushRule,
    SlotsAttrsRule,
    TransmitUnpackRule,
    # compiled-core (kernel/reference engine sync)
    CompiledPoolFieldsRule,
    CompiledHandlerTableRule,
    CompiledDigestRule,
    # RNG-stream discipline
    AdhocRngRule,
    # cross-module dataflow (whole-program layer)
    RngStreamOwnershipRule,
    RngForeignDrawRule,
    RngSharedDrainRule,
    EnvTaintRule,
    MutableGlobalStateRule,
    SignaturePurityRule,
    # cross-cell isolation (batched execution)
    BatchSharedMutableRule,
    BatchRngRule,
    BatchIsolationRule,
    # fault injection & resilient sweep runtime
    FaultSignatureCoverageRule,
    FaultStreamDeclarationRule,
    ResilienceRetryRule,
)


def all_rules() -> list:
    """Fresh instances of every registered rule."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_id() -> dict:
    """``{rule_id: rule_instance}`` for the default rule set."""
    return {rule.id: rule for rule in all_rules()}
