"""Compiled-core invariants: the kernel engine's sync contracts.

The accelerated engine (:mod:`repro.netsim.kernel`) duplicates, by
design, two tables the reference engine owns -- the packet field set
(the struct-of-arrays pool's ``POOL_FIELDS`` vs ``Packet.__slots__``)
and the ``EV_*``-indexed handler table -- and promises bit-identical
results on top.  Nothing in the interpreter keeps those copies in
sync: adding a ``Packet`` slot without a pool array, or an event kind
without a kernel table slot, fails deep into a run (or worse, runs and
silently diverges).  Three rules move that to lint time:

* ``compiled-pool-fields`` -- the kernel's ``POOL_FIELDS`` literal
  must equal ``Packet.__slots__`` (order included), and ``PacketPool``
  must cover every field: initialised in ``__init__``, ``.extend``-ed
  **in place** in ``grow`` (a rebuild would strand the fused loop's
  hoisted list references on the old arrays), and reset per slot in
  ``alloc``;
* ``compiled-handler-table`` -- the kernel's ``_handlers`` tuple must
  register exactly one slot per ``EV_*`` kind the reference engine
  declares;
* ``compiled-digest`` -- live probe: one small scenario run under
  ``engine=kernel`` must digest-identically match the reference run,
  under both transit modes, with equal event counts.

The static workers (:func:`check_pool_fields`,
:func:`check_handler_table`) are plain source checks so the self-tests
run them on the known-bad fixtures; the project rules feed them the
real kernel source plus the live ``Packet.__slots__`` / EV count.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analysis.core import Finding, ProjectRule, default_root

__all__ = ["CompiledDigestRule", "CompiledHandlerTableRule",
           "CompiledPoolFieldsRule", "check_handler_table",
           "check_pool_fields"]

KERNEL_RELPATH = "netsim/kernel.py"
NETWORK_RELPATH = "netsim/network.py"
PACKET_RELPATH = "netsim/packet.py"


def _runtime_packet_slots() -> tuple | None:
    """Live ``Packet.__slots__`` in declaration order (``None`` if the
    netsim package is unimportable; analysis must not hard-require it)."""
    try:
        from repro.netsim.packet import Packet
    except Exception:  # pragma: no cover - environment issue
        return None
    return tuple(Packet.__slots__)


def _literal_tuple_assign(tree: ast.Module, name: str) -> ast.Assign | None:
    """The module-level ``name = ("...", ...)`` string-tuple assign."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name \
                and isinstance(node.value, ast.Tuple) \
                and node.value.elts \
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in node.value.elts):
            return node
    return None


def _self_attr_stores(fn: ast.FunctionDef) -> set:
    """Attrs assigned as ``self.<attr> = ...`` anywhere in ``fn``."""
    stores = set()
    for node in ast.walk(fn):
        targets = node.targets if isinstance(node, ast.Assign) else (
            [node.target] if isinstance(node, (ast.AugAssign, ast.AnnAssign))
            else [])
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                stores.add(target.attr)
    return stores


def _self_attr_extends(fn: ast.FunctionDef) -> set:
    """Attrs grown in place via ``self.<attr>.extend(...)``."""
    extends = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "extend" \
                and isinstance(node.func.value, ast.Attribute) \
                and isinstance(node.func.value.value, ast.Name) \
                and node.func.value.value.id == "self":
            extends.add(node.func.value.attr)
    return extends


def _self_subscript_stores(fn: ast.FunctionDef) -> set:
    """Attrs written per slot as ``self.<attr>[idx] = ...``."""
    stores = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Attribute) \
                    and isinstance(target.value.value, ast.Name) \
                    and target.value.value.id == "self":
                stores.add(target.value.attr)
    return stores


def check_pool_fields(source: str, relpath: str,
                      packet_slots: tuple | None = None,
                      rule_id: str = "compiled-pool-fields") -> list:
    """Pool-field findings for one kernel-shaped module.

    Expects a module-level ``POOL_FIELDS = ("...", ...)`` literal and a
    ``PacketPool`` class; modules without the literal are not
    kernel-shaped and yield nothing.  ``packet_slots`` is the expected
    field tuple (the live ``Packet.__slots__`` when omitted).
    """
    tree = ast.parse(source)
    findings: list[Finding] = []
    decl = _literal_tuple_assign(tree, "POOL_FIELDS")
    if decl is None:
        return findings
    fields = tuple(e.value for e in decl.value.elts)

    if packet_slots is None:
        packet_slots = _runtime_packet_slots()
    if packet_slots is not None and fields != tuple(packet_slots):
        missing = [s for s in packet_slots if s not in fields]
        extra = [f for f in fields if f not in packet_slots]
        detail = (f"missing {missing}, extra {extra}" if missing or extra
                  else "same names, different order")
        findings.append(Finding(
            relpath, decl.lineno, decl.col_offset, rule_id,
            f"POOL_FIELDS drifted from Packet.__slots__ ({detail}); the "
            f"pool's field arrays must mirror the packet record exactly"))

    pool = next((node for node in ast.walk(tree)
                 if isinstance(node, ast.ClassDef)
                 and node.name == "PacketPool"), None)
    if pool is None:
        findings.append(Finding(
            relpath, decl.lineno, decl.col_offset, rule_id,
            "module declares POOL_FIELDS but no PacketPool class backs "
            "the field arrays"))
        return findings
    methods = {fn.name: fn for fn in pool.body
               if isinstance(fn, ast.FunctionDef)}
    coverage = (
        ("__init__", _self_attr_stores,
         "never initialised (its array is missing)"),
        ("grow", _self_attr_extends,
         "not .extend-ed in place (a rebuild strands the fused loop's "
         "hoisted references on the old array)"),
        ("alloc", _self_subscript_stores,
         "not reset per slot (a recycled slot leaks stale state)"),
    )
    for name, collect, why in coverage:
        fn = methods.get(name)
        if fn is None:
            findings.append(Finding(
                relpath, pool.lineno, pool.col_offset, rule_id,
                f"PacketPool defines no {name}() covering the field "
                f"arrays"))
            continue
        missed = [f for f in fields if f not in collect(fn)]
        if missed:
            findings.append(Finding(
                relpath, fn.lineno, fn.col_offset, rule_id,
                f"PacketPool.{name}: field(s) {missed} {why}"))
    return findings


def check_handler_table(source: str, relpath: str, n_kinds: int,
                        rule_id: str = "compiled-handler-table") -> list:
    """Handler-table findings for one kernel-shaped module: the
    ``self._handlers = (...)`` tuple must carry ``n_kinds`` slots."""
    tree = ast.parse(source)
    handlers = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Attribute) \
                    and target.attr == "_handlers" \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                handlers = node
                break
    if handlers is None:
        return [Finding(relpath, 1, 0, rule_id,
                        "kernel module registers no _handlers table; the "
                        "fused loop dispatches cold kinds through it")]
    if len(handlers.value.elts) != n_kinds:
        return [Finding(
            relpath, handlers.lineno, handlers.col_offset, rule_id,
            f"kernel _handlers registers {len(handlers.value.elts)} slots "
            f"for the {n_kinds} EV_* kinds the reference engine declares; "
            f"every kind needs exactly one slot at its index")]
    return []


def _declared_ev_count(root: Path) -> int | None:
    """EV_* kind count from the reference engine's module-level
    ``EV_A, EV_B, ... = range(N)`` unpack (``None`` if absent)."""
    path = root / NETWORK_RELPATH
    if not path.exists():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Tuple) and target.elts \
                    and all(isinstance(e, ast.Name)
                            and e.id.startswith("EV_")
                            for e in target.elts):
                return len(target.elts)
    return None


def _ast_packet_slots(root: Path) -> tuple | None:
    """``Packet.__slots__`` read from a foreign root's own packet.py."""
    path = root / PACKET_RELPATH
    if not path.exists():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and cls.name == "Packet":
            decl = _literal_tuple_assign(
                ast.Module(body=cls.body, type_ignores=[]), "__slots__")
            if decl is not None:
                return tuple(e.value for e in decl.value.elts)
    return None


class CompiledPoolFieldsRule(ProjectRule):
    id = "compiled-pool-fields"
    family = "compiled-core"
    description = ("the kernel's POOL_FIELDS table equals "
                   "Packet.__slots__ and every field is covered by "
                   "PacketPool.__init__/grow/alloc")
    anchors = (KERNEL_RELPATH, PACKET_RELPATH)

    def check_project(self, root: Path) -> list:
        path = root / KERNEL_RELPATH
        if not path.exists():
            return []
        if Path(root).resolve() == default_root():
            slots = _runtime_packet_slots()
        else:
            slots = _ast_packet_slots(root)
        return check_pool_fields(path.read_text(encoding="utf-8"),
                                 KERNEL_RELPATH, slots, self.id)


class CompiledHandlerTableRule(ProjectRule):
    id = "compiled-handler-table"
    family = "compiled-core"
    description = ("the kernel's _handlers tuple registers one slot per "
                   "EV_* kind declared by the reference engine")
    anchors = (KERNEL_RELPATH, NETWORK_RELPATH)

    def check_project(self, root: Path) -> list:
        path = root / KERNEL_RELPATH
        if not path.exists():
            return []
        n_kinds = _declared_ev_count(root)
        if n_kinds is None:
            return []
        return check_handler_table(path.read_text(encoding="utf-8"),
                                   KERNEL_RELPATH, n_kinds, self.id)


class CompiledDigestRule(ProjectRule):
    id = "compiled-digest"
    family = "compiled-core"
    description = ("live probe: a small scenario digests identically "
                   "under engine=kernel and the reference engine")
    anchors = (KERNEL_RELPATH, NETWORK_RELPATH, "netsim/link.py",
               "netsim/sender.py", "eval/scenarios.py")

    def check_project(self, root: Path) -> list:
        if Path(root).resolve() != default_root():
            # The probe runs the *installed* package; on a foreign root
            # it would attribute installed-tree behaviour to files that
            # are not being analyzed.  The static compiled-core rules
            # carry the contract there.
            return []
        try:
            from repro.eval.parallel import _record_to_json
            from repro.eval.perf import perf_scenarios
            from repro.eval.scenarios import build_scenario_simulation
            from repro.netsim.kernel import KERNEL_COMPILED
        except Exception as exc:  # pragma: no cover - environment issue
            return [Finding(KERNEL_RELPATH, 1, 0, self.id,
                            f"digest probe could not import the engine "
                            f"stack: {exc}")]

        def run(scenario):
            sim = build_scenario_simulation(scenario)
            rows = [_record_to_json(r) for r in sim.run_all()]
            blob = json.dumps(rows, sort_keys=True).encode()
            return hashlib.sha256(blob).hexdigest(), sim.events_processed

        mode = "compiled" if KERNEL_COMPILED else "interpreted"
        findings: list[Finding] = []
        for transit in ("event", "eager"):
            probes = [perf_scenarios("single-bottleneck", transit=transit,
                                     duration=0.5, seed=2,
                                     schemes=("cubic", "bbr"),
                                     engine=engine)[0]
                      for engine in ("reference", "kernel")]
            (ref_digest, ref_events), (ker_digest, ker_events) = \
                run(probes[0]), run(probes[1])
            if ker_digest != ref_digest:
                findings.append(Finding(
                    KERNEL_RELPATH, 1, 0, self.id,
                    f"{mode} kernel diverged from the reference on the "
                    f"probe scenario (transit={transit}): result digests "
                    f"differ -- the bit-identity contract is broken"))
            elif ker_events != ref_events:
                findings.append(Finding(
                    KERNEL_RELPATH, 1, 0, self.id,
                    f"{mode} kernel dispatched {ker_events} events vs the "
                    f"reference's {ref_events} on the probe scenario "
                    f"(transit={transit}); counts must match exactly"))
        return findings
