"""replint: determinism & cache-correctness static analysis.

Everything this reproduction promises -- bit-identical golden traces,
serial==parallel suite identity, and a fingerprint-keyed result cache
whose staleness rules live in :meth:`repro.eval.scenarios.Scenario.
fingerprint` -- rests on invariants that are easy to break silently:
an unseeded RNG stream, a wall-clock read in the engine, a new
dataclass field forgotten by its signature function, an ``EV_*`` event
kind missing from the handler table.  This package turns those
invariants into machine-checked rules:

* :mod:`repro.analysis.core` -- the framework: :class:`Finding`,
  :class:`Rule` (per-file AST rules and whole-project introspection
  rules), the :class:`Analyzer` driver, inline ``# replint:
  disable=RULE`` suppressions and the checked-in findings baseline;
* :mod:`repro.analysis.rules_determinism` -- unseeded/global RNG,
  wall-clock reads, unsorted directory walks, set-order iteration;
* :mod:`repro.analysis.rules_fingerprint` -- every
  ``Scenario``/``FlowDef``/``LinkDef``/``PathDef``/``TopologySpec``
  dataclass field is consumed by its signature function or explicitly
  excluded (a new field cannot silently alias cache entries);
* :mod:`repro.analysis.rules_engine` -- the ``EV_*`` handler table,
  heap-push tuple arity, ``__slots__`` discipline, 4-tuple
  ``Link.transmit()`` unpacking;
* :mod:`repro.analysis.rules_rng` -- RNG-stream discipline: simulation
  classes receive their ``Generator`` via parameter instead of
  constructing ad-hoc streams in hot paths;
* :mod:`repro.analysis.project` -- the whole-program layer: project
  symbol table + call graph (import resolution incl. function-level
  imports, class/method indexing, caller/callee closures);
* :mod:`repro.analysis.rules_dataflow` -- the cross-module rules built
  on it: RNG-stream ownership against the
  :mod:`repro.netsim.rngstreams` registry (undeclared constructions,
  foreign draws, shared drains, colliding seed derivations), env-taint
  (``os.environ`` reads reaching execution or cached rows must be
  fingerprinted or justified-allowlisted), mutable global state in
  simulation packages, and fingerprint/signature purity.

Run it with ``python -m repro.analysis`` (or ``scripts/replint.py``);
``--format=sarif`` emits SARIF 2.1.0 for GitHub code scanning.  The
tier-1 test :mod:`tests.test_analysis` asserts zero findings on the
repository with an empty baseline.
"""

from repro.analysis.core import (
    Analyzer,
    AstRule,
    Baseline,
    Finding,
    ProjectRule,
    Rule,
)
from repro.analysis.project import ProjectIndex
from repro.analysis.registry import all_rules, rules_by_id

__all__ = ["Analyzer", "AstRule", "Baseline", "Finding", "ProjectIndex",
           "ProjectRule", "Rule", "all_rules", "rules_by_id"]
