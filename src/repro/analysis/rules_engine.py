"""Engine invariants: the event loop's structural contracts.

The hot loop of :class:`repro.netsim.network.Simulation` is built on
conventions the interpreter does not check until (at best) a crash
deep into a run, or (at worst) a silently wrong trace:

* ``event-handler-table`` -- the ``EV_*`` integer event kinds index a
  per-simulation handler tuple; adding a kind without growing the
  table (or never pushing it) dispatches the wrong handler;
* ``heap-push-arity`` -- every heap entry must share one tuple shape
  (``(time, seq, kind, flow, packet)``): a short tuple breaks the
  tie-breaking contract that keeps event order bit-exact, and a
  literal in the kind slot bypasses the EV table;
* ``slots-attrs`` -- ``__slots__`` classes (e.g. ``Packet``) reject
  undeclared attributes only at assignment time, mid-run; statically
  checking every ``self.x = ...`` (and, heuristically, every
  ``packet.x = ...``) moves that crash to lint time;
* ``transmit-unpack`` -- ``Link.transmit()`` returns the 4-tuple
  ``(delivered, drop_kind, depart_time, queue_delay)``; an unpack of
  any other arity is a latent ``ValueError`` on a path golden traces
  may not cover.

The per-file checks are plain :class:`~repro.analysis.core.AstRule`
syntax; the handler-table check is a
:class:`~repro.analysis.core.ProjectRule` anchored at
``netsim/network.py`` whose worker, :func:`check_engine_source`, also
runs on fixture files in the self-tests.
"""

from __future__ import annotations

import ast
from collections import Counter
from pathlib import Path

from repro.analysis.core import AstRule, Finding, ProjectRule, dotted_name

__all__ = ["EventTableRule", "HeapPushRule", "SlotsAttrsRule",
           "TransmitUnpackRule", "check_engine_source"]


# --- event-handler table ------------------------------------------------------

def check_engine_source(source: str, relpath: str,
                        rule_id: str = "event-handler-table") -> list:
    """Handler-table findings for one engine-shaped module.

    Expects the module to declare its event kinds as one module-level
    ``EV_A, EV_B, ... = range(N)`` unpack and to register handlers as a
    ``self._handlers = (...)`` tuple; both are matched structurally so
    the same check runs on the real engine and on the known-bad
    fixtures.
    """
    tree = ast.parse(source)
    findings: list[Finding] = []

    ev_names: list[str] = []
    ev_assign = None
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Tuple) and target.elts
                and all(isinstance(e, ast.Name) and e.id.startswith("EV_")
                        for e in target.elts)):
            continue
        ev_names = [e.id for e in target.elts]
        ev_assign = node
        break
    if ev_assign is None:
        return findings  # not an engine module; nothing to check

    if isinstance(ev_assign.value, ast.Call) \
            and dotted_name(ev_assign.value.func) == "range" \
            and len(ev_assign.value.args) == 1 \
            and isinstance(ev_assign.value.args[0], ast.Constant):
        n = ev_assign.value.args[0].value
        if n != len(ev_names):
            findings.append(Finding(
                relpath, ev_assign.lineno, ev_assign.col_offset, rule_id,
                f"{len(ev_names)} EV_* kinds unpacked from range({n})"))

    handlers = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Attribute) \
                    and target.attr == "_handlers" \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                handlers = node
                break
    if handlers is None:
        findings.append(Finding(
            relpath, ev_assign.lineno, ev_assign.col_offset, rule_id,
            f"module declares {len(ev_names)} EV_* kinds but no "
            f"_handlers table registers them"))
    elif len(handlers.value.elts) != len(ev_names):
        findings.append(Finding(
            relpath, handlers.lineno, handlers.col_offset, rule_id,
            f"_handlers registers {len(handlers.value.elts)} handlers "
            f"for {len(ev_names)} EV_* kinds; every kind must be "
            f"registered exactly once at its index"))

    loads = Counter(node.id for node in ast.walk(tree)
                    if isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id.startswith("EV_"))
    for name in ev_names:
        if loads[name] == 0:
            findings.append(Finding(
                relpath, ev_assign.lineno, ev_assign.col_offset, rule_id,
                f"{name} is declared but never referenced -- no push "
                f"site schedules it (dead kind, or a push uses a raw "
                f"literal)"))
    return findings


class EventTableRule(ProjectRule):
    id = "event-handler-table"
    family = "engine"
    description = ("every EV_* event kind is registered exactly once in "
                   "Simulation._handlers and scheduled by some push site")
    anchors = ("netsim/network.py",)

    def check_project(self, root: Path):
        path = root / "netsim" / "network.py"
        if not path.exists():
            return []
        return check_engine_source(path.read_text(encoding="utf-8"),
                                   "netsim/network.py", self.id)


# --- heap pushes --------------------------------------------------------------

class HeapPushRule(AstRule):
    id = "heap-push-arity"
    family = "engine"
    description = ("heap entries must share one tuple arity, with an "
                   "EV_* kind (never a literal) in the kind slot")
    packages = ("netsim",)

    #: Index of the event-kind element in a heap tuple
    #: (``(time, seq, kind, flow, packet)``).
    KIND_INDEX = 2

    def check(self, tree, source, relpath):
        findings: list[Finding] = []
        pushes = []  # (call node, tuple node)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None and name.rsplit(".", 1)[-1] == "heappush" \
                    and len(node.args) == 2 \
                    and isinstance(node.args[1], ast.Tuple):
                pushes.append((node, node.args[1]))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "_push" and len(node.args) >= 2:
                kind = node.args[1]
                if isinstance(kind, ast.Constant):
                    findings.append(Finding(
                        relpath, kind.lineno, kind.col_offset, self.id,
                        f"event kind pushed as literal {kind.value!r}; "
                        f"use an EV_* constant so the handler table and "
                        f"the event-table rule can see it"))
        if not pushes:
            return findings

        arities = Counter(len(t.elts) for _, t in pushes)
        majority = arities.most_common(1)[0][0]
        for call, tup in pushes:
            if len(tup.elts) != majority:
                findings.append(Finding(
                    relpath, call.lineno, call.col_offset, self.id,
                    f"heap push with {len(tup.elts)}-tuple; every other "
                    f"push site in this module uses {majority} -- mixed "
                    f"arities break heap tie-breaking and dispatch"))
            elif len(tup.elts) > self.KIND_INDEX:
                kind = tup.elts[self.KIND_INDEX]
                if isinstance(kind, ast.Constant):
                    findings.append(Finding(
                        relpath, kind.lineno, kind.col_offset, self.id,
                        f"event kind pushed as literal {kind.value!r}; "
                        f"use an EV_* constant"))
        return findings


# --- __slots__ discipline -----------------------------------------------------

def _packet_slots() -> frozenset | None:
    """Runtime ``Packet.__slots__`` (``None`` if netsim is unimportable)."""
    try:
        from repro.netsim.packet import Packet
    except Exception:  # pragma: no cover - analysis must not hard-require netsim
        return None
    return frozenset(Packet.__slots__)


#: Variable names heuristically assumed to hold a Packet instance.
_PACKET_NAMES = ("packet", "pkt")


class SlotsAttrsRule(AstRule):
    id = "slots-attrs"
    family = "engine"
    description = ("__slots__ classes must only assign declared "
                   "attributes (incl. the packet.* heuristic against "
                   "Packet.__slots__)")
    packages = ()

    def check(self, tree, source, relpath):
        findings: list[Finding] = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            slots = self._class_slots(cls)
            if slots is None:
                continue
            # A base class may contribute __dict__ or further slots we
            # cannot resolve statically; only strict (base-less) classes
            # are checked, which covers the engine's Packet.
            if any(not (isinstance(b, ast.Name) and b.id == "object")
                   for b in cls.bases):
                continue
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for attr, node in self._self_stores(fn):
                    if attr not in slots:
                        findings.append(Finding(
                            relpath, node.lineno, node.col_offset, self.id,
                            f"{cls.name}.{attr} assigned but not declared "
                            f"in __slots__ -- AttributeError at runtime"))
        packet_slots = _packet_slots()
        if packet_slots:
            for attr, node, varname in self._named_stores(tree, _PACKET_NAMES):
                if attr not in packet_slots:
                    findings.append(Finding(
                        relpath, node.lineno, node.col_offset, self.id,
                        f"{varname}.{attr} is not a Packet slot; Packet "
                        f"declares {sorted(packet_slots)}"))
        return findings

    @staticmethod
    def _class_slots(cls: ast.ClassDef) -> frozenset | None:
        for node in cls.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == "__slots__" \
                    and isinstance(node.value, (ast.Tuple, ast.List)):
                elts = node.value.elts
                if all(isinstance(e, ast.Constant) and isinstance(e.value, str)
                       for e in elts):
                    return frozenset(e.value for e in elts)
        return None

    @staticmethod
    def _store_targets(node):
        if isinstance(node, ast.Assign):
            return node.targets
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        return []

    def _self_stores(self, fn):
        for node in ast.walk(fn):
            for target in self._store_targets(node):
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    yield target.attr, target

    def _named_stores(self, tree, names):
        for node in ast.walk(tree):
            for target in self._store_targets(node):
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in names:
                    yield target.attr, target, target.value.id


# --- Link.transmit() contract -------------------------------------------------

class TransmitUnpackRule(AstRule):
    id = "transmit-unpack"
    family = "engine"
    description = ("Link.transmit() returns (delivered, drop_kind, "
                   "depart_time, queue_delay); unpacks must take 4")
    packages = ()

    ARITY = 4

    def check(self, tree, source, relpath):
        findings = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "transmit"):
                continue
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)) \
                        and len(target.elts) != self.ARITY:
                    findings.append(Finding(
                        relpath, node.lineno, node.col_offset, self.id,
                        f"transmit() result unpacked into "
                        f"{len(target.elts)} names; the contract is the "
                        f"{self.ARITY}-tuple (delivered, drop_kind, "
                        f"depart_time, queue_delay)"))
        return findings
