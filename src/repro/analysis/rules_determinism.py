"""Determinism lints: sources of run-to-run or host-to-host divergence.

The simulation contract is that every result is a pure function of the
scenario content and its seed -- that is what makes golden traces
pinnable, serial==parallel identity testable, and the fingerprint
cache safe.  These rules flag the classic ways that contract erodes:

* ``unseeded-rng`` -- an RNG constructed from OS entropy
  (``np.random.default_rng()`` with no seed) in simulation/eval code;
* ``global-random`` -- the process-wide ``random`` module or legacy
  ``np.random.*`` global-stream functions, whose state is shared by
  everything in the process (ordering between callers becomes part of
  the result);
* ``wall-clock`` -- ``time.time()`` / ``datetime.now()`` reads:
  results must depend on the simulation clock, never the host's
  (``time.perf_counter`` is fine -- measuring wall time is how the
  perf harness works, it just must not shape results);
* ``unsorted-walk`` -- ``os.listdir``/``glob`` results used without
  ``sorted()``: directory order is filesystem-dependent, so anything
  it feeds (cache pruning order, digest input order, suite discovery)
  differs across hosts;
* ``set-iteration`` -- iterating a ``set`` directly: iteration order
  depends on insertion history and per-process hash randomization, so
  any ordered consumer (scheduling, result rows, resolution order)
  becomes nondeterministic.
"""

from __future__ import annotations

import ast

from repro.analysis.core import AstRule, Finding, dotted_name

__all__ = ["GlobalRandomRule", "SetIterationRule", "UnseededRngRule",
           "UnsortedWalkRule", "WallClockRule", "SIMULATION_PACKAGES"]

#: The packages whose behaviour shapes simulation results (and
#: therefore fingerprints and golden traces).  ``rl``/``models``/
#: ``core`` training internals take their generators via parameter by
#: convention but are exercised through seeded entry points; the hard
#: determinism gate is on the simulation and evaluation pipeline.
SIMULATION_PACKAGES = ("netsim", "baselines", "eval")


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class UnseededRngRule(AstRule):
    id = "unseeded-rng"
    family = "determinism"
    description = ("np.random.default_rng()/RandomState() with no seed "
                   "draws from OS entropy -- results become unreproducible")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or _last(name) not in ("default_rng", "RandomState"):
                continue
            if not node.args and not node.keywords:
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name}() without a seed draws OS entropy; pass a "
                    f"seed (or a Generator) derived from the scenario seed"))
        return findings


#: Legacy global-stream ``np.random`` attributes; the seeded-generator
#: API (``default_rng``/``Generator``/bit generators) is the allowed
#: surface.
_NUMPY_GLOBAL_ALLOWED = {"default_rng", "Generator", "BitGenerator",
                         "SeedSequence", "RandomState", "PCG64", "Philox",
                         "SFC64", "MT19937"}

#: ``random``-module functions that read or mutate the process-wide
#: stream.
_STDLIB_GLOBAL = {"random", "randint", "randrange", "choice", "choices",
                  "shuffle", "sample", "uniform", "gauss", "normalvariate",
                  "expovariate", "betavariate", "triangular", "seed",
                  "getrandbits", "getstate", "setstate"}


class GlobalRandomRule(AstRule):
    id = "global-random"
    family = "determinism"
    description = ("process-global RNG state (random.* module functions, "
                   "legacy np.random.* globals) couples callers through "
                   "shared hidden state")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random" \
                    and parts[1] in _STDLIB_GLOBAL:
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name} uses the process-global random stream; take "
                    f"a seeded np.random.Generator parameter instead"))
            elif len(parts) == 3 and parts[0] in ("np", "numpy") \
                    and parts[1] == "random" \
                    and parts[2] not in _NUMPY_GLOBAL_ALLOWED:
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name} is the legacy numpy global stream; use a "
                    f"seeded np.random.Generator instead"))
        return findings


#: Wall-clock reads whose value leaks host time into results.
_WALL_CLOCK = {"time.time", "time.time_ns", "time.localtime", "time.gmtime",
               "time.ctime", "time.monotonic", "time.monotonic_ns"}
#: Suffix-matched so both ``datetime.now()`` (from-import) and
#: ``datetime.datetime.now()`` are caught.
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today",
                        "date.today")


class WallClockRule(AstRule):
    id = "wall-clock"
    family = "determinism"
    description = ("wall-clock reads (time.time, datetime.now) in "
                   "simulation/eval code; results must follow the "
                   "simulation clock")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK or name.endswith(_WALL_CLOCK_SUFFIXES):
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name}() reads the host clock; simulation behaviour "
                    f"must depend only on the simulated clock "
                    f"(time.perf_counter is fine for measuring wall time)"))
        return findings


#: Callables returning filesystem entries in platform-dependent order.
_WALK_CALLS = {"os.listdir", "os.scandir", "os.walk", "glob.glob",
               "glob.iglob"}
#: Method names matched on any receiver (pathlib idiom).
_WALK_METHODS = {"glob", "rglob", "iterdir"}


class UnsortedWalkRule(AstRule):
    id = "unsorted-walk"
    family = "determinism"
    description = ("os.listdir/glob results consumed without sorted(): "
                   "directory order is filesystem-dependent")
    packages = ()  # cache maintenance and digests live outside netsim too

    def check(self, tree, source, relpath):
        findings: list[Finding] = []
        self._walk(tree, False, relpath, findings)
        return findings

    def _walk(self, node, under_sorted, relpath, findings):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            is_walk = name in _WALK_CALLS \
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _WALK_METHODS)
            if is_walk and not under_sorted:
                label = name or f"<expr>.{node.func.attr}"
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{label}() yields entries in filesystem order; "
                    f"wrap the walk in sorted() so every host "
                    f"visits files identically"))
            if name == "sorted":
                under_sorted = True
        for child in ast.iter_child_nodes(node):
            self._walk(child, under_sorted, relpath, findings)


class SetIterationRule(AstRule):
    id = "set-iteration"
    family = "determinism"
    description = ("iterating a set: order depends on insertion history "
                   "and hash randomization; sort before iterating")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings: list[Finding] = []
        # One scope per function (plus the module body): a name assigned
        # a set expression in a scope is treated as a set for the rest
        # of that scope.  Purely local dataflow -- cheap, and exactly the
        # "build a set, then loop over it" shape that goes wrong.
        scopes = [tree] + [n for n in ast.walk(tree)
                           if isinstance(n, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))]
        for scope in scopes:
            nodes = list(self._scope_nodes(scope))
            set_names = set()
            for node in nodes:
                if isinstance(node, ast.Assign) and self._is_set_expr(
                        node.value, set_names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
            for node in nodes:
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_set_expr(it, set_names):
                        findings.append(Finding(
                            relpath, it.lineno, it.col_offset, self.id,
                            "iteration over a set visits elements in "
                            "hash order; iterate sorted(...) instead"))
        return sorted(set(findings))

    @staticmethod
    def _scope_nodes(scope):
        """All nodes of ``scope``, not descending into nested functions
        (each function is its own scope in the caller's scope list)."""
        stack = [scope]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    def _is_set_expr(self, node, set_names) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False
