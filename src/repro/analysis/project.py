"""Whole-program layer: project symbol table + call graph.

The per-file AST rules cannot see *cross-module* properties -- who
owns an RNG stream, which ``os.environ`` read flows into a cached
result row, which helper a ``fingerprint()`` transitively calls.
:class:`ProjectIndex` gives the dataflow rules
(:mod:`repro.analysis.rules_dataflow`) a shared, purely-static view of
the analyzed tree:

* every module parsed once, with its dotted name relative to the root
  package (``netsim.env``, ``eval/scenarios.py`` -> ``eval.scenarios``);
* an import map per module covering module-level *and* function-level
  imports (lazy ``from repro.models.zoo import default_zoo`` inside a
  method still creates an edge);
* a function/method index keyed by ``module:Qual.name``;
* best-effort call resolution -- enough to link ``self.meth(...)``,
  ``module.func(...)``, ``from m import f; f(...)`` and
  ``ClassName(...)`` (to ``__init__``) -- with caller/callee maps and
  BFS closures over them.

Resolution is deliberately conservative: an unresolvable call simply
creates no edge.  Rules built on the index therefore under-approximate
reachability (they can miss exotic flows, they do not invent them),
which is the right default for a linter that fails CI.

Everything here is pure AST -- no imports of the analyzed code -- so
the same index works on the live package and on known-bad fixture
trees under ``tests/fixtures/replint/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import dotted_name

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectIndex"]

#: Directory names never indexed (mirrors the analyzer's skip list).
_SKIP_DIRS = ("__pycache__", "_cache")


@dataclass
class FunctionInfo:
    """One function or method: location, AST, and raw call sites."""

    qualname: str                 #: ``module:func`` or ``module:Cls.meth``
    module: str                   #: dotted module name ("netsim.env")
    relpath: str                  #: file path relative to the root
    node: ast.AST                 #: the FunctionDef/AsyncFunctionDef
    cls: str | None = None        #: enclosing class name, if a method
    #: Dotted callee expressions as written (``self._draw``, ``np.log``).
    raw_calls: list = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module: tree, source, imports, top-level symbols."""

    module: str
    relpath: str
    tree: ast.AST
    source: str
    #: local alias -> absolute dotted target, for every ``import`` /
    #: ``from ... import`` anywhere in the file (function-level too).
    imports: dict = field(default_factory=dict)
    #: names of classes defined at module top level.
    classes: set = field(default_factory=set)
    #: names of functions defined at module top level.
    functions: set = field(default_factory=set)


class ProjectIndex:
    """Symbol table + call graph over one analyzed source tree."""

    def __init__(self, root: str | Path):
        self.root = Path(root).resolve()
        #: The root package name imports are written against
        #: (``repro`` for the live tree): ``repro.netsim.link`` and the
        #: index-internal ``netsim.link`` refer to the same module.
        self.package = self.root.name
        self.modules: dict[str, ModuleInfo] = {}
        self._relpath_to_module: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: ``{class qualname "module:Cls": {method name: fn qualname}}``
        self.methods: dict[str, dict] = {}
        self.callees: dict[str, set] = {}
        self.callers: dict[str, set] = {}
        self._build()

    # --- construction -----------------------------------------------------

    def _build(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            relpath = path.relative_to(self.root).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError):
                continue  # the analyzer reports parse errors separately
            module = self._module_name(relpath)
            info = ModuleInfo(module=module, relpath=relpath, tree=tree,
                              source=source)
            self._collect_imports(info)
            self._collect_symbols(info)
            self.modules[module] = info
            self._relpath_to_module[relpath] = module
        for info in self.modules.values():
            self._collect_functions(info)
        self._resolve_calls()

    def _module_name(self, relpath: str) -> str:
        parts = relpath[:-3].split("/")  # strip ".py"
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else ""

    def _normalize(self, target: str, module: str, level: int = 0) -> str:
        """Absolute dotted target -> index-internal module path."""
        if level:  # relative import: resolve against the importing module
            # ``from . import x`` (level 1) in module a.b refers to
            # package ``a``; each extra dot strips one more segment.
            base = module.split(".")
            base = base[:len(base) - level] if level <= len(base) else []
            return ".".join(base + ([target] if target else []))
        prefix = self.package + "."
        if target.startswith(prefix):
            return target[len(prefix):]
        if target == self.package:
            return ""
        return target

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    info.imports[local] = self._normalize(target, info.module)
            elif isinstance(node, ast.ImportFrom):
                base = self._normalize(node.module or "", info.module,
                                       node.level)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = (f"{base}.{alias.name}"
                                           if base else alias.name)

    def _collect_symbols(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, ast.ClassDef):
                info.classes.add(node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions.add(node.name)

    def _collect_functions(self, info: ModuleInfo) -> None:
        def visit(node, cls=None):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    name = (f"{cls}.{child.name}" if cls else child.name)
                    qual = f"{info.module}:{name}"
                    fn = FunctionInfo(qualname=qual, module=info.module,
                                      relpath=info.relpath, node=child,
                                      cls=cls)
                    for call in ast.walk(child):
                        if isinstance(call, ast.Call):
                            raw = dotted_name(call.func)
                            if raw:
                                fn.raw_calls.append(raw)
                    self.functions[qual] = fn
                    if cls:
                        key = f"{info.module}:{cls}"
                        self.methods.setdefault(key, {})[child.name] = qual
                    # nested defs: index them, attributed to the same
                    # class context (closures count as reachable code).
                    visit(child, cls)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, cls)
        visit(info.tree)

    # --- call resolution --------------------------------------------------

    def _resolve_symbol(self, name: str, info: ModuleInfo) -> str | None:
        """Resolve a dotted expression to a function qualname, if we can."""
        parts = name.split(".")
        head = parts[0]
        # Locally defined function / class.
        if head in info.functions and len(parts) == 1:
            return f"{info.module}:{head}"
        if head in info.classes:
            return self._class_target(f"{info.module}:{head}", parts[1:])
        # Imported symbol.
        if head in info.imports:
            target = info.imports[head]
            return self._imported_target(target, parts[1:])
        return None

    def _class_target(self, class_key: str, rest: list) -> str | None:
        table = self.methods.get(class_key, {})
        if not rest:  # ClassName(...) -> constructor
            return table.get("__init__")
        if len(rest) == 1:
            return table.get(rest[0])
        return None

    def _imported_target(self, target: str, rest: list) -> str | None:
        """``target`` is an absolute dotted import; walk ``rest`` into it."""
        parts = target.split(".") + rest
        # Longest prefix of ``parts`` that names an indexed module.
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                info = self.modules[module]
                tail = parts[cut:]
                if not tail:
                    return None
                if tail[0] in info.functions and len(tail) == 1:
                    return f"{module}:{tail[0]}"
                if tail[0] in info.classes:
                    return self._class_target(f"{module}:{tail[0]}", tail[1:])
                # Re-exported name (e.g. package __init__): follow one
                # import hop.
                if tail[0] in info.imports:
                    return self._imported_target(info.imports[tail[0]],
                                                 tail[1:])
                return None
        return None

    def _resolve_calls(self) -> None:
        for qual, fn in self.functions.items():
            info = self.modules[fn.module]
            targets = set()
            for raw in fn.raw_calls:
                parts = raw.split(".")
                if parts[0] == "self" and fn.cls is not None:
                    if len(parts) == 2:
                        target = self.methods.get(
                            f"{fn.module}:{fn.cls}", {}).get(parts[1])
                        if target:
                            targets.add(target)
                    continue
                target = self._resolve_symbol(raw, info)
                if target:
                    targets.add(target)
            self.callees[qual] = targets
            for target in targets:
                self.callers.setdefault(target, set()).add(qual)

    # --- queries ----------------------------------------------------------

    def module_of_path(self, relpath: str) -> str | None:
        return self._relpath_to_module.get(relpath.replace("\\", "/"))

    def enclosing_function(self, relpath: str, lineno: int) -> FunctionInfo | None:
        """Innermost indexed function containing ``lineno`` of ``relpath``."""
        best = None
        for fn in self.functions.values():
            if fn.relpath != relpath:
                continue
            node = fn.node
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= lineno <= end:
                if best is None or node.lineno > best.node.lineno:
                    best = fn
        return best

    def transitive_callers(self, qualname: str) -> set:
        """Every function that can reach ``qualname`` (excl. itself)."""
        return self._closure(qualname, self.callers)

    def transitive_callees(self, qualname: str) -> set:
        """Every function ``qualname`` can reach (excl. itself)."""
        return self._closure(qualname, self.callees)

    def _closure(self, start: str, edges: dict) -> set:
        seen: set = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for nxt in edges.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        seen.discard(start)
        return seen
