"""RNG-stream discipline: generators flow in, they are not minted mid-run.

The serial==parallel identity and the per-flow seeding scheme both
depend on a fixed set of named RNG streams created at construction
time (``__init__``/``reset``/``build*``) from the scenario seed.  A
``default_rng(...)`` call inside a per-step or per-ack method mints a
fresh stream on every invocation: even when seeded, the seed is
usually derived from loop state, which quietly couples the stream to
execution order -- exactly the coupling the stream architecture
removes.  Simulation classes must *receive* their
:class:`numpy.random.Generator` (or derive it once at construction);
hot paths only ever draw from it.

Unseeded construction anywhere is the separate ``unseeded-rng``
determinism rule; this rule is about *where* construction happens.
"""

from __future__ import annotations

import ast

from repro.analysis.core import AstRule, Finding, dotted_name
from repro.analysis.rules_determinism import SIMULATION_PACKAGES

__all__ = ["AdhocRngRule"]

#: Method names where constructing an RNG stream is legitimate: object
#: construction and explicit lifecycle resets.
_ALLOWED_METHODS = ("__init__", "__post_init__", "reset")
#: Name fragments marking factory methods (``build``, ``build_link``,
#: ``make_trace`` ...), which construct fresh objects by design.
_FACTORY_FRAGMENTS = ("build", "make")

_CONSTRUCTORS = ("default_rng", "RandomState")


def _is_allowed_method(name: str) -> bool:
    return name in _ALLOWED_METHODS \
        or any(fragment in name for fragment in _FACTORY_FRAGMENTS)


class AdhocRngRule(AstRule):
    id = "adhoc-rng"
    family = "rng"
    description = ("simulation classes receive their Generator via "
                   "parameter; no RNG construction in hot-path methods "
                   "(only __init__/__post_init__/reset/build*/make*)")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _is_allowed_method(fn.name):
                    continue
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func)
                    if name is None \
                            or name.rsplit(".", 1)[-1] not in _CONSTRUCTORS:
                        continue
                    findings.append(Finding(
                        relpath, node.lineno, node.col_offset, self.id,
                        f"{name}(...) constructs an RNG stream inside "
                        f"{cls.name}.{fn.name}(); hot paths must draw "
                        f"from a Generator created at construction "
                        f"(allowed contexts: "
                        f"{', '.join(_ALLOWED_METHODS)}, build*/make*)"))
        return findings
