"""Text, JSON, and SARIF reporters for replint findings."""

from __future__ import annotations

import json

from repro.analysis.core import finding_to_dict

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(findings, n_baselined: int = 0, n_files: int | None = None
                ) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        breakdown = ", ".join(f"{rule}: {count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("no findings")
    if n_baselined:
        lines.append(f"{n_baselined} baselined finding(s) suppressed")
    if n_files is not None:
        lines.append(f"{n_files} file(s) analyzed")
    return "\n".join(lines) + "\n"


def render_json(findings, n_baselined: int = 0, n_files: int | None = None
                ) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "findings": [finding_to_dict(f) for f in findings],
        "summary": {
            "total": len(findings),
            "baselined": n_baselined,
            "files": n_files,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def render_sarif(findings, rules=(), uri_prefix: str = "") -> str:
    """SARIF 2.1.0 report for GitHub code scanning.

    ``findings`` are post-suppression/post-baseline (the emitter never
    resurrects accepted findings).  ``rules`` supplies the tool-driver
    rule metadata; ``uri_prefix`` rebases finding paths (relative to
    the analyzed package root) onto repository-relative URIs, e.g.
    ``"src/repro"`` so code scanning annotates the right files.
    """
    rule_ids = sorted({f.rule for f in findings}
                      | {r.id for r in rules if r.id})
    descriptions = {r.id: r.description for r in rules if r.id}
    families = {r.id: r.family for r in rules if r.id}
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    def uri(path: str) -> str:
        return f"{uri_prefix.rstrip('/')}/{path}" if uri_prefix else path

    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri(f.path)},
                    "region": {
                        "startLine": max(f.line, 1),
                        # SARIF columns are 1-based; findings carry
                        # 0-based AST col offsets.
                        "startColumn": f.col + 1,
                    },
                },
            }],
        })
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "replint",
                    "rules": [{
                        "id": rule_id,
                        "shortDescription": {
                            "text": descriptions.get(rule_id, rule_id)},
                        "properties": {
                            "family": families.get(rule_id, "")},
                    } for rule_id in rule_ids],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
