"""Text and JSON reporters for replint findings."""

from __future__ import annotations

import json

from repro.analysis.core import finding_to_dict

__all__ = ["render_json", "render_text"]


def render_text(findings, n_baselined: int = 0, n_files: int | None = None
                ) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        breakdown = ", ".join(f"{rule}: {count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("no findings")
    if n_baselined:
        lines.append(f"{n_baselined} baselined finding(s) suppressed")
    if n_files is not None:
        lines.append(f"{n_files} file(s) analyzed")
    return "\n".join(lines) + "\n"


def render_json(findings, n_baselined: int = 0, n_files: int | None = None
                ) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "findings": [finding_to_dict(f) for f in findings],
        "summary": {
            "total": len(findings),
            "baselined": n_baselined,
            "files": n_files,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
