"""Command line for replint (``python -m repro.analysis``).

Exit codes: 0 clean, 1 non-baselined findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import fnmatch
import subprocess
import sys
from pathlib import Path

from repro.analysis.core import Analyzer, Baseline, default_root
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_sarif, render_text

__all__ = ["main"]

BASELINE_NAME = ".replint-baseline.json"


def _find_baseline(root: Path) -> Path | None:
    """Nearest checked-in baseline: package root, src/, or repo root."""
    for candidate in (root, root.parent, root.parent.parent):
        path = candidate / BASELINE_NAME
        if path.exists():
            return path
    return None


def _changed_files(root: Path) -> list[Path] | None:
    """Analyzable ``*.py`` files touched vs HEAD (worktree + index +
    untracked).

    Untracked files matter: a freshly added module is invisible to
    ``git diff HEAD`` until staged, which would let ``--changed-only``
    skip exactly the file most likely to carry new findings.

    Returns ``None`` when git is unavailable -- the caller falls back
    to a full scan rather than silently analyzing nothing.
    """
    repo = root.parent.parent  # <repo>/src/repro -> <repo>
    names: set[str] = set()
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    for command in commands:
        proc = subprocess.run(command, cwd=repo, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            return None
        names.update(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    files = []
    for name in sorted(names):
        path = (repo / name).resolve()
        if path.suffix == ".py" and path.exists():
            try:
                path.relative_to(root)
            except ValueError:
                continue
            files.append(path)
    return files


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description="determinism & cache-correctness lints for the "
                    "repro package")
    parser.add_argument("paths", nargs="*",
                        help="specific files to analyze (default: the "
                             "whole package)")
    parser.add_argument("--root", default=None,
                        help="package directory to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: nearest "
                             f"{BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring any baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings into the baseline "
                             "file and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="analyze only files changed vs HEAD "
                             "(git diff --name-only)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids or glob patterns "
                             "(e.g. rng-*, batch-*) to run exclusively")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids or glob patterns "
                             "to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and descriptions, then exit")
    return parser


def _pick_rules(select: str | None, ignore: str | None):
    """Filter the rule set; entries may be exact ids or glob patterns.

    ``--select 'rng-*'`` runs a whole family by id prefix.  An exact id
    that matches nothing is a usage error, and so is a pattern with
    zero hits -- a silently-empty selection would report "clean" while
    checking nothing.
    """
    rules = all_rules()
    known = {r.id for r in rules}
    for flag, raw in (("--select", select), ("--ignore", ignore)):
        if raw is None:
            continue
        chosen: set = set()
        unknown = []
        for pat in (p.strip() for p in raw.split(",") if p.strip()):
            if any(ch in pat for ch in "*?["):
                hits = {rid for rid in known
                        if fnmatch.fnmatchcase(rid, pat)}
                if not hits:
                    raise SystemExit(
                        f"replint: {flag}: pattern {pat!r} matches no "
                        f"rule id (see --list-rules)")
                chosen |= hits
            elif pat in known:
                chosen.add(pat)
            else:
                unknown.append(pat)
        if unknown:
            raise SystemExit(
                f"replint: {flag}: unknown rule id(s): "
                f"{', '.join(sorted(unknown))} (see --list-rules)")
        if flag == "--select":
            rules = [r for r in rules if r.id in chosen]
        else:
            rules = [r for r in rules if r.id not in chosen]
    return rules


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        rules = _pick_rules(args.select, args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.list_rules:
        by_family: dict[str, list] = {}
        for rule in rules:
            by_family.setdefault(rule.family, []).append(rule)
        for family in sorted(by_family):
            print(f"{family}:")
            for rule in by_family[family]:
                print(f"  {rule.id:24s} {rule.description}")
        return 0

    root = Path(args.root).resolve() if args.root else default_root()
    analyzer = Analyzer(root=root, rules=rules)

    files = None
    if args.paths and args.changed_only:
        print("replint: give explicit paths or --changed-only, not both",
              file=sys.stderr)
        return 2
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
        missing = [p for p in files if not p.exists()]
        if missing:
            print(f"replint: no such file: "
                  f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
            return 2
    elif args.changed_only:
        files = _changed_files(root)
        if files is not None and not files:
            print("no changed files to analyze")
            return 0

    findings = analyzer.analyze(files)
    n_files = len(files) if files is not None else len(analyzer.iter_files())

    baseline_path = Path(args.baseline) if args.baseline \
        else _find_baseline(root)
    if args.write_baseline:
        target = baseline_path or root.parent.parent / BASELINE_NAME
        Baseline.write(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    n_baselined = 0
    if baseline_path is not None and not args.no_baseline:
        findings, n_baselined = Baseline.load(baseline_path).split(findings)

    if args.format == "sarif":
        # Rebase finding paths (package-relative) onto repo-relative
        # URIs so code-scanning annotations land on the right files.
        try:
            uri_prefix = root.relative_to(root.parent.parent).as_posix()
        except ValueError:
            uri_prefix = ""
        sys.stdout.write(render_sarif(findings, rules, uri_prefix))
    else:
        render = render_json if args.format == "json" else render_text
        sys.stdout.write(render(findings, n_baselined, n_files))
    return 1 if findings else 0
