"""Fault-injection and resilient-runtime rules.

The fault layer (:mod:`repro.netsim.faults`) and the resilient sweep
runtime (:mod:`repro.eval.resilience`) each extend the determinism
contract in a way generic rules cannot see, so three dedicated checks
guard them:

``fault-signature-coverage``
    Static: every fault-spec dataclass in ``netsim/faults.py`` must
    list *all* of its fields in ``_signature_fields``.  The topology
    fingerprint folds fault schedules in through those tuples -- a
    field that escapes them is a knob that changes simulated results
    without changing the cache key, i.e. a cache poisoner.  Stale
    entries naming no field are findings too.

``fault-stream-declaration``
    Static: every RNG stream the fault runtime mints
    (``stream_rng("...")`` literals in ``netsim/faults.py``) must be
    declared in the ``STREAMS`` registry with ``derive`` =
    ``"salted-indexed"`` -- entropy ``(seed, salt, index)``, disjoint
    from sibling per-link streams by salt and keyed by link position
    -- and the fault streams' salts must not collide with any other
    salted stream.

``resilience-idempotent-retry``
    Static: :class:`~repro.eval.resilience.ResilientPool` re-runs its
    task function after crashes and timeouts, which is only sound for
    idempotent tasks.  Every pool call site's task function must be a
    module-level function named on the justified
    ``IDEMPOTENT_TASKS`` allowlist in ``eval/resilience.py``; stale
    entries (function gone, or no pool uses it) are findings, the same
    honesty mechanism the env and batch allowlists use.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import Finding, ProjectRule, dotted_name

__all__ = [
    "FaultSignatureCoverageRule",
    "FaultStreamDeclarationRule",
    "ResilienceRetryRule",
]

FAULTS_RELPATH = "netsim/faults.py"
STREAMS_RELPATH = "netsim/rngstreams.py"
RESILIENCE_RELPATH = "eval/resilience.py"

TASK_ALLOWLIST_NAME = "IDEMPOTENT_TASKS"

#: Directory names never scanned (mirrors the analyzer's skip set).
_SKIP_DIRS = ("__pycache__", "_cache")


def _parse_tree(root: Path, relpath: str) -> ast.Module | None:
    path = Path(root) / relpath
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return None  # missing/broken files are the parse-error rule's job


def _iter_sources(root: Path):
    """``(relpath, tree)`` for every parseable module under ``root``."""
    root = Path(root)
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        relpath = path.relative_to(root).as_posix()
        try:
            yield relpath, ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue


# --- fault-signature-coverage ------------------------------------------------

class FaultSignatureCoverageRule(ProjectRule):
    id = "fault-signature-coverage"
    description = ("every field of every fault-spec dataclass is listed in "
                   "_signature_fields (fault knobs must reach the topology "
                   "fingerprint)")
    family = "faults"
    anchors = (FAULTS_RELPATH,)

    def check_project(self, root: Path) -> list:
        tree = _parse_tree(root, FAULTS_RELPATH)
        if tree is None:
            return []
        findings: list[Finding] = []
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass = any(
                (dotted_name(d) or dotted_name(getattr(d, "func", d)) or "")
                .rsplit(".", 1)[-1] == "dataclass"
                for d in node.decorator_list)
            fields = [stmt.target.id for stmt in node.body
                      if isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)
                      and not stmt.target.id.startswith("_")]
            declared: list[str] | None = None
            declared_line = node.lineno
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and any(
                        isinstance(t, ast.Name)
                        and t.id == "_signature_fields"
                        for t in stmt.targets):
                    declared_line = stmt.lineno
                    if isinstance(stmt.value, (ast.Tuple, ast.List)) and all(
                            isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                            for e in stmt.value.elts):
                        declared = [e.value for e in stmt.value.elts]
                    else:
                        findings.append(Finding(
                            FAULTS_RELPATH, stmt.lineno, stmt.col_offset,
                            self.id,
                            f"{node.name}._signature_fields must be a "
                            f"literal tuple of field-name strings"))
                        declared = []
            if not is_dataclass or not fields:
                continue
            if declared is None:
                findings.append(Finding(
                    FAULTS_RELPATH, node.lineno, node.col_offset, self.id,
                    f"fault spec {node.name} declares no _signature_fields; "
                    f"its knobs would never reach the topology fingerprint"))
                continue
            for name in fields:
                if name not in declared:
                    findings.append(Finding(
                        FAULTS_RELPATH, node.lineno, node.col_offset, self.id,
                        f"field {name!r} of fault spec {node.name} is "
                        f"missing from _signature_fields; changing it "
                        f"would alter simulated results without changing "
                        f"the cache key"))
            for name in declared:
                if name not in fields:
                    findings.append(Finding(
                        FAULTS_RELPATH, declared_line, 0, self.id,
                        f"stale _signature_fields entry {name!r} on "
                        f"{node.name}: no such field; remove it"))
        return findings


# --- fault-stream-declaration -------------------------------------------------

def _registry_streams(tree: ast.Module) -> dict[str, dict]:
    """``{name: {field: literal}}`` for every StreamDef literal."""
    streams: dict[str, dict] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = dotted_name(node.func)
        if func is None or func.rsplit(".", 1)[-1] != "StreamDef":
            continue
        info = {kw.arg: kw.value.value for kw in node.keywords
                if kw.arg is not None and isinstance(kw.value, ast.Constant)}
        name = info.get("name")
        if isinstance(name, str):
            streams[name] = info
    return streams


class FaultStreamDeclarationRule(ProjectRule):
    id = "fault-stream-declaration"
    description = ("fault RNG streams are declared in the rngstreams "
                   "registry as salted-indexed with collision-free salts")
    family = "faults"
    anchors = (FAULTS_RELPATH, STREAMS_RELPATH)

    def check_project(self, root: Path) -> list:
        faults_tree = _parse_tree(root, FAULTS_RELPATH)
        if faults_tree is None:
            return []
        used: list[tuple[str, int, int]] = []
        for node in ast.walk(faults_tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func is None or func.rsplit(".", 1)[-1] != "stream_rng":
                continue
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                used.append((node.args[0].value, node.lineno,
                             node.col_offset))
            # Non-literal stream names are rng-stream-ownership's job.
        if not used:
            return []
        streams_tree = _parse_tree(root, STREAMS_RELPATH)
        streams = (_registry_streams(streams_tree)
                   if streams_tree is not None else {})
        findings: list[Finding] = []
        fault_names = {name for name, _, _ in used}
        for name, line, col in used:
            info = streams.get(name)
            if info is None:
                findings.append(Finding(
                    FAULTS_RELPATH, line, col, self.id,
                    f"fault stream {name!r} is minted here but not "
                    f"declared in the STREAMS registry"))
                continue
            if info.get("derive") != "salted-indexed":
                findings.append(Finding(
                    STREAMS_RELPATH, 1, 0, self.id,
                    f"fault stream {name!r} must derive "
                    f"'salted-indexed' (seed, salt, link index), got "
                    f"{info.get('derive')!r}: fault draws must be "
                    f"disjoint from sibling per-link streams by salt "
                    f"and keyed by link position"))
            elif "salt" not in info:
                findings.append(Finding(
                    STREAMS_RELPATH, 1, 0, self.id,
                    f"fault stream {name!r} declares no salt; its "
                    f"entropy would collide with the unsalted sibling "
                    f"stream of the same link index"))
        # Salt collisions: a fault stream sharing a salt with any other
        # salted stream folds two logically distinct streams into one.
        for name in sorted(fault_names):
            info = streams.get(name)
            if info is None or "salt" not in info:
                continue
            for other, other_info in sorted(streams.items()):
                if other != name and other_info.get("salt") == info["salt"]:
                    findings.append(Finding(
                        STREAMS_RELPATH, 1, 0, self.id,
                        f"fault stream {name!r} shares salt "
                        f"{info['salt']:#x} with stream {other!r}; salted "
                        f"streams must have pairwise distinct salts"))
        return findings


# --- resilience-idempotent-retry ----------------------------------------------

def _parse_task_allowlist(tree: ast.Module, rule_id: str):
    """``(names, findings, lineno)`` from the IDEMPOTENT_TASKS literal."""
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.target.id == TASK_ALLOWLIST_NAME:
            value = node.value
        elif isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == TASK_ALLOWLIST_NAME
                for t in node.targets):
            value = node.value
        else:
            continue
        names: list[str] = []
        if not isinstance(value, ast.Tuple):
            findings.append(Finding(
                RESILIENCE_RELPATH, node.lineno, node.col_offset, rule_id,
                f"{TASK_ALLOWLIST_NAME} must be a literal tuple of "
                f"(dotted_function_name, justification) pairs"))
            return names, findings, node.lineno
        for elt in value.elts:
            if (isinstance(elt, ast.Tuple) and len(elt.elts) == 2
                    and all(isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                            for e in elt.elts)):
                name, why = (e.value for e in elt.elts)
                if not why.strip():
                    findings.append(Finding(
                        RESILIENCE_RELPATH, elt.lineno, elt.col_offset,
                        rule_id,
                        f"{TASK_ALLOWLIST_NAME} entry {name!r} has an "
                        f"empty justification"))
                names.append(name)
            else:
                findings.append(Finding(
                    RESILIENCE_RELPATH, elt.lineno, elt.col_offset, rule_id,
                    f"{TASK_ALLOWLIST_NAME} entries must be literal "
                    f"(dotted_function_name, justification) string pairs"))
        return names, findings, node.lineno
    return None, findings, 1


def _module_of(relpath: str) -> str:
    """Dotted module of a root-relative path (root == the repro pkg)."""
    parts = relpath[:-3].split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts)


def _entry_defined(root: Path, entry: str) -> bool:
    """Does allowlist entry ``entry`` name a real module-level function?"""
    if not entry.startswith("repro."):
        return False
    parts = entry.split(".")
    module_parts, func = parts[1:-1], parts[-1]
    if not module_parts:
        return False
    tree = _parse_tree(root, "/".join(module_parts) + ".py")
    if tree is None:
        return False
    return any(isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
               and node.name == func for node in tree.body)


class ResilienceRetryRule(ProjectRule):
    id = "resilience-idempotent-retry"
    description = ("ResilientPool task functions must be module-level "
                   "functions on the justified IDEMPOTENT_TASKS allowlist "
                   "(retries re-run them)")
    family = "resilience"
    anchors = (RESILIENCE_RELPATH, "eval/")

    def _task_arg(self, call: ast.Call) -> ast.AST | None:
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        if len(call.args) >= 2:
            return call.args[1]
        return None

    def check_project(self, root: Path) -> list:
        root = Path(root)
        resilience_tree = _parse_tree(root, RESILIENCE_RELPATH)
        allow: list[str] | None = None
        findings: list[Finding] = []
        allow_line = 1
        if resilience_tree is not None:
            allow, findings, allow_line = _parse_task_allowlist(
                resilience_tree, self.id)

        used: set[str] = set()
        sites = 0
        for relpath, tree in _iter_sources(root):
            if relpath == RESILIENCE_RELPATH:
                continue  # the pool's own definition is not a call site
            module = _module_of(relpath)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = dotted_name(node.func)
                if func is None or \
                        func.rsplit(".", 1)[-1] != "ResilientPool":
                    continue
                sites += 1
                arg = self._task_arg(node)
                if arg is None:
                    continue  # no task argument: a TypeError at runtime
                if isinstance(arg, ast.Name):
                    full = f"{module}.{arg.id}"
                    if allow is not None and full in allow:
                        used.add(full)
                        continue
                    findings.append(Finding(
                        relpath, arg.lineno, arg.col_offset, self.id,
                        f"ResilientPool task {full!r} is not on "
                        f"{TASK_ALLOWLIST_NAME}; retries re-run the task, "
                        f"so list it with an idempotency justification"))
                elif (full := dotted_name(arg)) is not None:
                    last = full.rsplit(".", 1)[-1]
                    match = next((entry for entry in (allow or ())
                                  if entry.rsplit(".", 1)[-1] == last), None)
                    if match is not None:
                        used.add(match)
                        continue
                    findings.append(Finding(
                        relpath, arg.lineno, arg.col_offset, self.id,
                        f"ResilientPool task {full!r} matches no "
                        f"{TASK_ALLOWLIST_NAME} entry"))
                else:
                    findings.append(Finding(
                        relpath, arg.lineno, arg.col_offset, self.id,
                        f"ResilientPool task must be a module-level "
                        f"function named on {TASK_ALLOWLIST_NAME}, not an "
                        f"inline expression (workers re-import it by "
                        f"reference and retries re-run it)"))

        if sites and allow is None:
            findings.append(Finding(
                RESILIENCE_RELPATH, 1, 0, self.id,
                f"ResilientPool is used but no module-level "
                f"{TASK_ALLOWLIST_NAME} is declared in "
                f"{RESILIENCE_RELPATH}; declare the allowlist so retry "
                f"safety stays auditable"))
        for entry in allow or ():
            if not _entry_defined(root, entry):
                findings.append(Finding(
                    RESILIENCE_RELPATH, allow_line, 0, self.id,
                    f"stale {TASK_ALLOWLIST_NAME} entry {entry!r}: no "
                    f"module-level function by that dotted name exists; "
                    f"remove or fix the entry"))
            elif sites and entry not in used:
                findings.append(Finding(
                    RESILIENCE_RELPATH, allow_line, 0, self.id,
                    f"stale {TASK_ALLOWLIST_NAME} entry {entry!r}: no "
                    f"ResilientPool call site uses it; remove the entry"))
        return findings
