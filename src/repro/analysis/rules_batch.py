"""Cross-cell isolation rules for batched multi-cell execution.

:mod:`repro.eval.batch` interleaves many simulation cells inside one
process, which is only sound if the cells behave exactly as if each
ran alone.  The contract (documented in that module) is: cells share
*immutable* assets only, every shared binding is declared on a
justified ``SHARED_IMMUTABLE_ALLOWLIST``, and the batch layer itself
never mints or drains an RNG stream.  Three rules check the contract
from independent directions:

``batch-shared-mutable``
    Static: any object created *outside* the per-cell build loop and
    handed to a cell build (``build_scenario_simulation`` /
    ``Simulation``) must flow through an allowlisted binding name --
    and every allowlist entry must correspond to such a binding
    (stale entries are findings, the same honesty mechanism the env
    allowlist uses).

``batch-rng-derivation``
    Static: the batch layer must not construct or draw from RNG
    streams.  Generators are derived per cell, from the cell's own
    scenario seed, through the :mod:`repro.netsim.rngstreams`
    registry -- the contrapositive of "generators handed to a cell
    trace to a cell-indexed stream derivation".

``batch-cell-isolation``
    Live: build two probe cells of the installed package sharing a
    named trace, walk both object graphs, and assert that every
    object reachable from *both* cells' :class:`SimState` instances
    is immutable (or justified).  A shared ``np.random.Generator`` is
    called out specially.  The probe only runs against the installed
    package root; foreign roots (fixture trees) are covered by the
    static rules, and :func:`check_cell_isolation` is exposed so the
    tests can aim the walker at hand-built bad cells.
"""

from __future__ import annotations

import ast
import gc
import types
from pathlib import Path

from repro.analysis.core import (AstRule, Finding, ProjectRule, default_root,
                                 dotted_name)

__all__ = [
    "BatchSharedMutableRule",
    "BatchRngRule",
    "BatchIsolationRule",
    "check_batch_source",
    "check_cell_isolation",
]

#: The module the batch contract lives in, relative to the package root.
BATCH_RELPATH = "eval/batch.py"

ALLOWLIST_NAME = "SHARED_IMMUTABLE_ALLOWLIST"

#: Callables that construct a cell (receiving objects the cell keeps).
_CELL_BUILDERS = {"build_scenario_simulation", "Simulation"}

#: Last-segment names that mint an RNG stream or seed material.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "SeedSequence", "Philox",
                     "PCG64", "MT19937", "stream_rng", "spawn"}

#: Generator draw methods: calling any of these in the batch layer
#: means a stream is being drained outside every cell's own derivation.
_RNG_DRAWS = {"random", "uniform", "integers", "normal", "standard_normal",
              "choice", "shuffle", "permutation", "exponential", "poisson"}


# --- static: the allowlist vs. what the build loop actually shares ----------

def _root_name(node: ast.AST) -> str | None:
    """Base ``Name`` of an expression (``a.b[0].c`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _parse_allowlist(tree: ast.Module, relpath: str, rule_id: str):
    """``(names, findings, lineno)`` from the allowlist declaration.

    ``names`` is ``None`` when no declaration exists at module level.
    Entries must be literal ``(name, justification)`` string pairs with
    a non-empty justification -- the rule exists to force the *why*
    into the code.
    """
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.target.id == ALLOWLIST_NAME:
            value = node.value
        elif isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == ALLOWLIST_NAME
                for t in node.targets):
            value = node.value
        else:
            continue
        names: list[str] = []
        if not isinstance(value, ast.Tuple):
            findings.append(Finding(
                relpath, node.lineno, node.col_offset, rule_id,
                f"{ALLOWLIST_NAME} must be a literal tuple of "
                f"(name, justification) pairs"))
            return names, findings, node.lineno
        for elt in value.elts:
            if (isinstance(elt, ast.Tuple) and len(elt.elts) == 2
                    and all(isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                            for e in elt.elts)):
                name, why = (e.value for e in elt.elts)
                if not why.strip():
                    findings.append(Finding(
                        relpath, elt.lineno, elt.col_offset, rule_id,
                        f"{ALLOWLIST_NAME} entry {name!r} has an empty "
                        f"justification"))
                names.append(name)
            else:
                findings.append(Finding(
                    relpath, elt.lineno, elt.col_offset, rule_id,
                    f"{ALLOWLIST_NAME} entries must be literal "
                    f"(name, justification) string pairs"))
        return names, findings, node.lineno
    return None, findings, 1


def _loop_bound_names(loop: ast.AST) -> set:
    """Names (re)bound inside ``loop`` -- per-iteration objects."""
    bound: set = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def check_batch_source(source: str, relpath: str = BATCH_RELPATH,
                       rule_id: str = "batch-shared-mutable") -> list:
    """All ``batch-shared-mutable`` findings for one batch-layer file."""
    tree = ast.parse(source)
    allow, findings, allow_line = _parse_allowlist(tree, relpath, rule_id)
    shared_uses: set = set()
    build_calls = 0

    loops = [n for n in ast.walk(tree)
             if isinstance(n, (ast.For, ast.AsyncFor, ast.While))]
    for loop in loops:
        bound = _loop_bound_names(loop)
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or \
                    name.rsplit(".", 1)[-1] not in _CELL_BUILDERS:
                continue
            build_calls += 1
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if isinstance(arg, ast.Constant):
                    continue
                root = _root_name(arg)
                if root is None or root in bound:
                    continue  # fresh expression or per-iteration binding
                if allow is not None and root in allow:
                    shared_uses.add(root)
                    continue
                findings.append(Finding(
                    relpath, arg.lineno, arg.col_offset, rule_id,
                    f"'{root}' is created outside the per-cell loop and "
                    f"handed to a cell build; every cross-cell object "
                    f"must be immutable and listed in {ALLOWLIST_NAME} "
                    f"with a justification (or built per cell)"))

    if build_calls and allow is None:
        findings.append(Finding(
            relpath, 1, 0, rule_id,
            f"cell builds found but no module-level {ALLOWLIST_NAME}; "
            f"declare the (empty) allowlist so sharing stays auditable"))
    for name in allow or ():
        if name not in shared_uses:
            findings.append(Finding(
                relpath, allow_line, 0, rule_id,
                f"stale {ALLOWLIST_NAME} entry '{name}': no cell build "
                f"receives an outside-loop object by that name; remove "
                f"the entry"))
    return findings


class BatchSharedMutableRule(ProjectRule):
    id = "batch-shared-mutable"
    description = ("objects shared across batched cells must flow through "
                   "the justified SHARED_IMMUTABLE_ALLOWLIST")
    family = "isolation"
    anchors = (BATCH_RELPATH,)

    def check_project(self, root: Path) -> list:
        path = Path(root) / BATCH_RELPATH
        if not path.exists():
            return []
        return check_batch_source(path.read_text(), BATCH_RELPATH, self.id)


# --- static: no RNG minting or draining in the batch layer ------------------

class BatchRngRule(AstRule):
    id = "batch-rng-derivation"
    description = ("the batch layer neither mints nor drains RNG streams; "
                   "cells derive their own cell-indexed streams")
    family = "isolation"
    packages = (BATCH_RELPATH,)

    def check(self, tree: ast.AST, source: str, relpath: str) -> list:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            last = name.rsplit(".", 1)[-1]
            if last in _RNG_CONSTRUCTORS:
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name}(...) mints an RNG stream in the batch layer; "
                    f"generators must be derived per cell from the cell's "
                    f"own scenario seed via the rngstreams registry"))
            elif isinstance(node.func, ast.Attribute) and last in _RNG_DRAWS:
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{name}(...) draws from an RNG stream in the batch "
                    f"layer; interleaving order must never influence any "
                    f"cell's stream state"))
        return findings


# --- live: walk two probe cells' object graphs ------------------------------

#: Never traversed (and never reported): code/metadata objects shared
#: by construction, not by the batch layer.
_PRUNE_TYPES = (type, types.ModuleType, types.FunctionType,
                types.BuiltinFunctionType, types.CodeType,
                types.GetSetDescriptorType, types.MemberDescriptorType,
                types.MappingProxyType, property, staticmethod, classmethod)

#: Traversed but never reported: immutable values (or pure references
#: whose targets are themselves walked, like tuples and bound methods).
_INERT_TYPES = (str, bytes, bool, int, float, complex, type(None),
                frozenset, range, slice, tuple, types.MethodType)


def _reachable(obj) -> dict:
    """``{id: object}`` for everything reachable from ``obj``."""
    seen: dict = {}
    stack = [obj]
    while stack:
        cur = stack.pop()
        if id(cur) in seen or isinstance(cur, _PRUNE_TYPES):
            continue
        seen[id(cur)] = cur
        stack.extend(gc.get_referents(cur))
    return seen


def _default_allowed(obj) -> bool:
    """The live counterpart of the declared allowlist: frozen traces."""
    import numpy as np

    from repro.netsim.traces import BandwidthTrace
    if isinstance(obj, BandwidthTrace):
        return all(not value.flags.writeable
                   for value in vars(obj).values()
                   if isinstance(value, np.ndarray))
    return False


def check_cell_isolation(states, allowed=_default_allowed,
                         relpath: str = BATCH_RELPATH,
                         rule_id: str = "batch-cell-isolation") -> list:
    """Findings for mutable objects reachable from >= 2 of ``states``.

    ``states`` are the cells' :class:`SimState` objects (anything
    rooting a cell's object graph works).  ``allowed(obj)`` says
    whether a shared object is justified -- the default accepts only
    traces whose array payloads are frozen read-only, mirroring the
    declared allowlist in :mod:`repro.eval.batch`.
    """
    import numpy as np

    graphs = [_reachable(state) for state in states]
    counts: dict = {}
    for graph in graphs:
        for obj_id in graph:
            counts[obj_id] = counts.get(obj_id, 0) + 1
    shared = [(next(g[obj_id] for g in graphs if obj_id in g), n)
              for obj_id, n in counts.items() if n >= 2]

    def _is_frozen_dataclass(obj) -> bool:
        params = getattr(type(obj), "__dataclass_params__", None)
        return params is not None and params.frozen

    # A justified instance's attribute ``__dict__`` is the same asset,
    # not an independent sharing channel -- exempt it alongside its
    # owner (mutating it is already a hard fault for frozen arrays and
    # is what the probe exists to keep impossible elsewhere).
    exempt_ids = {id(vars(obj)) for obj, _ in shared
                  if hasattr(obj, "__dict__")
                  and (_is_frozen_dataclass(obj) or allowed(obj))}

    messages: set = set()
    for obj, n in shared:
        if id(obj) in exempt_ids:
            continue
        if isinstance(obj, _INERT_TYPES) or \
                isinstance(obj, (np.dtype, np.generic)):
            continue
        if isinstance(obj, np.ndarray) and not obj.flags.writeable:
            continue
        if _is_frozen_dataclass(obj):
            # The instance cannot be rebound; its field values are
            # themselves in the walk and judged on their own.
            continue
        if allowed(obj):
            continue
        kind = f"{type(obj).__module__}.{type(obj).__qualname__}"
        if isinstance(obj, (np.random.Generator, np.random.BitGenerator,
                            np.random.SeedSequence)):
            messages.add(
                f"{kind} is reachable from {n} cells' SimStates; every "
                f"generator handed to a cell must derive from that "
                f"cell's own cell-indexed stream (rngstreams registry)")
        else:
            messages.add(
                f"mutable {kind} is reachable from {n} cells' SimStates; "
                f"cross-cell objects must be immutable and justified in "
                f"{ALLOWLIST_NAME}")
    return [Finding(relpath, 1, 0, rule_id, message)
            for message in sorted(messages)]


class BatchIsolationRule(ProjectRule):
    id = "batch-cell-isolation"
    description = ("no unlisted mutable object is reachable from two "
                   "batched cells' SimStates (live two-cell probe)")
    family = "isolation"
    anchors = (BATCH_RELPATH, "eval/scenarios.py", "netsim/")

    def check_project(self, root: Path) -> list:
        if Path(root).resolve() != default_root():
            # The probe builds cells of the *installed* package; on a
            # foreign root it would attribute installed-tree findings
            # to files that are not being analyzed.  The static rules
            # carry the contract there.
            return []
        try:
            from repro.eval.batch import BatchRunner
            from repro.eval.scenarios import ScenarioSuite
        except Exception as exc:  # pragma: no cover - environment issue
            return [Finding(BATCH_RELPATH, 1, 0, self.id,
                            f"isolation probe could not import the batch "
                            f"layer: {exc}")]
        # Two classical-scheme cells sharing one named trace: cheap to
        # build (no zoo resolution, nothing is run) yet exercising the
        # exact sharing path -- make_trace(cache=...) -- batches use.
        scenarios = ScenarioSuite(
            name="replint-isolation-probe", lineups=[("cubic", "bbr")],
            traces=("wifi-walk",), seeds=(0, 1), duration=0.05).expand()
        cells = BatchRunner(prewarm=False).build_cells(scenarios)
        broken = [c for c in cells if c.error is not None]
        if broken:
            return [Finding(BATCH_RELPATH, 1, 0, self.id,
                            f"isolation probe cell failed to build: "
                            f"{broken[0].error}")]
        return check_cell_isolation([cell.sim.state for cell in cells],
                                    rule_id=self.id)
