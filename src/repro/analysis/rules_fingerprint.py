"""Fingerprint coverage: every dataclass field reaches its signature.

The result cache (:mod:`repro.eval.parallel`) is keyed by
:meth:`repro.eval.scenarios.Scenario.fingerprint`, which folds in
:meth:`FlowDef.signature` and ``_topology_signature``.  The failure
mode this rule exists for: someone adds a behavioural field to one of
those dataclasses, forgets the signature function, and two scenarios
that differ only in the new field now *alias the same cache entry* --
the second run silently returns the first run's results.

The check introspects the live dataclasses (``dataclasses.fields``)
and the *source* of the consuming function (``inspect.getsource`` +
``ast``): a field is covered when the consumer's body reads an
attribute of that name.  Deliberately uncovered fields (display names,
suite labels) must be listed in the spec's ``exclusions`` dict with a
one-line justification, and the rule also flags exclusion entries that
name fields which no longer exist -- the list cannot rot silently.

Coverage-by-attribute-name is intentionally coarse: it cannot prove
the read *contributes* to the hash, only that the author touched the
field while writing the signature.  That is the right trade -- the
drift being guarded against is *forgetting the field entirely*.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path

from repro.analysis.core import Finding, ProjectRule

__all__ = ["CoverageSpec", "FingerprintCoverageRule", "check_coverage",
           "consumed_attrs", "default_specs"]


@dataclass(frozen=True)
class CoverageSpec:
    """One dataclass/consumer pair the coverage rule verifies.

    ``exclusions`` maps field name -> justification for fields that are
    *deliberately* not part of the fingerprint.
    """

    cls: type
    consumer: object  # function or unbound method whose source is scanned
    relpath: str      # where findings should point
    exclusions: tuple = ()  # ((field, justification), ...)

    def excluded_fields(self) -> dict:
        return dict(self.exclusions)


def consumed_attrs(func) -> frozenset:
    """Attribute names read anywhere in ``func``'s source.

    Collects every ``ast.Attribute.attr`` -- whichever variable holds
    the instance (``self``, ``ld``, ``p``, ``spec``), a read of field
    ``x`` appears as an attribute access named ``x``.
    """
    source = textwrap.dedent(inspect.getsource(func))
    tree = ast.parse(source)
    return frozenset(node.attr for node in ast.walk(tree)
                     if isinstance(node, ast.Attribute))


def check_coverage(spec: CoverageSpec, rule_id: str = "fingerprint-coverage"
                   ) -> list:
    """Findings for one spec: uncovered fields and stale exclusions."""
    if not is_dataclass(spec.cls):
        return [Finding(spec.relpath, 1, 0, rule_id,
                        f"{spec.cls.__name__} is not a dataclass; the "
                        f"coverage spec is stale")]
    consumer_name = getattr(spec.consumer, "__qualname__",
                            getattr(spec.consumer, "__name__", "consumer"))
    try:
        consumed = consumed_attrs(spec.consumer)
    except (OSError, TypeError) as exc:
        return [Finding(spec.relpath, 1, 0, rule_id,
                        f"cannot read source of {consumer_name}: {exc}")]
    line = _class_lineno(spec.cls)
    excluded = spec.excluded_fields()
    field_names = {f.name for f in fields(spec.cls)}

    findings = []
    for name in sorted(field_names):
        if name in consumed or name in excluded:
            continue
        findings.append(Finding(
            spec.relpath, line, 0, rule_id,
            f"{spec.cls.__name__}.{name} is not consumed by "
            f"{consumer_name} and not on its exclusion list -- scenarios "
            f"differing only in {name!r} would alias one cache entry"))
    for name in sorted(excluded):
        if name not in field_names:
            findings.append(Finding(
                spec.relpath, line, 0, rule_id,
                f"exclusion list for {spec.cls.__name__} names "
                f"{name!r}, which is not a field -- stale entry"))
    return findings


def _class_lineno(cls: type) -> int:
    try:
        return inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return 1


def default_specs() -> list[CoverageSpec]:
    """The repository's fingerprint surface.

    Imports lazily so the analysis framework itself stays importable
    without numpy/netsim (e.g. when only syntax rules run on fixtures).
    """
    from repro.eval import scenarios
    from repro.netsim.topology import LinkDef, PathDef, TopologySpec

    return [
        CoverageSpec(
            cls=scenarios.Scenario,
            consumer=scenarios.Scenario.fingerprint,
            relpath="eval/scenarios.py",
            exclusions=(
                ("name", "display label; renames keep cache entries"),
                ("suite", "grouping label, never shapes results"),
                ("lineup", "display label of the source line-up"),
                ("churn", "fully captured by the start/stop it rewrites "
                          "onto the flows in __post_init__"),
            )),
        CoverageSpec(
            cls=scenarios.FlowDef,
            consumer=scenarios.FlowDef.signature,
            relpath="eval/scenarios.py",
            exclusions=(
                ("label", "display label; display_label() falls back to "
                          "the fingerprinted scheme"),
            )),
        CoverageSpec(
            cls=LinkDef,
            consumer=scenarios._topology_signature,
            relpath="eval/scenarios.py",
            exclusions=()),
        CoverageSpec(
            cls=PathDef,
            consumer=scenarios._topology_signature,
            relpath="eval/scenarios.py",
            exclusions=()),
        CoverageSpec(
            cls=TopologySpec,
            consumer=scenarios._topology_signature,
            relpath="eval/scenarios.py",
            exclusions=(
                ("name", "display name; excluded so topology renames "
                         "keep their cache entries"),
            )),
    ]


class FingerprintCoverageRule(ProjectRule):
    id = "fingerprint-coverage"
    family = "fingerprint"
    description = ("every Scenario/FlowDef/LinkDef/PathDef/TopologySpec "
                   "field is consumed by its signature function or "
                   "explicitly excluded")
    anchors = ("eval/scenarios.py", "netsim/topology.py")

    def check_project(self, root: Path):
        try:
            specs = default_specs()
        except Exception as exc:  # pragma: no cover - import environment issue
            return [Finding("eval/scenarios.py", 1, 0, self.id,
                            f"cannot introspect fingerprint surface: {exc}")]
        findings = []
        for spec in specs:
            findings.extend(check_coverage(spec, self.id))
        return findings
