"""Cross-module dataflow rules: RNG-stream ownership, env/config
taint, mutable global state, and signature purity.

These are the properties the per-file lints cannot see (PR 6's rules
stop at a module boundary) and that the next engine steps -- batched
multi-cell execution, compiled kernels, cross-host sharding --
multiply the ways of breaking:

* ``rng-stream-ownership`` -- every generator ``netsim`` constructs
  must be a stream declared in :mod:`repro.netsim.rngstreams`, and the
  declared derivations must be provably collision-free (or carry a
  justification for a known overlap).
* ``rng-foreign-draw`` / ``rng-shared-drain`` -- one stream, one
  consumer: drawing from *another object's* generator, or fanning one
  local generator out to several consumers, couples their bitstreams
  to each other's call order.
* ``env-taint`` -- an ``os.environ`` read whose value can reach
  ``Simulation``/``Scenario`` execution or a cached result row is an
  unfingerprinted cache key; it must be fingerprinted or sit on the
  justified allowlist (stale allowlist entries are findings, like
  stale fingerprint exclusions).
* ``mutable-global-state`` -- a module-level mutable container written
  from a function body is cross-cell shared state, the exact hazard of
  interleaved multi-cell loops.
* ``signature-purity`` -- ``fingerprint``/``signature`` functions are
  cache-key producers; any side effect in them (or one level into
  their callees) corrupts key stability.

All checks are pure AST over :class:`repro.analysis.project.ProjectIndex`
-- no imports of analyzed code -- so they run identically on the live
package and on fixture trees.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import AstRule, Finding, ProjectRule, dotted_name
from repro.analysis.project import ProjectIndex
from repro.analysis.rules_determinism import (_WALL_CLOCK,
                                              _WALL_CLOCK_SUFFIXES,
                                              SIMULATION_PACKAGES)

__all__ = ["RngStreamOwnershipRule", "RngForeignDrawRule",
           "RngSharedDrainRule", "EnvTaintRule", "MutableGlobalStateRule",
           "SignaturePurityRule", "ENV_ALLOWLIST"]

#: Generator methods that consume stream state when called.
_DRAW_METHODS = frozenset({
    "random", "uniform", "integers", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "exponential", "poisson", "binomial",
    "lognormal", "gamma", "beta", "bytes", "triangular"})

_RNG_CONSTRUCTORS = ("default_rng", "RandomState")

#: Where the stream registry lives, relative to the analyzed root.
_REGISTRY_RELPATH = "netsim/rngstreams.py"

#: Mirrors :data:`repro.netsim.rngstreams.INDEX_SALT_FLOOR` -- kept as
#: a literal so the rule stays import-free on fixture trees.
_INDEX_SALT_FLOOR = 1 << 16


# --- rng-stream-ownership ----------------------------------------------------

def _parse_registry(path: Path) -> list[dict] | None:
    """StreamDef literals from a registry source, or ``None`` if absent.

    Pure AST extraction (constant keywords only) so the rule works on
    fixture registries without importing them.
    """
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return None
    streams = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.rsplit(".", 1)[-1] != "StreamDef":
            continue
        entry: dict = {"lineno": node.lineno, "col": node.col_offset}
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Constant) and i == 0:
                entry["name"] = arg.value
        for kw in node.keywords:
            if kw.arg and isinstance(kw.value, ast.Constant):
                entry[kw.arg] = kw.value.value
        streams.append(entry)
    return streams


def _int_valued(stream: dict) -> bool:
    return stream.get("derive") in ("raw", "affine")


class RngStreamOwnershipRule(ProjectRule):
    id = "rng-stream-ownership"
    family = "rng-ownership"
    description = ("every netsim RNG construction goes through a stream "
                   "declared in netsim/rngstreams.py; declared "
                   "derivations must be collision-free or justified")
    anchors = ("netsim/",)

    def check_project(self, root):
        root = Path(root)
        registry_path = root / _REGISTRY_RELPATH
        streams = _parse_registry(registry_path)
        findings = []
        used_names: set = set()

        netsim_dir = root / "netsim"
        paths = sorted(netsim_dir.rglob("*.py")) if netsim_dir.is_dir() else []
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError, ValueError):
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail in _RNG_CONSTRUCTORS \
                        and relpath != _REGISTRY_RELPATH:
                    findings.append(Finding(
                        relpath, node.lineno, node.col_offset, self.id,
                        f"{name}(...) constructs an undeclared generator; "
                        f"declare a stream in {_REGISTRY_RELPATH} and mint "
                        f"it via stream_rng(...)"))
                elif tail == "stream_rng":
                    if not node.args or not isinstance(node.args[0],
                                                       ast.Constant):
                        findings.append(Finding(
                            relpath, node.lineno, node.col_offset, self.id,
                            "stream_rng() called with a non-literal stream "
                            "name; ownership cannot be verified statically"))
                        continue
                    stream_name = node.args[0].value
                    used_names.add(stream_name)
                    if streams is not None and not any(
                            s.get("name") == stream_name for s in streams):
                        findings.append(Finding(
                            relpath, node.lineno, node.col_offset, self.id,
                            f"stream_rng({stream_name!r}) references a "
                            f"stream not declared in {_REGISTRY_RELPATH}"))

        if streams is None:
            if findings:  # constructions exist but no registry to own them
                findings.append(Finding(
                    _REGISTRY_RELPATH, 1, 0, self.id,
                    "netsim constructs RNGs but has no stream registry "
                    f"({_REGISTRY_RELPATH} missing or unparsable)"))
            return findings

        findings.extend(self._check_declarations(streams, used_names))
        return findings

    def _check_declarations(self, streams, used_names):
        findings = []
        seen: dict = {}
        by_domain: dict = {}
        for s in streams:
            name = s.get("name")
            if not name:
                continue
            if name in seen:
                findings.append(Finding(
                    _REGISTRY_RELPATH, s["lineno"], s["col"], self.id,
                    f"stream {name!r} declared twice"))
            seen[name] = s
            by_domain.setdefault(s.get("domain"), []).append(s)
            if name not in used_names:
                findings.append(Finding(
                    _REGISTRY_RELPATH, s["lineno"], s["col"], self.id,
                    f"stream {name!r} is declared but never minted via "
                    f"stream_rng(); remove the stale declaration"))

        for domain, members in sorted(by_domain.items(),
                                      key=lambda kv: str(kv[0])):
            findings.extend(self._check_domain(domain, members))

        # A collision_note must justify a *live* overlap: int-valued
        # kinds need an int-valued sibling in the domain, a salted
        # stream needs a sub-floor salt next to an indexed sibling.
        for s in streams:
            if not s.get("collision_note") or not s.get("name"):
                continue
            siblings = [o for o in by_domain.get(s.get("domain"), [])
                        if o is not s]
            live = (_int_valued(s) and any(_int_valued(o) for o in siblings)) \
                or (s.get("derive") == "salted"
                    and (s.get("salt") or 0) < _INDEX_SALT_FLOOR
                    and any(o.get("derive") == "indexed" for o in siblings))
            if not live:
                findings.append(Finding(
                    _REGISTRY_RELPATH, s["lineno"], s["col"], self.id,
                    f"stream {s['name']!r} carries a collision_note but no "
                    f"other stream in domain {s.get('domain')!r} can "
                    f"overlap it; remove the stale note"))
        return findings

    def _check_domain(self, domain, members):
        findings = []
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                findings.extend(self._check_pair(domain, a, b))
        return findings

    def _check_pair(self, domain, a, b):
        da, db = a.get("derive"), b.get("derive")
        loc = (b["lineno"], b["col"])
        name_a, name_b = a.get("name"), b.get("name")

        def finding(msg):
            return [Finding(_REGISTRY_RELPATH, loc[0], loc[1], self.id, msg)]

        if da == "raw" and db == "raw":
            return finding(
                f"streams {name_a!r} and {name_b!r} both derive raw seeds "
                f"in domain {domain!r}: identical bitstreams for every seed")
        if da == "affine" and db == "affine" \
                and a.get("mul") == b.get("mul") \
                and a.get("add") == b.get("add"):
            return finding(
                f"streams {name_a!r} and {name_b!r} declare the same affine "
                f"derivation in domain {domain!r}: identical bitstreams")
        if _int_valued(a) and _int_valued(b):
            if not (a.get("collision_note") and b.get("collision_note")):
                return finding(
                    f"int-valued derivations of {name_a!r} ({da}) and "
                    f"{name_b!r} ({db}) can overlap in domain {domain!r}; "
                    f"use tuple seeding (salted/indexed) or document the "
                    f"accepted overlap with collision_note on both")
            return []
        if da == "salted" and db == "salted" \
                and a.get("salt") == b.get("salt"):
            return finding(
                f"streams {name_a!r} and {name_b!r} share salt "
                f"{a.get('salt')!r} in domain {domain!r}: identical "
                f"bitstreams for every seed")
        salted, indexed = None, None
        if da == "salted" and db == "indexed":
            salted, indexed = a, b
        elif da == "indexed" and db == "salted":
            salted, indexed = b, a
        if salted is not None \
                and (salted.get("salt") or 0) < _INDEX_SALT_FLOOR \
                and not salted.get("collision_note"):
            return finding(
                f"salt {salted.get('salt')!r} of {salted['name']!r} is below "
                f"{_INDEX_SALT_FLOOR:#x} and can collide with an index of "
                f"{indexed['name']!r} in domain {domain!r}; raise the salt "
                f"or add a collision_note")
        return []


# --- rng-foreign-draw --------------------------------------------------------

class RngForeignDrawRule(AstRule):
    id = "rng-foreign-draw"
    family = "rng-ownership"
    description = ("drawing from another object's .rng couples two "
                   "components' bitstreams to each other's call order")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) < 3 or parts[-2] != "rng" \
                    or parts[-1] not in _DRAW_METHODS:
                continue
            owner = ".".join(parts[:-2])
            if owner == "self":
                continue
            findings.append(Finding(
                relpath, node.lineno, node.col_offset, self.id,
                f"{name}() drains {owner}'s generator from outside; the "
                f"owner must do its own draws (pass values, not streams)"))
        return findings


# --- rng-shared-drain --------------------------------------------------------

#: Calls that merely inspect an object, never drain a generator.
_INSPECT_FUNCS = frozenset({"isinstance", "type", "id", "len", "repr",
                            "str", "print", "hash"})


def _is_rng_expr(node) -> bool:
    """Does this expression evaluate to a generator (statically)?"""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        tail = name.rsplit(".", 1)[-1]
        return tail in _RNG_CONSTRUCTORS or tail == "stream_rng"
    if isinstance(node, ast.Attribute):
        return node.attr == "rng"
    return False


class RngSharedDrainRule(AstRule):
    id = "rng-shared-drain"
    family = "rng-ownership"
    description = ("a local generator handed to several consumers (or "
                   "handed off and also drawn locally) interleaves their "
                   "draw sequences nondeterministically under reordering")
    packages = SIMULATION_PACKAGES

    def check(self, tree, source, relpath):
        findings = []
        for fn in ast.walk(tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(fn, relpath))
        return findings

    def _check_function(self, fn, relpath):
        rng_locals: dict = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and _is_rng_expr(node.value):
                rng_locals[node.targets[0].id] = node
        if not rng_locals:
            return []

        passes: dict = {name: [] for name in rng_locals}
        draws: dict = {name: 0 for name in rng_locals}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func) or ""
            func_parts = func_name.split(".")
            if func_parts[0] in rng_locals and len(func_parts) > 1:
                if func_parts[-1] in _DRAW_METHODS:
                    draws[func_parts[0]] += 1
                continue
            if func_name in _INSPECT_FUNCS:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if isinstance(arg, ast.Name) and arg.id in rng_locals:
                    passes[arg.id].append(node)

        for name, sites in passes.items():
            decl = rng_locals[name]
            if len(sites) >= 2:
                findings = [Finding(
                    relpath, decl.lineno, decl.col_offset, self.id,
                    f"generator {name!r} is passed to {len(sites)} "
                    f"consumers in {fn.name}(); each consumer needs its "
                    f"own declared stream")]
                return findings
            if sites and draws[name]:
                return [Finding(
                    relpath, decl.lineno, decl.col_offset, self.id,
                    f"generator {name!r} is handed to a consumer and also "
                    f"drawn from locally in {fn.name}(); split it into "
                    f"two declared streams")]
        return []


# --- env-taint ---------------------------------------------------------------

#: Environment variables that may legitimately reach execution paths,
#: with the reason each cannot corrupt a cached result row.  A stale
#: entry (variable no longer read anywhere) is itself a finding.
ENV_ALLOWLIST = {
    "REPRO_RESULT_CACHE":
        "cache *location* only; rows are keyed by scenario fingerprint, "
        "so moving the cache cannot change any row's content",
    "REPRO_RESULT_CACHE_MAX_MB":
        "LRU size cap; affects eviction timing, never the content of a "
        "fingerprint-keyed row",
    "REPRO_MODEL_CACHE":
        "model checkpoint directory; checkpoints are keyed by pipeline "
        "version + training-config fingerprint, not by path",
    "REPRO_SWEEP_CHECKPOINT":
        "checkpoint journal *location* only; the journal decides which "
        "fingerprint-matched cells are skipped on resume, and restored "
        "rows are the checksummed records the original run produced",
}

#: Modules whose execution produces results or cache rows: a tainted
#: env read is one whose enclosing function can be reached from (or
#: lives in) these.
_SENSITIVE_PREFIXES = ("netsim",)
_SENSITIVE_MODULES = frozenset({"eval.scenarios", "eval.runner",
                                "eval.parallel"})


def _module_sensitive(module: str | None) -> bool:
    if not module:
        return False
    return module in _SENSITIVE_MODULES or any(
        module == p or module.startswith(p + ".")
        for p in _SENSITIVE_PREFIXES)


def _env_reads(tree):
    """``(node, varname_or_None)`` for every environ/getenv read."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name in ("os.getenv", "getenv") \
                    or name.endswith("environ.get"):
                arg = node.args[0] if node.args else None
                var = arg.value if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, str) else None
                yield node, var
        elif isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base in ("os.environ", "environ"):
                sl = node.slice
                var = sl.value if isinstance(sl, ast.Constant) \
                    and isinstance(sl.value, str) else None
                yield node, var


class EnvTaintRule(ProjectRule):
    id = "env-taint"
    family = "env-taint"
    description = ("os.environ reads reaching Simulation/Scenario "
                   "execution or cached rows must be fingerprinted or "
                   "on the justified allowlist (stale entries flagged)")
    anchors = ("netsim/", "eval/", "models/", "analysis/rules_dataflow.py")

    def check_project(self, root):
        index = ProjectIndex(root)
        findings = []
        seen_vars: set = set()
        any_reads = False
        for info in sorted(index.modules.values(), key=lambda m: m.relpath):
            for node, var in _env_reads(info.tree):
                any_reads = True
                if var is not None:
                    seen_vars.add(var)
                fn = index.enclosing_function(info.relpath, node.lineno)
                tainted = _module_sensitive(info.module)
                if not tainted and fn is not None:
                    tainted = any(
                        _module_sensitive(index.functions[c].module)
                        for c in index.transitive_callers(fn.qualname)
                        if c in index.functions)
                if not tainted:
                    continue
                where = f" (in {fn.qualname})" if fn else ""
                if var is None:
                    findings.append(Finding(
                        info.relpath, node.lineno, node.col_offset, self.id,
                        f"environment read with a non-literal variable "
                        f"name{where}; allowlist membership cannot be "
                        f"verified statically"))
                elif var not in ENV_ALLOWLIST:
                    findings.append(Finding(
                        info.relpath, node.lineno, node.col_offset, self.id,
                        f"os.environ read of {var!r}{where} can reach "
                        f"simulation/cached results; fold it into the "
                        f"fingerprint or allowlist it with a reason"))
        # Staleness is a property of a tree that reads the environment
        # at all -- on a read-free tree the allowlist is vacuously moot
        # (and flagging it there would fail every unrelated fixture).
        if any_reads:
            for var in sorted(set(ENV_ALLOWLIST) - seen_vars):
                findings.append(Finding(
                    "analysis/rules_dataflow.py", 1, 0, self.id,
                    f"allowlisted env var {var!r} is no longer read "
                    f"anywhere; remove the stale ENV_ALLOWLIST entry"))
        return findings


# --- mutable-global-state ----------------------------------------------------

_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict",
                                "OrderedDict", "Counter", "deque"})
_MUTATOR_METHODS = frozenset({"append", "add", "update", "setdefault", "pop",
                              "popitem", "clear", "extend", "insert",
                              "remove", "discard", "appendleft",
                              "extendleft", "__setitem__"})


def _mutable_globals(tree) -> dict:
    """Module-level names bound to mutable containers, with linenos."""
    names: dict = {}
    for node in tree.body:
        targets, value = [], None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                     ast.DictComp, ast.ListComp, ast.SetComp))
        if isinstance(value, ast.Call):
            name = dotted_name(value.func) or ""
            mutable = name.rsplit(".", 1)[-1] in _MUTABLE_FACTORIES
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names[target.id] = node.lineno
    return names


def _local_bindings(fn) -> set:
    """Names the function binds locally (params + plain assignments)."""
    bound = {a.arg for a in fn.args.args + fn.args.kwonlyargs
             + fn.args.posonlyargs}
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    declared_global: set = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            target = node.target
            if isinstance(target, ast.Name):
                bound.add(target.id)
    return bound - declared_global


class MutableGlobalStateRule(AstRule):
    id = "mutable-global-state"
    family = "global-state"
    description = ("module-level mutable containers written from function "
                   "bodies are cross-cell shared state (the interleaved "
                   "multi-cell hazard)")
    packages = ("netsim", "baselines", "apps")

    def check(self, tree, source, relpath):
        globals_ = _mutable_globals(tree)
        if not globals_:
            return []
        findings = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shadowed = _local_bindings(fn)
            declared_global = {n for node in ast.walk(fn)
                               if isinstance(node, ast.Global)
                               for n in node.names}
            for node in ast.walk(fn):
                hit = self._write_target(node)
                if hit is None:
                    continue
                name, verb = hit
                if name not in globals_:
                    continue
                if name in shadowed and name not in declared_global:
                    continue
                findings.append(Finding(
                    relpath, node.lineno, node.col_offset, self.id,
                    f"{fn.name}() {verb} module-level mutable {name!r} "
                    f"(declared at line {globals_[name]}); interleaved "
                    f"multi-cell execution would share this state"))
        return findings

    @staticmethod
    def _write_target(node):
        """``(global_name, verb)`` if this node writes through a name."""
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    return target.value.id, "assigns into"
                if isinstance(node, ast.AugAssign) \
                        and isinstance(target, ast.Name):
                    return target.id, "augments"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    return target.value.id, "deletes from"
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.attr in _MUTATOR_METHODS:
            return node.func.value.id, f"calls .{node.func.attr}() on"
        return None


# --- signature-purity --------------------------------------------------------

_SIGNATURE_NAMES = ("fingerprint", "signature")

_WRITE_IO_SUFFIXES = (".write", ".write_text", ".write_bytes", ".unlink",
                      ".mkdir", ".rmdir", ".rmtree", ".touch", ".rename",
                      ".replace")


def _is_signature_function(name: str) -> bool:
    return name in _SIGNATURE_NAMES or name.endswith("_signature") \
        or name.endswith("_fingerprint")


def _purity_violations(fn_node):
    """``(node, what)`` for each side effect inside one function body."""
    local_names = {a.arg for a in fn_node.args.args + fn_node.args.kwonlyargs
                   + fn_node.args.posonlyargs}
    created: set = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    created.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.For)) \
                and isinstance(node.target, ast.Name):
            created.add(node.target.id)
        elif isinstance(node, ast.comprehension) \
                and isinstance(node.target, ast.Name):
            created.add(node.target.id)

    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            yield node, f"declares {kind} {', '.join(node.names)}"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                root = target
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if root is target:
                    continue  # plain name binding: pure
                root_name = dotted_name(root)
                if root_name is None or root_name.split(".")[0] in created:
                    continue
                if root_name.split(".")[0] in local_names \
                        and root_name.split(".")[0] != "self":
                    # mutating a parameter is visible to the caller
                    yield node, f"stores into parameter {root_name!r}"
                else:
                    yield node, f"stores into {root_name!r}"
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            parts = name.split(".")
            if tail in _RNG_CONSTRUCTORS or tail == "stream_rng":
                yield node, f"constructs an RNG via {name}()"
            elif "rng" in parts[:-1] and parts[-1] in _DRAW_METHODS:
                yield node, f"draws from an RNG via {name}()"
            elif name in _WALL_CLOCK or name.endswith(_WALL_CLOCK_SUFFIXES):
                yield node, f"reads the wall clock via {name}()"
            elif name in ("os.getenv", "getenv") \
                    or name.endswith("environ.get"):
                yield node, f"reads the environment via {name}()"
            elif name == "print" or any(name.endswith(s)
                                        for s in _WRITE_IO_SUFFIXES):
                yield node, f"performs write I/O via {name}()"
            elif name == "open" and _open_writes(node):
                yield node, "opens a file for writing"
        elif isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base in ("os.environ", "environ"):
                yield node, "reads the environment via os.environ[...]"


def _open_writes(call) -> bool:
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    return isinstance(mode, str) and any(c in mode for c in "wax+")


class SignaturePurityRule(ProjectRule):
    id = "signature-purity"
    family = "signature-purity"
    description = ("fingerprint/signature functions (and their direct "
                   "callees) must be side-effect-free: no stores, write "
                   "I/O, RNG use, env or clock reads")
    anchors = ("eval/scenarios.py", "netsim/", "eval/runner.py")

    def check_project(self, root):
        index = ProjectIndex(root)
        findings = []
        emitted: set = set()
        for qual, fn in sorted(index.functions.items()):
            short = qual.split(":")[-1]
            if not _is_signature_function(short.rsplit(".", 1)[-1]):
                continue
            for node, what in _purity_violations(fn.node):
                key = (fn.relpath, node.lineno, what)
                if key not in emitted:
                    emitted.add(key)
                    findings.append(Finding(
                        fn.relpath, node.lineno, node.col_offset, self.id,
                        f"{short}() {what}; cache-key producers must be "
                        f"pure"))
            # One level of call-through: a helper the signature function
            # calls directly is part of the cache key computation.
            for callee_qual in sorted(index.callees.get(qual, ())):
                callee = index.functions.get(callee_qual)
                if callee is None:
                    continue
                callee_short = callee_qual.split(":")[-1]
                if _is_signature_function(callee_short.rsplit(".", 1)[-1]):
                    continue  # checked in its own right
                for node, what in _purity_violations(callee.node):
                    key = (callee.relpath, node.lineno, what)
                    if key not in emitted:
                        emitted.add(key)
                        findings.append(Finding(
                            callee.relpath, node.lineno, node.col_offset,
                            self.id,
                            f"{callee_short}() {what}, and {short}() calls "
                            f"it; cache-key producers must be pure"))
        return findings
