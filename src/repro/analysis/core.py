"""The replint framework: findings, rules, suppressions, baseline, driver.

Two rule shapes cover everything the analyzer checks:

* :class:`AstRule` -- a per-file check over the parsed AST (plus raw
  source for suppression comments).  These are pure syntax: no imports
  of the analyzed code, so they run on any file, including the
  known-bad fixtures under ``tests/fixtures/replint/``.
* :class:`ProjectRule` -- a whole-project check that may *introspect*
  live objects (dataclass fields, ``__slots__``, handler tables).
  Each declares ``anchors`` -- the source files whose change makes it
  worth re-running -- so ``--changed-only`` stays fast without
  silently skipping cross-file invariants.

Findings are suppressed inline with ``# replint: disable=RULE`` on the
flagged line (``disable=all`` silences every rule there;
``disable-file=RULE`` anywhere in a file silences the whole file), or
collectively through a checked-in JSON baseline keyed by
``(rule, path, message)`` -- line numbers drift too easily to key on.
The repository ships an *empty* baseline on purpose: every real
finding the rules surface is fixed or suppressed with a justification
comment, and CI fails on anything new.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["Analyzer", "AstRule", "Baseline", "Finding", "ProjectRule",
           "Rule", "dotted_name", "parse_suppressions"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> tuple:
        """Baseline identity: line numbers drift, messages rarely do."""
        return (self.rule, self.path, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def __str__(self) -> str:
        return f"{self.location()}: {self.rule}: {self.message}"


class Rule:
    """Base class: an identified, documented, package-scoped check."""

    #: Stable identifier used in reports, suppressions, and baselines.
    id: str = ""
    #: One-line description shown by ``--list-rules``.
    description: str = ""
    #: Rule family (determinism / fingerprint / engine / rng).
    family: str = ""
    #: Package prefixes (relative to the analyzed root, ``/``-separated)
    #: this rule applies to; empty means every file.
    packages: tuple = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.packages:
            return True
        rel = relpath.replace("\\", "/")
        return any(rel == p or rel.startswith(p + "/") for p in self.packages)


class AstRule(Rule):
    """A per-file check over the parsed AST."""

    def check(self, tree: ast.AST, source: str, relpath: str) -> list:
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-project check (may import and introspect live objects)."""

    #: Files (relative to the root) whose change triggers this rule in
    #: ``--changed-only`` mode.  An entry ending in ``/`` is a prefix:
    #: any changed file under that directory triggers the rule.
    anchors: tuple = ()

    def check_project(self, root: Path) -> list:
        raise NotImplementedError

    def anchored_by(self, relpaths) -> bool:
        """Is any of ``relpaths`` an anchor hit for this rule?"""
        for anchor in self.anchors:
            if anchor.endswith("/"):
                if any(r.startswith(anchor) for r in relpaths):
                    return True
            elif anchor in relpaths:
                return True
        return False


def dotted_name(node: ast.AST) -> str | None:
    """Best-effort dotted name of an expression (``np.random.default_rng``).

    Returns ``None`` for anything that is not a plain ``Name`` /
    ``Attribute`` chain (calls on call results, subscripts, ...).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


# --- suppressions ------------------------------------------------------------

_DISABLE_RE = re.compile(
    r"#\s*replint:\s*disable(?P<filewide>-file)?=(?P<rules>[\w*,\-]+)")


def parse_suppressions(source: str) -> tuple[dict, set]:
    """``(per_line, file_wide)`` rule-id sets from disable comments.

    ``per_line`` maps 1-based line numbers to the rule ids disabled on
    that line; ``file_wide`` holds ids disabled for the whole file.
    ``all`` (or ``*``) matches every rule.  The scan is line-based on
    purpose -- a disable marker inside a string literal also counts,
    which is harmless and keeps the mechanism trivially predictable.
    """
    per_line: dict[int, set] = {}
    file_wide: set = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match is None:
            continue
        ids = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("filewide"):
            file_wide |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, file_wide


def _is_suppressed(finding: Finding, per_line: dict, file_wide: set) -> bool:
    ids = file_wide | per_line.get(finding.line, set())
    return bool(ids & {finding.rule, "all", "*"})


# --- baseline ----------------------------------------------------------------

class Baseline:
    """Checked-in set of accepted findings (``.replint-baseline.json``).

    Keys are ``(rule, path, message)`` so entries survive unrelated
    edits shifting line numbers.  An empty baseline -- the state this
    repository maintains -- means every finding fails CI.
    """

    def __init__(self, keys=()):
        self.keys = set(keys)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        keys = {(f["rule"], f["path"], f["message"])
                for f in payload.get("findings", [])}
        return cls(keys)

    @staticmethod
    def write(path: str | Path, findings) -> None:
        payload = {
            "version": 1,
            "findings": [{"rule": f.rule, "path": f.path, "message": f.message}
                         for f in sorted(findings)],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n")

    def split(self, findings) -> tuple[list, int]:
        """``(new_findings, n_baselined)`` after filtering accepted keys."""
        kept = [f for f in findings if f.key() not in self.keys]
        return kept, len(findings) - len(kept)

    def __len__(self) -> int:
        return len(self.keys)


# --- driver ------------------------------------------------------------------

def default_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parents[1]


#: Directory names never analyzed (caches and bytecode, not source).
_SKIP_DIRS = ("__pycache__", "_cache")


class Analyzer:
    """Run a rule set over a source tree and collect findings.

    ``root`` is the package directory findings are reported relative to
    (default: the live ``repro`` package).  ``analyze()`` with no file
    list scans the whole tree and runs every project rule;  with an
    explicit file list (the ``--changed-only`` path) project rules run
    only when one of their anchor files is in the list.
    """

    def __init__(self, root: str | Path | None = None, rules=None):
        self.root = Path(root).resolve() if root is not None else default_root()
        if rules is None:
            from repro.analysis.registry import all_rules
            rules = all_rules()
        self.rules = list(rules)

    def iter_files(self) -> list[Path]:
        return sorted(p for p in self.root.rglob("*.py")
                      if not any(part in _SKIP_DIRS for part in p.parts))

    def relpath(self, path: Path) -> str:
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def analyze(self, files=None) -> list[Finding]:
        """Findings over ``files`` (default: the whole tree), sorted.

        Suppression comments are honoured for every finding whose path
        resolves to a readable file -- including project-rule findings,
        whose locations point into the anchor sources.
        """
        explicit = files is not None
        paths = [Path(f).resolve() for f in files] if explicit else self.iter_files()
        ast_rules = [r for r in self.rules if isinstance(r, AstRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]

        findings: list[Finding] = []
        suppressions: dict[str, tuple[dict, set]] = {}
        for path in paths:
            relpath = self.relpath(path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                findings.append(Finding(relpath, getattr(exc, "lineno", 1) or 1,
                                        0, "parse-error",
                                        f"cannot analyze: {exc}"))
                continue
            per_line, file_wide = parse_suppressions(source)
            suppressions[relpath] = (per_line, file_wide)
            for rule in ast_rules:
                if not rule.applies_to(relpath):
                    continue
                for finding in rule.check(tree, source, relpath):
                    if not _is_suppressed(finding, per_line, file_wide):
                        findings.append(finding)

        relpaths = {self.relpath(p) for p in paths}
        for rule in project_rules:
            if explicit and not rule.anchored_by(relpaths):
                continue
            for finding in rule.check_project(self.root):
                per_line, file_wide = self._suppressions_for(
                    finding.path, suppressions)
                if not _is_suppressed(finding, per_line, file_wide):
                    findings.append(finding)
        return sorted(findings)

    def _suppressions_for(self, relpath: str, cache: dict) -> tuple[dict, set]:
        if relpath not in cache:
            path = self.root / relpath
            try:
                per_line, file_wide = parse_suppressions(
                    path.read_text(encoding="utf-8"))
            except OSError:
                per_line, file_wide = {}, set()
            cache[relpath] = (per_line, file_wide)
        return cache[relpath]


def finding_to_dict(finding: Finding) -> dict:
    return asdict(finding)
