"""Fig. 9: real-time communications (inter-packet delay).

The paper runs a Salsify-style call over MOCC (w = <0.4, 0.5, 0.1>),
CUBIC, BBR and Vegas and reports the average inter-packet delay; MOCC
is lowest (3.0 ms vs 3.8/7.9/4.1).  Bursty, queue-filling transports
show up as large and jittery receiver-side packet gaps.
"""

from conftest import print_table, run_once

from repro.apps.rtc import run_rtc
from repro.baselines import BBR, Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import RTC_WEIGHTS
from repro.eval.runner import EvalNetwork

NETWORK = EvalNetwork(bandwidth_mbps=6.0, one_way_ms=25.0, buffer_bdp=2.0)


def bench_fig9_rtc(benchmark, mocc_agent):
    def experiment():
        start = NETWORK.bottleneck_pps / 3
        results = {}
        for name, ctrl in [
                ("MOCC", MoccController(mocc_agent, RTC_WEIGHTS, initial_rate=start)),
                ("CUBIC", Cubic()),
                ("BBR", BBR(initial_rate=start)),
                ("Vegas", Vegas())]:
            results[name] = run_rtc(ctrl, NETWORK, duration=25.0, seed=4)
        return results

    results = run_once(benchmark, experiment)
    rows = [[name, r.mean_gap_ms, r.p95_gap_ms, r.jitter_ms, r.mean_rtt_ms]
            for name, r in results.items()]
    print_table("Fig 9: RTC inter-packet delay",
                ["scheme", "mean gap ms", "p95 gap ms", "jitter ms", "RTT ms"],
                rows)

    # A saturating transport produces perfectly even spacing (gap =
    # 1/capacity) *because* it keeps a standing queue -- what a real
    # RTC flow experiences is that queue as per-packet delay.  MOCC's
    # latency-aware weight keeps packet delay well below queue-filling
    # CUBIC's.
    assert results["MOCC"].mean_rtt_ms < results["CUBIC"].mean_rtt_ms
    assert results["MOCC"].p95_gap_ms < 5 * results["CUBIC"].p95_gap_ms
