"""Fig. 7: quick adaptation to new applications (§6.2).

(a) MOCC adapts to an unseen objective via transfer from the offline
    model: higher initial reward and far fewer iterations to reach 99 %
    of the maximum reward gain than Aurora training from scratch
    (paper: 45 vs 639 iterations, 14.2x; 1.8x initial reward).
(b) While adapting, requirement replay (Eq. 6) preserves the old
    application's performance (paper: <5 % loss), whereas a
    single-objective model forgets it (916.1 -> 156.1).
"""

import numpy as np
from conftest import print_table, run_once

from repro.config import BOOTSTRAP_OBJECTIVES, DEFAULT_TRAINING, TRAINING_RANGES
from repro.core.online import AdaptationTrace, OnlineAdapter
from repro.core.offline import train_single_objective
from repro.core.weights import THROUGHPUT_WEIGHTS
from repro.rl.collect import evaluate_policy
from repro.rl.parallel import EnvSpec, SerialCollector
from repro.rl.ppo import PPOConfig, PPOTrainer

#: An objective not on the omega=36 landmark grid (unforeseen app).
NEW_OBJECTIVE = np.array([0.45, 0.44, 0.11])
SPEC = EnvSpec(ranges=TRAINING_RANGES, max_steps=96, seed=9)


def bench_fig7a_quick_adaptation(benchmark, mocc_agent):
    def experiment():
        agent = mocc_agent.clone()  # do not mutate the shared fixture
        adapter = OnlineAdapter(agent, SPEC, config=DEFAULT_TRAINING, seed=9)
        adapter.seed_replay(BOOTSTRAP_OBJECTIVES)
        mocc_trace = adapter.adapt(NEW_OBJECTIVE, iterations=25, eval_every=0)
        _, scratch_trace, _ = train_single_objective(SPEC, NEW_OBJECTIVE, 50, seed=9)
        return mocc_trace, scratch_trace

    mocc_trace, scratch_trace = run_once(benchmark, experiment)
    mocc_conv = mocc_trace.convergence_iteration(smooth=3)
    scratch = np.asarray(scratch_trace)
    # Same definition (and window re-centering) as the MOCC trace.
    scratch_conv = AdaptationTrace(
        rewards=list(scratch)).convergence_iteration(smooth=3)

    print_table(
        "Fig 7a: adapting to an unseen objective",
        ["metric", "MOCC (transfer)", "Aurora (scratch)"],
        [["initial reward", mocc_trace.rewards[0], float(scratch[0])],
         ["final reward", mocc_trace.rewards[-1], float(scratch[-1])],
         ["iterations to 99% gain", mocc_conv, scratch_conv],
         ["speedup", float(scratch_conv) / max(mocc_conv, 1), 1.0]])

    # Transfer from the offline correlation model starts far better and
    # converges in fewer iterations than training from scratch.
    assert mocc_trace.rewards[0] > 1.2 * scratch[0]
    assert mocc_conv <= scratch_conv


def bench_fig7b_no_forgetting(benchmark, mocc_agent, aurora_throughput):
    old_objective = THROUGHPUT_WEIGHTS

    def experiment():
        # MOCC with requirement replay (Eq. 6).
        agent = mocc_agent.clone()
        adapter = OnlineAdapter(agent, SPEC, config=DEFAULT_TRAINING, seed=11)
        adapter.seed_replay([old_objective, *BOOTSTRAP_OBJECTIVES])
        trace = adapter.adapt(NEW_OBJECTIVE, iterations=16, eval_every=4,
                              old_weights=old_objective, use_replay=True)

        # Aurora: continue training its fixed model toward the new
        # objective; its behaviour on the old objective degrades freely.
        aurora = aurora_throughput.clone()
        trainer = PPOTrainer(aurora.model,
                             PPOConfig.from_training_config(DEFAULT_TRAINING),
                             rng=np.random.default_rng(12))
        collector = SerialCollector(SPEC)
        eval_env = SPEC.build(seed_offset=555)
        rng = np.random.default_rng(13)
        aurora_old = [evaluate_policy(eval_env, aurora.model, old_objective, rng)]
        for it in range(16):
            buffers, boots, _ = collector.collect(aurora.model, NEW_OBJECTIVE, 256, rng)
            trainer.update(buffers, boots)
            if (it + 1) % 4 == 0:
                aurora_old.append(
                    evaluate_policy(eval_env, aurora.model, old_objective, rng))
        return trace, aurora_old

    trace, aurora_old = run_once(benchmark, experiment)
    mocc_old = [v for _, v in trace.old_marks]
    print_table("Fig 7b: old-objective reward while adapting to the new one",
                ["snapshot", "MOCC (replay)", "Aurora"],
                [[i, mocc_old[min(i, len(mocc_old) - 1)],
                  aurora_old[min(i, len(aurora_old) - 1)]]
                 for i in range(max(len(mocc_old), len(aurora_old)))])
    retention = trace.old_objective_retention()
    aurora_retention = min(aurora_old) / max(aurora_old[0], 1e-9)
    print(f"retention: MOCC {retention:.2f}, Aurora {aurora_retention:.2f}")

    # Requirement replay preserves the old application's performance.
    assert retention > 0.6
    assert retention >= aurora_retention - 0.05
