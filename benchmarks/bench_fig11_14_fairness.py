"""Figs. 11-14: fairness and friendliness among MOCC flows (§6.4).

* Fig. 11: three same-scheme flows join a 12 Mbps / 20 ms / 1xBDP
  bottleneck at staggered times; same-weight MOCC converges to a fair
  share.
* Fig. 12: per-second Jain-index CDF; MOCC is fair irrespective of its
  weight configuration.
* Fig. 13: pairwise competition of MOCC variants -- a larger w_thr is
  more aggressive; no variant starves the other.
* Fig. 14: throughput ratios of weight variants across RTTs stay within
  a moderate band (paper: 0.43-2.04).

Every experiment is a :class:`~repro.eval.scenarios.ScenarioSuite`
executed through the shared parallel runner, so independent
competitions shard across cores and re-runs hit the result cache.
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.weights import (
    BALANCE_WEIGHTS,
    LATENCY_WEIGHTS,
    THROUGHPUT_WEIGHTS,
)
from repro.eval.metrics import jain_index_series
from repro.eval.scenarios import FlowDef, ScenarioSuite

FAIR_BW, PAIR_BW = 12.0, 20.0
VARIANTS = {"MOCC-Throughput": THROUGHPUT_WEIGHTS,
            "MOCC-Balance": BALANCE_WEIGHTS,
            "MOCC-Latency": LATENCY_WEIGHTS}


def _mocc(agent, weights, seed, start=0.0, label=""):
    """One MOCC flow starting at a quarter of the bottleneck rate.

    ``rate_frac`` sizes the initial rate from the scenario's *own*
    network; the pre-suite code sized every figure's flows from the
    12 Mbps fairness network, so fig13's pairs on the 20 Mbps network
    now start at 0.25x its bottleneck instead of 0.15x.
    """
    return FlowDef("mocc", weights=tuple(np.asarray(weights)), agent=agent,
                   seed=seed, start=start, rate_frac=0.25, label=label)


def bench_fig11_fairness_dynamics(benchmark, runner, mocc_agent):
    """Fig. 11: staggered same-weight MOCC flows share the bottleneck."""
    suite = ScenarioSuite(
        name="fig11",
        lineups={"3xBalance": tuple(
            _mocc(mocc_agent, BALANCE_WEIGHTS, seed=i, start=15.0 * i)
            for i in range(3))},
        bandwidths_mbps=(FAIR_BW,), rtts_ms=(40.0,), duration=60.0, seeds=(6,))

    records = run_once(benchmark, lambda: runner.run(suite).results[0].records)
    # Mean throughput of each flow during the all-three-active epoch.
    shares = []
    for record in records:
        acked = sum(s.acked for s in record.records if 30.0 <= s.start < 60.0)
        shares.append(acked / 30.0)
    total = sum(shares)
    bottleneck = suite.expand()[0].network.bottleneck_pps
    print_table("Fig 11: per-flow share while 3 MOCC flows compete (30-60s)",
                ["flow", "throughput pps", "share"],
                [[i, s, s / total] for i, s in enumerate(shares)])
    # No starvation: every flow holds a meaningful share.
    assert min(shares) / total > 0.10
    assert total > 0.5 * bottleneck


def bench_fig12_jain_cdf(benchmark, runner, mocc_agent):
    """Fig. 12: Jain-index distribution for MOCC weight variants."""
    suite = ScenarioSuite(
        name="fig12",
        lineups={name: tuple(
            _mocc(mocc_agent, weights, seed=i, start=10.0 * i)
            for i in range(3)) for name, weights in VARIANTS.items()},
        bandwidths_mbps=(FAIR_BW,), rtts_ms=(40.0,), duration=45.0, seeds=(7,))

    def experiment():
        outcome = runner.run(suite)
        return {result.scenario.lineup:
                jain_index_series(result.records, interval=1.0)
                for result in outcome}

    series = run_once(benchmark, experiment)
    rows = [[name, float(np.median(s)), float(np.percentile(s, 25)),
             float(np.percentile(s, 75))] for name, s in series.items()]
    print_table("Fig 12: Jain fairness index (median/p25/p75 per second)",
                ["variant", "median", "p25", "p75"], rows)
    # Fairness is irrespective of the weight configuration.
    for name, s in series.items():
        assert np.median(s) > 0.6, name


def bench_fig13_weight_competition(benchmark, runner, mocc_agent):
    """Fig. 13: pairwise competition of MOCC variants (+ CUBIC/Vegas)."""
    pairs = {
        "Thr vs Bal": (THROUGHPUT_WEIGHTS, BALANCE_WEIGHTS),
        "Thr vs Lat": (THROUGHPUT_WEIGHTS, LATENCY_WEIGHTS),
        "Lat vs Bal": (LATENCY_WEIGHTS, BALANCE_WEIGHTS),
    }
    lineups = {name: (_mocc(mocc_agent, w1, seed=1), _mocc(mocc_agent, w2, seed=2))
               for name, (w1, w2) in pairs.items()}
    lineups["CUBIC vs Vegas"] = (FlowDef("cubic"), FlowDef("vegas"))
    suite = ScenarioSuite(name="fig13", lineups=lineups,
                          bandwidths_mbps=(PAIR_BW,), rtts_ms=(40.0,),
                          duration=30.0, seeds=(8,))

    def experiment():
        outcome = runner.run(suite)
        return {result.scenario.lineup:
                (result.records[0].mean_throughput_pps,
                 result.records[1].mean_throughput_pps)
                for result in outcome}

    results = run_once(benchmark, experiment)
    total = suite.expand()[0].network.bottleneck_pps
    rows = [[name, a, b, a / max(b, 1e-9)] for name, (a, b) in results.items()]
    print_table("Fig 13: pairwise competition (flow1 pps, flow2 pps, ratio)",
                ["pair", "flow1", "flow2", "ratio"], rows)

    # A larger w_thr is more aggressive, but nobody starves.
    thr_vs_lat = results["Thr vs Lat"]
    assert thr_vs_lat[0] >= thr_vs_lat[1] * 0.9
    for name, (a, b) in results.items():
        if name.startswith("Thr") or name.startswith("Lat"):
            assert min(a, b) / total > 0.05, name


def bench_fig14_friendliness_weights(benchmark, runner, mocc_agent):
    """Fig. 14: variant-vs-balance throughput ratios across RTTs."""
    suite = ScenarioSuite(
        name="fig14",
        lineups={name: (_mocc(mocc_agent, w, seed=1),
                        _mocc(mocc_agent, BALANCE_WEIGHTS, seed=2))
                 for name, w in [("w1 <.8,.1,.1>", THROUGHPUT_WEIGHTS),
                                 ("w5 <.1,.8,.1>", LATENCY_WEIGHTS)]},
        bandwidths_mbps=(PAIR_BW,), rtts_ms=(20.0, 40.0, 80.0),
        duration=25.0, seeds=(9,))

    def experiment():
        out = {}
        for result in runner.run(suite):
            rtt = 2.0 * result.scenario.network.one_way_ms
            ratio = (result.records[0].mean_throughput_pps
                     / max(result.records[1].mean_throughput_pps, 1e-9))
            out[(result.scenario.lineup, rtt)] = ratio
        return out

    ratios = run_once(benchmark, experiment)
    print_table("Fig 14: MOCC variant / MOCC-Balance throughput ratio",
                ["variant", "RTT ms", "ratio"],
                [[name, rtt, r] for (name, rtt), r in ratios.items()])
    # Ratios stay within a moderate band (paper: 0.43-2.04; ours is
    # wider at short RTTs -- see EXPERIMENTS.md) and the
    # throughput-weighted variant is the more aggressive one on average.
    values = np.array(list(ratios.values()))
    assert np.all(values > 0.05) and np.all(values < 10.0)
    w1 = np.mean([r for (n, _), r in ratios.items() if n.startswith("w1")])
    w5 = np.mean([r for (n, _), r in ratios.items() if n.startswith("w5")])
    assert w1 >= w5 * 0.8
