"""Figs. 11-14: fairness and friendliness among MOCC flows (§6.4).

* Fig. 11: three same-scheme flows join a 12 Mbps / 20 ms / 1xBDP
  bottleneck at staggered times; same-weight MOCC converges to a fair
  share.
* Fig. 12: per-second Jain-index CDF; MOCC is fair irrespective of its
  weight configuration.
* Fig. 13: pairwise competition of MOCC variants -- a larger w_thr is
  more aggressive; no variant starves the other.
* Fig. 14: throughput ratios of weight variants across RTTs stay within
  a moderate band (paper: 0.43-2.04).
"""

import numpy as np
from conftest import print_table, run_once

from repro.baselines import Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import (
    BALANCE_WEIGHTS,
    LATENCY_WEIGHTS,
    THROUGHPUT_WEIGHTS,
)
from repro.eval.metrics import jain_index_series
from repro.eval.runner import EvalNetwork, run_competition

FAIR_NET = EvalNetwork(bandwidth_mbps=12.0, one_way_ms=20.0, buffer_bdp=1.0)
PAIR_NET = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=20.0, buffer_bdp=1.0)


def _mocc(agent, weights, seed):
    return MoccController(agent, weights, initial_rate=FAIR_NET.bottleneck_pps / 4,
                          seed=seed)


def bench_fig11_fairness_dynamics(benchmark, mocc_agent):
    """Fig. 11: staggered same-weight MOCC flows share the bottleneck."""

    def experiment():
        controllers = [_mocc(mocc_agent, BALANCE_WEIGHTS, seed=i) for i in range(3)]
        records = run_competition(controllers, FAIR_NET, duration=60.0,
                                  start_times=[0.0, 15.0, 30.0], seed=6)
        return records

    records = run_once(benchmark, experiment)
    # Mean throughput of each flow during the all-three-active epoch.
    shares = []
    for record in records:
        acked = sum(s.acked for s in record.records if 30.0 <= s.start < 60.0)
        shares.append(acked / 30.0)
    total = sum(shares)
    print_table("Fig 11: per-flow share while 3 MOCC flows compete (30-60s)",
                ["flow", "throughput pps", "share"],
                [[i, s, s / total] for i, s in enumerate(shares)])
    # No starvation: every flow holds a meaningful share.
    assert min(shares) / total > 0.10
    assert total > 0.5 * FAIR_NET.bottleneck_pps


def bench_fig12_jain_cdf(benchmark, mocc_agent):
    """Fig. 12: Jain-index distribution for MOCC weight variants."""

    def experiment():
        out = {}
        for name, weights in [("MOCC-Throughput", THROUGHPUT_WEIGHTS),
                              ("MOCC-Balance", BALANCE_WEIGHTS),
                              ("MOCC-Latency", LATENCY_WEIGHTS)]:
            controllers = [_mocc(mocc_agent, weights, seed=i) for i in range(3)]
            records = run_competition(controllers, FAIR_NET, duration=45.0,
                                      start_times=[0.0, 10.0, 20.0], seed=7)
            out[name] = jain_index_series(records, interval=1.0)
        return out

    series = run_once(benchmark, experiment)
    rows = [[name, float(np.median(s)), float(np.percentile(s, 25)),
             float(np.percentile(s, 75))] for name, s in series.items()]
    print_table("Fig 12: Jain fairness index (median/p25/p75 per second)",
                ["variant", "median", "p25", "p75"], rows)
    # Fairness is irrespective of the weight configuration.
    for name, s in series.items():
        assert np.median(s) > 0.6, name


def bench_fig13_weight_competition(benchmark, mocc_agent):
    """Fig. 13: pairwise competition of MOCC variants (+ CUBIC/Vegas)."""

    def experiment():
        pairs = [
            ("Thr vs Bal", THROUGHPUT_WEIGHTS, BALANCE_WEIGHTS),
            ("Thr vs Lat", THROUGHPUT_WEIGHTS, LATENCY_WEIGHTS),
            ("Lat vs Bal", LATENCY_WEIGHTS, BALANCE_WEIGHTS),
        ]
        out = {}
        for name, w1, w2 in pairs:
            records = run_competition(
                [_mocc(mocc_agent, w1, seed=1), _mocc(mocc_agent, w2, seed=2)],
                PAIR_NET, duration=30.0, seed=8)
            out[name] = (records[0].mean_throughput_pps, records[1].mean_throughput_pps)
        records = run_competition([Cubic(), Vegas()], PAIR_NET, duration=30.0, seed=8)
        out["CUBIC vs Vegas"] = (records[0].mean_throughput_pps,
                                 records[1].mean_throughput_pps)
        return out

    results = run_once(benchmark, experiment)
    total = PAIR_NET.bottleneck_pps
    rows = [[name, a, b, a / max(b, 1e-9)] for name, (a, b) in results.items()]
    print_table("Fig 13: pairwise competition (flow1 pps, flow2 pps, ratio)",
                ["pair", "flow1", "flow2", "ratio"], rows)

    # A larger w_thr is more aggressive, but nobody starves.
    thr_vs_lat = results["Thr vs Lat"]
    assert thr_vs_lat[0] >= thr_vs_lat[1] * 0.9
    for name, (a, b) in results.items():
        if name.startswith("Thr") or name.startswith("Lat"):
            assert min(a, b) / total > 0.05, name


def bench_fig14_friendliness_weights(benchmark, mocc_agent):
    """Fig. 14: variant-vs-balance throughput ratios across RTTs."""

    def experiment():
        out = {}
        for rtt_ms in (20.0, 40.0, 80.0):
            net = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=rtt_ms / 2,
                              buffer_bdp=1.0)
            for name, w in [("w1 <.8,.1,.1>", THROUGHPUT_WEIGHTS),
                            ("w5 <.1,.8,.1>", LATENCY_WEIGHTS)]:
                records = run_competition(
                    [MoccController(mocc_agent, w,
                                    initial_rate=net.bottleneck_pps / 4, seed=1),
                     MoccController(mocc_agent, BALANCE_WEIGHTS,
                                    initial_rate=net.bottleneck_pps / 4, seed=2)],
                    net, duration=25.0, seed=9)
                ratio = (records[0].mean_throughput_pps
                         / max(records[1].mean_throughput_pps, 1e-9))
                out[(name, rtt_ms)] = ratio
        return out

    ratios = run_once(benchmark, experiment)
    print_table("Fig 14: MOCC variant / MOCC-Balance throughput ratio",
                ["variant", "RTT ms", "ratio"],
                [[name, rtt, r] for (name, rtt), r in ratios.items()])
    # Ratios stay within a moderate band (paper: 0.43-2.04; ours is
    # wider at short RTTs -- see EXPERIMENTS.md) and the
    # throughput-weighted variant is the more aggressive one on average.
    values = np.array(list(ratios.values()))
    assert np.all(values > 0.05) and np.all(values < 10.0)
    w1 = np.mean([r for (n, _), r in ratios.items() if n.startswith("w1")])
    w5 = np.mean([r for (n, _), r in ratios.items() if n.startswith("w5")])
    assert w1 >= w5 * 0.8
