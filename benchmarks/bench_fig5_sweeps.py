"""Fig. 5: multi-objective performance across network conditions.

Panels (a)-(d): bottleneck utilization for the throughput objective
(w = <0.8, 0.1, 0.1>) while varying bandwidth, one-way latency, random
loss, and buffer size.  Panels (e)-(h): latency ratio for the latency
objective (w = <0.1, 0.8, 0.1>) over the same sweeps.  Evaluation
ranges deliberately exceed the training ranges (Table 3).

Each sweep is a :class:`~repro.eval.scenarios.ScenarioSuite` (via
:func:`sweep_schemes`) executed through the shared parallel runner, so
the 4 x 7-scheme x 4-value grid shards across cores and re-runs come
from the result cache.
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.weights import LATENCY_WEIGHTS, THROUGHPUT_WEIGHTS
from repro.eval.sweeps import (
    FIG5_BENCH_BASE,
    FIG5_BENCH_DURATION,
    FIG5_BENCH_SCHEMES,
    FIG5_BENCH_SEED,
    FIG5_BENCH_SWEEPS,
    sweep_schemes,
)

SCHEMES = FIG5_BENCH_SCHEMES


def _run_sweeps(runner, mocc_agent, aurora_agent, weights):
    kwargs = {"mocc_agent": mocc_agent, "mocc_weights": weights,
              "aurora_agent": aurora_agent}
    return {param: sweep_schemes(SCHEMES, param, values, base=FIG5_BENCH_BASE,
                                 duration=FIG5_BENCH_DURATION,
                                 seed=FIG5_BENCH_SEED, controller_kwargs=kwargs,
                                 runner=runner)
            for param, values in FIG5_BENCH_SWEEPS}


def bench_fig5ad_utilization(benchmark, runner, mocc_agent, aurora_throughput):
    """Fig. 5(a-d): utilization sweeps, throughput objective."""

    def experiment():
        return _run_sweeps(runner, mocc_agent, aurora_throughput, THROUGHPUT_WEIGHTS)

    results = run_once(benchmark, experiment)
    for param, sweep in results.items():
        print(f"\n{sweep.format_table('utilization')}")

    # The headline: MOCC competes with the best existing schemes on
    # utilization across conditions (within 15 % of the best baseline
    # on the in-distribution bandwidth sweep).
    bw = results["bandwidth"]
    mocc_mean = bw.row("mocc")["utilization"].mean()
    best_other = max(bw.row(s)["utilization"].mean() for s in SCHEMES[1:])
    assert mocc_mean > 0.7
    assert mocc_mean > best_other - 0.2
    # Loss robustness (Fig 5c): under 5-10 % random loss MOCC keeps far
    # more utilization than loss-based CUBIC.
    loss = results["loss"]
    assert loss.row("mocc")["utilization"][-1] > 3 * loss.row("cubic")["utilization"][-1]


def bench_fig5eh_latency(benchmark, runner, mocc_agent, aurora_throughput):
    """Fig. 5(e-h): latency-ratio sweeps, latency objective."""

    def experiment():
        return _run_sweeps(runner, mocc_agent, aurora_throughput, LATENCY_WEIGHTS)

    results = run_once(benchmark, experiment)
    for param, sweep in results.items():
        print(f"\n{sweep.format_table('latency_ratio')}")

    # Latency-weighted MOCC keeps queueing low: lower latency ratio
    # than CUBIC (which fills the buffer) and than BBR across sweeps
    # (the paper's up-to-18.8 % BBR claim, Fig. 5e).
    bw = results["bandwidth"]
    assert bw.row("mocc")["latency_ratio"].mean() < bw.row("cubic")["latency_ratio"].mean()
    assert bw.row("mocc")["latency_ratio"].mean() < bw.row("bbr")["latency_ratio"].mean()
    lat = results["latency"]
    assert (lat.row("mocc")["latency_ratio"].mean()
            < lat.row("cubic")["latency_ratio"].mean())
