"""Figs. 16-19: the deep-dive studies (§6.5).

* Fig. 16: the landmark count omega trades base-model quality against
  training time (omega = 36 matches 171 at far lower cost; tiny omega
  underperforms).
* Fig. 17: CPU overhead -- user-space (UDT-style, per-interval model
  inference) vs kernel-space (CCP-style, batched) deployments.
* Fig. 18: PPO vs DQN (MOCC-DQN): continuous-action PPO wins.
* Fig. 19: training speedup from neighbourhood transfer (two-phase) and
  parallel rollout collection.
"""

import time

import numpy as np
from conftest import print_table, run_once

from repro.baselines import Cubic, Vegas
from repro.baselines.aurora import AuroraController
from repro.baselines.orca import Orca
from repro.config import DEFAULT_TRAINING, TRAINING_RANGES
from repro.core.agent import MoccAgent, MoccController
from repro.core.library import MOCC
from repro.core.offline import OfflineTrainer
from repro.core.weights import BALANCE_WEIGHTS, sample_weight
from repro.datapath import CcpShim, UdtShim
from repro.eval.overhead import measure_overhead
from repro.eval.runner import EvalNetwork, run_scheme
from repro.eval.metrics import reward_of_record
from repro.rl.collect import evaluate_policy
from repro.rl.dqn import DQNTrainer
from repro.rl.parallel import EnvSpec, ProcessCollector, SerialCollector, VectorCollector

SPEC = EnvSpec(ranges=TRAINING_RANGES, max_steps=96, seed=21)


def _eval_agent_rewards(agent, objectives, seed=30):
    """Mean Eq. 2 rewards of an agent over objectives on a test network."""
    net = EvalNetwork(bandwidth_mbps=4.0, one_way_ms=30.0, buffer_bdp=2.0)
    rewards = []
    for i, w in enumerate(objectives):
        ctrl = MoccController(agent, w, initial_rate=net.bottleneck_pps / 3,
                              seed=seed + i)
        record = run_scheme(ctrl, net, duration=12.0, seed=seed + i)
        rewards.append(reward_of_record(record, w))
    return np.asarray(rewards)


def bench_fig16_omega(benchmark):
    """Fig. 16: base-model quality and training time vs omega."""

    def experiment():
        rng = np.random.default_rng(16)
        objectives = [sample_weight(rng) for _ in range(6)]
        out = {}
        for omega, bootstrap in [(3, 40), (10, 40), (36, 40)]:
            trainer = OfflineTrainer(spec=SPEC, config=DEFAULT_TRAINING, seed=16)
            start = time.perf_counter()
            trainer.train(omega=omega, bootstrap_iters=bootstrap,
                          traverse_iters=1, cycles=1)
            elapsed = time.perf_counter() - start
            rewards = _eval_agent_rewards(trainer.agent, objectives)
            out[omega] = (float(rewards.mean()), elapsed)
        return out

    results = run_once(benchmark, experiment)
    print_table("Fig 16: omega tradeoff (reward quality vs training time)",
                ["omega", "mean reward", "train s"],
                [[omega, r, t] for omega, (r, t) in results.items()])
    # Larger omega costs more training time; quality does not degrade.
    assert results[36][1] > results[3][1]
    assert results[36][0] > results[3][0] - 0.1


def bench_fig17_cpu_overhead(benchmark, mocc_agent, aurora_throughput):
    """Fig. 17: control-loop cost, user-space vs kernel-space."""
    net = EvalNetwork(bandwidth_mbps=10.0, one_way_ms=20.0, buffer_bdp=1.0)

    def experiment():
        start = net.bottleneck_pps / 3
        controllers = {
            "MOCC-UDT": UdtShim(MOCC(mocc_agent, initial_rate=start), BALANCE_WEIGHTS),
            "Aurora (user)": AuroraController(aurora_throughput, initial_rate=start),
            "MOCC-Kernel": CcpShim(MOCC(mocc_agent, initial_rate=start),
                                   BALANCE_WEIGHTS, batch=4),
            "Orca (kernel)": Orca(agent=aurora_throughput, rl_interval=4),
            "CUBIC": Cubic(),
            "Vegas": Vegas(),
        }
        return {name: measure_overhead(ctrl, net, duration=15.0, seed=17)
                for name, ctrl in controllers.items()}

    reports = run_once(benchmark, experiment)
    rows = [[name, r.control_us_per_sim_second, r.inference_count]
            for name, r in reports.items()]
    print_table("Fig 17: control cost (us per simulated second) and inferences",
                ["scheme", "us/s", "inferences"], rows)

    # The CCP-style deployment consults the model 'batch' times less
    # often, so its per-interval control cost sits near the kernel
    # heuristics while UDT-style matches Aurora.
    assert (reports["MOCC-UDT"].inference_count
            >= 3 * reports["MOCC-Kernel"].inference_count)
    assert (reports["MOCC-Kernel"].control_us_per_sim_second
            < reports["MOCC-UDT"].control_us_per_sim_second)


def bench_fig18_ppo_vs_dqn(benchmark, zoo):
    """Fig. 18: MOCC-PPO vs MOCC-DQN at a matched training budget."""

    def experiment():
        ppo_agent = zoo.mocc_offline(quality="fast")
        # DQN with the same environment budget as the fast PPO bootstrap.
        dqn = DQNTrainer(obs_dim=ppo_agent.obs_dim, weight_dim=3, seed=18)
        env = SPEC.build(seed_offset=42)
        anchors = [np.array([0.6, 0.3, 0.1]), np.array([0.1, 0.6, 0.3]),
                   np.array([0.3, 0.1, 0.6])]
        for _ in range(34):
            for w in anchors:
                dqn.train_objective(env, w, steps=256)

        rng = np.random.default_rng(19)
        objectives = [sample_weight(rng) for _ in range(5)]
        eval_env = SPEC.build(seed_offset=777)
        ppo_rewards, dqn_rewards = [], []
        for w in objectives:
            ppo_rewards.append(evaluate_policy(eval_env, ppo_agent.model, w, rng))
            obs, w_obs = eval_env.reset(w)
            total, done = 0.0, False
            while not done:
                action = dqn.act_value(obs, w_obs, greedy=True)
                obs, w_obs, r, _, done, _ = eval_env.step(action)
                total += r
            dqn_rewards.append(total)
        return np.asarray(ppo_rewards), np.asarray(dqn_rewards)

    ppo_r, dqn_r = run_once(benchmark, experiment)
    print_table("Fig 18: PPO vs DQN episodic rewards",
                ["algorithm", "mean", "min", "max"],
                [["MOCC-PPO", ppo_r.mean(), ppo_r.min(), ppo_r.max()],
                 ["MOCC-DQN", dqn_r.mean(), dqn_r.min(), dqn_r.max()]])
    # PPO's continuous actions outperform the discretised Q-learner.
    assert ppo_r.mean() > dqn_r.mean()


def bench_fig19_training_speedup(benchmark):
    """Fig. 19: two-phase transfer + parallel rollouts cut training time."""

    def experiment():
        # Individual training: every omega=10 landmark from scratch.
        t0 = time.perf_counter()
        trainer = OfflineTrainer(spec=SPEC, config=DEFAULT_TRAINING, seed=19)
        trainer.train_individual_style(omega=10, iters_per_objective=12)
        individual_s = time.perf_counter() - t0

        # Two-phase transfer (bootstrap + fast traversal).
        t0 = time.perf_counter()
        trainer = OfflineTrainer(spec=SPEC, config=DEFAULT_TRAINING, seed=19)
        trainer.train(omega=10, bootstrap_iters=12, traverse_iters=1, cycles=1)
        transfer_s = time.perf_counter() - t0

        # Rollout-collection strategies at fixed sample count.
        agent = MoccAgent(DEFAULT_TRAINING)
        rng = np.random.default_rng(20)
        timings = {}
        for name, collector in [
                ("serial", SerialCollector(SPEC)),
                ("vectorized", VectorCollector(SPEC, n_envs=4)),
                ("2 processes", ProcessCollector(SPEC, n_workers=2))]:
            t0 = time.perf_counter()
            for _ in range(3):
                collector.collect(agent.model, BALANCE_WEIGHTS, 512, rng)
            timings[name] = time.perf_counter() - t0
            collector.close()
        return individual_s, transfer_s, timings

    individual_s, transfer_s, timings = run_once(benchmark, experiment)
    rows = [["individual", individual_s, 1.0],
            ["two-phase transfer", transfer_s, individual_s / transfer_s]]
    for name, t in timings.items():
        rows.append([f"rollouts: {name}", t, timings["serial"] / t])
    print_table("Fig 19: training-time reduction", ["method", "seconds", "speedup"],
                rows)
    # Transfer training is cheaper than per-objective training; the
    # parallel collectors are no slower than serial (2-core host).
    assert transfer_s < individual_s
    assert timings["2 processes"] < timings["serial"] * 1.5
