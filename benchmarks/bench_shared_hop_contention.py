"""Eager-vs-event queueing divergence on shared downstream hops.

The pre-refactor engine computed every forward hop transit at emit
time, so a through flow's packets hit downstream queues with
*future-stamped* cursors -- out of time order with the cross traffic
actually arriving there, silently reserving buffer and service ahead
of it.  The event-driven per-hop scheduler (PR 4) dequeues each packet
at its true arrival time instead.

This benchmark quantifies what that honesty is worth on the
:func:`~repro.eval.sweeps.shared_hop_suites` grid: heuristic through
schemes vs. per-hop CUBIC cross traffic on a parking lot, every cell
run under both engines, plus a single-bottleneck control grid where
the two engines are bit-identical by construction (no intermediate hop
exists to misstate).

Headline shapes asserted:

* the control grid agrees exactly: wiring the event scheduler costs
  nothing where the eager scheme was already honest;
* the parking-lot grid diverges measurably: the queueing signal
  (RTT and/or loss) the through scheme sees shifts once shared-hop
  arrivals are honestly ordered;
* both engines keep every through flow live (the divergence is a
  correction, not a collapse).

Timing and throughput (wall time, cells/sec) are written to
``BENCH_shared_hop.json`` (in ``BENCH_OUTPUT_DIR``, default the
working directory) for CI trend tracking.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import print_table, run_once

from repro.eval.sweeps import (
    SHARED_HOP_BENCH_BANDWIDTH,
    SHARED_HOP_BENCH_SCHEMES,
    shared_hop_suites,
)
from repro.netsim.traces import mbps_to_pps


def bench_shared_hop_contention(benchmark, runner):
    """Parking-lot divergence + single-bottleneck identity, timed."""
    lot_suite, control_suite = shared_hop_suites()

    t0 = time.perf_counter()

    def experiment():
        return runner.run(lot_suite), runner.run(control_suite)

    lot, control = run_once(benchmark, experiment)
    wall = time.perf_counter() - t0
    cells = len(lot) + len(control)

    # cells[(suite, scheme, seed)][transit] = through-flow record
    grid = {}
    for tag, outcome in (("lot", lot), ("ctrl", control)):
        for result in outcome:
            scheme = result.scenario.lineup.removesuffix("-through")
            key = (tag, scheme, result.scenario.seed)
            grid.setdefault(key, {})[result.scenario.transit] = \
                result.records[0]

    rows, divergence = [], []
    for (tag, scheme, seed), pair in sorted(grid.items()):
        ev, ea = pair["event"], pair["eager"]
        d_rtt = abs(ev.mean_rtt - ea.mean_rtt) / ea.mean_rtt
        d_thr = (abs(ev.mean_throughput_pps - ea.mean_throughput_pps)
                 / max(ea.mean_throughput_pps, 1e-9))
        d_loss = abs(ev.loss_rate - ea.loss_rate)
        rows.append([tag, scheme, seed, ev.mean_throughput_pps,
                     ea.mean_throughput_pps, d_rtt, d_loss])
        if tag == "lot":
            divergence.append(max(d_rtt, d_thr, d_loss))
        else:
            # Single bottleneck: the engines must agree bit-for-bit.
            assert ev.mean_throughput_pps == ea.mean_throughput_pps, \
                (scheme, seed)
            assert ev.mean_rtt == ea.mean_rtt, (scheme, seed)
            assert ev.loss_rate == ea.loss_rate, (scheme, seed)
    print_table("Shared-hop contention: event engine vs eager twin",
                ["grid", "scheme", "seed", "event thr", "eager thr",
                 "d_rtt", "d_loss"], rows)

    # Honest shared-hop ordering visibly moves the queueing signal.
    assert np.mean(divergence) > 0.02, divergence
    assert max(divergence) > 0.05, divergence
    # A correction, not a collapse: every through flow stays usable
    # under both engines.
    bottleneck_pps = mbps_to_pps(SHARED_HOP_BENCH_BANDWIDTH)
    for (tag, scheme, seed), pair in grid.items():
        for record in pair.values():
            assert record.mean_throughput_pps / bottleneck_pps > 0.02, \
                (tag, scheme, seed)

    # Throughput over *executed* cells only: on a warm result cache the
    # run is pure cache reads, and cells/wall would report a bogus
    # orders-of-magnitude speedup to whoever tracks the trend.
    executed = lot.cache_misses + control.cache_misses
    out = {
        "benchmark": "shared_hop_contention",
        "cells": cells,
        "wall_time_s": round(wall, 3),
        "executed_cells": executed,
        "cells_per_sec": (round(executed / wall, 3) if executed else None),
        "cache_hits": lot.cache_hits + control.cache_hits,
        "cache_misses": executed,
        "schemes": list(SHARED_HOP_BENCH_SCHEMES),
        "mean_lot_divergence": round(float(np.mean(divergence)), 4),
        "max_lot_divergence": round(float(np.max(divergence)), 4),
    }
    path = Path(os.environ.get("BENCH_OUTPUT_DIR", ".")) / "BENCH_shared_hop.json"
    path.write_text(json.dumps(out, indent=2))
    rate = (f"{out['cells_per_sec']} simulated cells/sec" if executed
            else "all cells cache-served")
    print(f"\nwrote {path} ({rate}, {out['cache_hits']} cache hits)")
