"""Table 1: the objectives of learning-based CC schemes.

Evaluates each published utility/reward function at canonical operating
points and checks the qualitative properties the paper's Table 1
encodes: throughput credit, latency/loss penalties, and the coefficient
balance that distinguishes the schemes.
"""

from conftest import print_table, run_once

from repro.baselines.base import (
    allegro_sigmoid_utility,
    allegro_utility,
    aurora_utility,
    orca_utility,
    vivace_utility,
)


def bench_table1(benchmark):
    def experiment():
        # Operating points: (throughput pps, rtt s, loss, rate pps, dRTT/dt)
        points = {
            "idle": (10.0, 0.04, 0.0, 10.0, 0.0),
            "at-capacity": (100.0, 0.045, 0.0, 100.0, 0.0),
            "overdrive": (100.0, 0.20, 0.30, 160.0, 0.5),
        }
        rows = []
        for name, (thr, rtt, loss, rate, grad) in points.items():
            rows.append([
                name,
                aurora_utility(thr, rtt, loss),
                vivace_utility(rate, grad, loss),
                allegro_utility(thr, rtt),
                allegro_sigmoid_utility(rate, loss),
                orca_utility(thr, rtt, loss, max_throughput_pps=100.0, min_rtt_s=0.04),
            ])
        return rows

    rows = run_once(benchmark, experiment)
    print_table("Table 1: utility functions at canonical operating points",
                ["point", "Aurora", "Vivace", "Allegro(T-dRTT)", "Allegro(sigmoid)", "Orca"],
                rows)

    by_name = {r[0]: r for r in rows}
    # Every utility prefers at-capacity over idle...
    for col in range(1, 6):
        assert by_name["at-capacity"][col] > by_name["idle"][col]
    # ...and penalises the overdrive point relative to at-capacity.
    for col in range(1, 6):
        assert by_name["overdrive"][col] < by_name["at-capacity"][col]
