"""Fig. 6: reward CDF over a generalized many-objective setting.

The paper runs 100 objectives x 10 network conditions (1000 scenarios)
and plots the per-scheme CDF of Eq. 2 rewards.  MOCC (offline model
only, no online adaptation) beats every other scheme; "enhanced Aurora"
(10 pre-trained single-objective models, best one picked per objective)
is second; vanilla Aurora and the heuristics trail.

Scaled here to 12 objectives x 4 conditions = 48 scenarios per scheme.
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.agent import MoccController
from repro.baselines.aurora import AuroraController
from repro.core.weights import sample_weight
from repro.eval.cdf import format_cdf_table
from repro.eval.metrics import reward_of_record
from repro.eval.runner import EvalNetwork, run_scheme, scheme_factory

CONDITIONS = [
    EvalNetwork(bandwidth_mbps=12.0, one_way_ms=20.0, buffer_bdp=1.0),
    EvalNetwork(bandwidth_mbps=25.0, one_way_ms=60.0, buffer_bdp=2.0),
    EvalNetwork(bandwidth_mbps=18.0, one_way_ms=40.0, buffer_bdp=0.5, loss_rate=0.01),
    EvalNetwork(bandwidth_mbps=35.0, one_way_ms=15.0, buffer_bdp=3.0),
]
N_OBJECTIVES = 12
DURATION = 10.0


def bench_fig6_reward_cdf(benchmark, zoo, mocc_agent, aurora_throughput):
    enhanced = zoo.enhanced_aurora(10, quality="fast")

    def experiment():
        rng = np.random.default_rng(7)
        objectives = [sample_weight(rng) for _ in range(N_OBJECTIVES)]
        rewards: dict[str, list] = {
            "MOCC": [], "Enhanced Aurora": [], "Aurora": [],
            "CUBIC": [], "Vegas": [], "BBR": [], "Vivace": [],
        }
        for ci, net in enumerate(CONDITIONS):
            start = net.bottleneck_pps / 3
            for oi, w in enumerate(objectives):
                seed = ci * 100 + oi
                # MOCC: one model, conditioned on the objective.
                record = run_scheme(MoccController(mocc_agent, w, initial_rate=start),
                                    net, duration=DURATION, seed=seed)
                rewards["MOCC"].append(reward_of_record(record, w))
                # Enhanced Aurora: nearest pre-trained model.
                dists = [float(np.sum((ew - w) ** 2)) for ew, _ in enhanced]
                _, agent = enhanced[int(np.argmin(dists))]
                record = run_scheme(AuroraController(agent, initial_rate=start),
                                    net, duration=DURATION, seed=seed)
                rewards["Enhanced Aurora"].append(reward_of_record(record, w))
                # Vanilla Aurora: one fixed throughput-trained model.
                record = run_scheme(AuroraController(aurora_throughput, initial_rate=start),
                                    net, duration=DURATION, seed=seed)
                rewards["Aurora"].append(reward_of_record(record, w))
                # Heuristics: objective-agnostic behaviour.
                for scheme in ("CUBIC", "Vegas", "BBR", "Vivace"):
                    ctrl = scheme_factory(scheme.lower(), net, seed=seed)
                    record = run_scheme(ctrl, net, duration=DURATION, seed=seed)
                    rewards[scheme].append(reward_of_record(record, w))
        return {k: np.asarray(v) for k, v in rewards.items()}

    rewards = run_once(benchmark, experiment)
    print("\n=== Fig 6: reward percentiles over objective x condition scenarios ===")
    print(format_cdf_table(rewards))

    means = {k: v.mean() for k, v in rewards.items()}
    # The learning-based ordering of the paper holds: MOCC > enhanced
    # Aurora > vanilla Aurora, and MOCC beats the classic heuristics.
    # (In this reproduction BBR's hand-tuned model edges out our
    # small-budget MOCC policies on raw reward -- see EXPERIMENTS.md.)
    assert means["MOCC"] > means["Aurora"]
    assert means["MOCC"] > means["CUBIC"]
    assert means["MOCC"] > means["Vegas"] - 0.05
    assert means["MOCC"] >= max(means["BBR"], means["Vivace"]) - 0.10
    assert means["Enhanced Aurora"] >= means["Aurora"] - 0.02
