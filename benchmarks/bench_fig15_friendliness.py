"""Fig. 15: TCP-friendliness across RTTs.

Two flows share a bottleneck: one CUBIC, one scheme under test; the
friendliness ratio is the scheme's delivery rate over CUBIC's.  The
paper finds MOCC-Throughput more aggressive, MOCC-Balance/-Latency
friendlier, and MOCC overall comparable to other schemes (ratios
roughly within 0.1-5).

The contender x RTT matrix is one
:class:`~repro.eval.scenarios.ScenarioSuite` run through the shared
parallel runner (15 independent head-to-head competitions).
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.weights import (
    BALANCE_WEIGHTS,
    LATENCY_WEIGHTS,
    THROUGHPUT_WEIGHTS,
)
from repro.eval.metrics import friendliness_ratio
from repro.eval.scenarios import FlowDef, ScenarioSuite

RTTS_MS = (20.0, 60.0, 120.0)


def bench_fig15_friendliness(benchmark, runner, mocc_agent):
    def contender(name, weights=None, seed=0):
        if weights is not None:
            probe = FlowDef("mocc", weights=tuple(np.asarray(weights)),
                            agent=mocc_agent, seed=seed, rate_frac=0.25,
                            label=name)
        else:
            probe = FlowDef(name.lower(), rate_frac=0.25, label=name)
        return name, (probe, FlowDef("cubic"))

    suite = ScenarioSuite(
        name="fig15",
        lineups=dict([contender("MOCC-Throughput", THROUGHPUT_WEIGHTS, seed=1),
                      contender("MOCC-Balance", BALANCE_WEIGHTS, seed=2),
                      contender("MOCC-Latency", LATENCY_WEIGHTS, seed=3),
                      contender("BBR"),
                      contender("Vegas")]),
        bandwidths_mbps=(20.0,), rtts_ms=RTTS_MS, duration=25.0, seeds=(10,))

    def experiment():
        out = {}
        for result in runner.run(suite):
            rtt = 2.0 * result.scenario.network.one_way_ms
            out[(result.scenario.lineup, rtt)] = friendliness_ratio(
                result.records[0], result.records[1])
        return out

    ratios = run_once(benchmark, experiment)
    print_table("Fig 15: friendliness ratio vs CUBIC across RTTs",
                ["scheme", "RTT ms", "ratio"],
                [[name, rtt, r] for (name, rtt), r in ratios.items()])

    def mean_of(scheme):
        return float(np.mean([r for (n, _), r in ratios.items() if n == scheme]))

    # MOCC-Throughput is the aggressive variant; Balance/Latency are
    # friendlier.  Against queue-filling CUBIC our latency-aware MOCC
    # backs off much like Vegas does (delay-based schemes always lose
    # to loss-based ones on a shared drop-tail queue) -- the paper's
    # MOCC is more competitive; see EXPERIMENTS.md.
    assert mean_of("MOCC-Throughput") >= mean_of("MOCC-Latency") * 0.9
    for (name, rtt), r in ratios.items():
        assert 0.01 < r < 50.0, (name, rtt, r)
