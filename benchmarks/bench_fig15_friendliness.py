"""Fig. 15: TCP-friendliness across RTTs.

Two flows share a bottleneck: one CUBIC, one scheme under test; the
friendliness ratio is the scheme's delivery rate over CUBIC's.  The
paper finds MOCC-Throughput more aggressive, MOCC-Balance/-Latency
friendlier, and MOCC overall comparable to other schemes (ratios
roughly within 0.1-5).
"""

import numpy as np
from conftest import print_table, run_once

from repro.baselines import BBR, Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import (
    BALANCE_WEIGHTS,
    LATENCY_WEIGHTS,
    THROUGHPUT_WEIGHTS,
)
from repro.eval.metrics import friendliness_ratio
from repro.eval.runner import EvalNetwork, run_competition

RTTS_MS = (20.0, 60.0, 120.0)


def bench_fig15_friendliness(benchmark, mocc_agent):
    def experiment():
        out = {}
        for rtt in RTTS_MS:
            net = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=rtt / 2, buffer_bdp=1.0)
            start = net.bottleneck_pps / 4
            contenders = {
                "MOCC-Throughput": lambda s=1: MoccController(
                    mocc_agent, THROUGHPUT_WEIGHTS, initial_rate=start, seed=s),
                "MOCC-Balance": lambda s=2: MoccController(
                    mocc_agent, BALANCE_WEIGHTS, initial_rate=start, seed=s),
                "MOCC-Latency": lambda s=3: MoccController(
                    mocc_agent, LATENCY_WEIGHTS, initial_rate=start, seed=s),
                "BBR": lambda: BBR(initial_rate=start),
                "Vegas": Vegas,
            }
            for name, factory in contenders.items():
                records = run_competition([factory(), Cubic()], net,
                                          duration=25.0, seed=10)
                out[(name, rtt)] = friendliness_ratio(records[0], records[1])
        return out

    ratios = run_once(benchmark, experiment)
    print_table("Fig 15: friendliness ratio vs CUBIC across RTTs",
                ["scheme", "RTT ms", "ratio"],
                [[name, rtt, r] for (name, rtt), r in ratios.items()])

    def mean_of(scheme):
        return float(np.mean([r for (n, _), r in ratios.items() if n == scheme]))

    # MOCC-Throughput is the aggressive variant; Balance/Latency are
    # friendlier.  Against queue-filling CUBIC our latency-aware MOCC
    # backs off much like Vegas does (delay-based schemes always lose
    # to loss-based ones on a shared drop-tail queue) -- the paper's
    # MOCC is more competitive; see EXPERIMENTS.md.
    assert mean_of("MOCC-Throughput") >= mean_of("MOCC-Latency") * 0.9
    for (name, rtt), r in ratios.items():
        assert 0.01 < r < 50.0, (name, rtt, r)
