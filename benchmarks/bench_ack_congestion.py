"""Ack-path congestion on asymmetric dumbbells (reverse-path queueing).

The paper's evaluation (like the pre-PR engine) treats the reverse
direction as pure propagation, making ack compression physically
impossible.  With reverse paths wired to real queued links
(:func:`repro.netsim.topology.dumbbell_asymmetric`), a download's acks
share the skinny uplink with competing uploads -- the ADSL/cable/
satellite regime where latency objectives diverge hardest.

This benchmark runs the :func:`~repro.eval.sweeps.ack_congestion_suite`
grid: heuristic download schemes against 0-2 CUBIC uploads, every cell
paired with its *pure-propagation twin* (same base RTT, no reverse
queueing) through the ``reverse_paths`` axis, under steady and
periodically restarting upload sessions.

Headline shapes asserted:

* with the reverse link idle, wiring it is free: wired and twin cells
  agree to within a few percent (the ack wire-size is honest);
* with uploads present, the wired download RTT is measurably above its
  twin -- ack-path queueing the twin cannot see;
* downloads keep a usable share of the forward bottleneck even under
  ack congestion (delayed acks dominate; a buffer-dropped ack really
  is lost since PR 4, but cumulative-ack recovery and the retransmit
  timeout keep the sender's accounting whole).
"""

import numpy as np
from conftest import print_table, run_once

from repro.eval.sweeps import (
    ACK_BENCH_CHURNS,
    ACK_BENCH_REVERSE_LOADS,
    ACK_BENCH_SCHEMES,
    ack_congestion_suite,
)
from repro.netsim.traces import mbps_to_pps


def bench_ack_congestion_grid(benchmark, runner):
    """Download RTT/throughput: wired reverse path vs. its twin."""
    suite = ack_congestion_suite(ACK_BENCH_SCHEMES, churns=ACK_BENCH_CHURNS)
    outcome = run_once(benchmark, lambda: runner.run(suite))

    # cells[(scheme, load, wired, churn_label)] = download record
    cells = {}
    for result in outcome:
        scheme, load = result.scenario.lineup.rsplit("-rev", 1)
        wired = "rev=" not in result.scenario.name or \
            "prop" not in result.scenario.name.split("rev=")[1].split("/")[0]
        churn = (result.scenario.churn.label()
                 if result.scenario.churn is not None else "none")
        cells[(scheme, int(load), wired, churn)] = result.records[0]

    rows = [[scheme, load, "wired" if wired else "twin", churn,
             rec.mean_throughput_pps, rec.mean_rtt, rec.loss_rate]
            for (scheme, load, wired, churn), rec in sorted(
                cells.items(), key=lambda kv: (kv[0][0], kv[0][1],
                                               not kv[0][2], kv[0][3]))]
    print_table("Ack congestion: wired reverse path vs pure-propagation twin",
                ["scheme", "uploads", "reverse", "churn", "dl pps",
                 "dl rtt", "dl loss"], rows)

    forward_pps = mbps_to_pps(16.0)
    churn_labels = [c.label() if c is not None else "none"
                    for c in ACK_BENCH_CHURNS]
    for scheme in ACK_BENCH_SCHEMES:
        for churn in churn_labels:
            idle_wired = cells[(scheme, 0, True, churn)]
            idle_twin = cells[(scheme, 0, False, churn)]
            # An idle reverse link costs (almost) nothing to wire.
            assert idle_wired.mean_rtt <= idle_twin.mean_rtt * 1.10, \
                (scheme, churn)
            loaded = [(cells[(scheme, n, True, churn)],
                       cells[(scheme, n, False, churn)])
                      for n in ACK_BENCH_REVERSE_LOADS if n > 0]
            # Ack-path queueing is visible on average across loads.
            wired_rtt = np.mean([w.mean_rtt for w, _ in loaded])
            twin_rtt = np.mean([t.mean_rtt for _, t in loaded])
            assert wired_rtt > twin_rtt * 1.1, (scheme, churn)
            for wired_rec, _ in loaded:
                # Delayed acks, not a collapse: the download still moves.
                share = wired_rec.mean_throughput_pps / forward_pps
                assert share > 0.05, (scheme, churn)
