"""Shared fixtures for the figure/table benchmarks.

Each benchmark regenerates one of the paper's evaluation artifacts: it
runs the experiment once (timed via pytest-benchmark), prints the rows
or series the paper's figure plots, and asserts the headline *shape*
(who wins, roughly by how much).  Absolute numbers differ from the
paper -- the substrate is a simulator, not the authors' testbed -- and
EXPERIMENTS.md records the paper-vs-measured comparison per figure.

Trained models come from the seeded zoo cache; the first run trains
them (a few minutes total), later runs load from disk.
"""

import os

import numpy as np
import pytest

from repro.eval.parallel import ParallelRunner
from repro.models import default_zoo


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure/table id")


@pytest.fixture(scope="session")
def zoo():
    return default_zoo()


@pytest.fixture(scope="session")
def runner():
    """Shared scenario runner: sharded across cores, results memoized.

    ``REPRO_EVAL_WORKERS`` pins the worker count (0 = auto: one per
    core, capped at 8); ``REPRO_RESULT_CACHE`` relocates the on-disk
    result cache.  A benchmark re-run with an unchanged suite is
    served from the cache.
    """
    workers = int(os.environ.get("REPRO_EVAL_WORKERS", "0")) or None
    return ParallelRunner(n_workers=workers)


@pytest.fixture(scope="session")
def mocc_agent(zoo):
    """The full-quality offline-trained multi-objective model."""
    return zoo.mocc_offline(quality="full")


@pytest.fixture(scope="session")
def aurora_throughput(zoo):
    return zoo.aurora("throughput", quality="full")


@pytest.fixture(scope="session")
def aurora_latency(zoo):
    return zoo.aurora("latency", quality="full")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


def run_once(benchmark, fn):
    """Time a single execution of the experiment body."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, header: list, rows: list) -> None:
    """Uniform table printer for the paper-style output."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 10) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.3f}".ljust(w))
            else:
                cells.append(str(value).ljust(w))
        print("  ".join(cells))
