"""Engine speed: events/sec + cells/sec across the standard perf shapes.

The repo's first perf-trajectory artifact (PR 5).  The discrete-event
hot path was rebuilt -- integer event dispatch through a handler table,
allocation-free tuple transits, streamed monitor-interval statistics,
block-drawn RNG, monotonic-deque filters in BBR/Copa -- under a
bit-identity guarantee (tests/test_golden_traces.py), and this
benchmark is what keeps the speed from silently rotting:

* measures every :data:`~repro.eval.perf.PERF_SHAPES` shape under both
  transit engines (warm, best-of-N) plus the full serial pipeline;
* measures the batched multi-cell dispatch shape (PR 8): a 16-cell
  short-duration grid through :class:`~repro.eval.parallel.ParallelRunner`
  under batch-per-worker vs cell-per-task dispatch, reporting cells/sec
  for both and the speedup (the checked-in baseline records >=1.5x);
* measures the kernel engine shape (PR 9): paired reference-vs-kernel
  events/sec on the gated shapes (solo, event transit) plus a batched
  :class:`~repro.eval.batch.BatchRunner` grid of kernel cells, gated
  against the build-mode floor (>=1.5x compiled, parity interpreted;
  event counts must match *exactly* -- that assert is never skipped);
* writes ``BENCH_engine.json`` (in ``BENCH_OUTPUT_DIR``, default the
  working directory) with raw events/sec, cells/sec, and
  machine-normalized events-per-calibration-op;
* compares the normalized numbers against the checked-in baseline
  ``benchmarks/BENCH_engine_baseline.json`` and fails on a >30%
  regression (``REPRO_PERF_SMOKE_SKIP=1`` skips the gate on known-noisy
  hosts; ``REPRO_PERF_TOLERANCE`` overrides the tolerance;
  ``REPRO_PERF_REPEATS`` overrides the best-of repeat count).

The baseline also carries the measured *pre-optimization* numbers
(``pre_pr``) so the speedup this PR bought stays on the record:
>=2x events/sec on the parking-lot (shared-hop) grid, ~2.3-2.7x on the
single-bottleneck and ack-congestion shapes.

Run as a script with ``--profile`` to skip the gates and instead write
per-shape cProfile summaries (top-20 by cumulative time, both engines)
to ``BENCH_OUTPUT_DIR`` -- the starting point for any hot-path work.
"""

import os
from pathlib import Path

from repro.eval.perf import (
    check_regression,
    engine_speed_report,
    load_report,
    write_report,
)

BASELINE_PATH = Path(__file__).parent / "BENCH_engine_baseline.json"


def perf_repeats(default: int = 3) -> int:
    """Best-of repeat count: ``REPRO_PERF_REPEATS`` wins, then the
    older ``ENGINE_BENCH_REPEATS``, then ``default``."""
    raw = os.environ.get("REPRO_PERF_REPEATS",
                         os.environ.get("ENGINE_BENCH_REPEATS", ""))
    return int(raw) if raw else default


def bench_engine_speed(benchmark):
    """Measure the engine, write BENCH_engine.json, gate vs baseline."""
    from conftest import print_table, run_once

    duration = float(os.environ.get("ENGINE_BENCH_DURATION", "10.0"))
    repeats = perf_repeats()

    report = run_once(benchmark, lambda: engine_speed_report(
        duration=duration, repeats=repeats, pipeline=True, batched=True,
        kernel=True))

    rows = [[s["shape"], s["transit"], s["events"], s["events_per_sec"],
             s["cells_per_sec"], s["events_per_calibration_op"]]
            for s in report["shapes"]]
    print_table("Engine speed (events/sec; normalized = per calibration op)",
                ["shape", "transit", "events", "events/s", "cells/s",
                 "normalized"], rows)
    print(f"pipeline: {report['pipeline_cells']} cells in "
          f"{report['pipeline_wall_s']}s -> "
          f"{report['pipeline_cells_per_sec']} cells/s, "
          f"{report['pipeline_events_per_sec']} events/s")
    b = report["batched"]
    print(f"batched dispatch: {b['cells']} cells x {b['duration']}s, "
          f"{b['n_workers']} workers: batch-per-worker "
          f"{b['batched_cells_per_sec']} cells/s vs cell-per-task "
          f"{b['per_cell_cells_per_sec']} cells/s -> {b['speedup']}x")

    k = report["kernel"]
    mode = "compiled" if k["compiled"] else "interpreted"
    krows = [[shape, d["reference_events_per_sec"],
              d["kernel_events_per_sec"], d["speedup"],
              str(d["events_match"])]
             for shape, d in k["shapes"].items()]
    kb = k["batched"]
    krows.append([f"batched x{kb['cells']}", kb["reference_events_per_sec"],
                  kb["kernel_events_per_sec"], kb["speedup"],
                  str(kb["events_match"])])
    print_table(f"Kernel engine vs reference ({mode} build)",
                ["shape", "ref ev/s", "kernel ev/s", "speedup", "ev match"],
                krows)

    for s in report["shapes"]:
        assert s["events"] > 0 and s["events_per_sec"] > 0, s
    assert report["pipeline_cells_per_sec"] > 0
    assert b["batched_cells_per_sec"] > 0 and b["per_cell_cells_per_sec"] > 0
    # Bit-identity makes event counts a correctness property, not a
    # perf number: a mismatch fails even under REPRO_PERF_SMOKE_SKIP.
    assert k["events_match"], (
        "kernel and reference engines disagree on events processed",
        k["shapes"])
    # The batching win itself (>= 1.5x measured at baseline time) is
    # gated against BENCH_engine_baseline.json by check_regression
    # below, tolerance-buffered like every other perf number.

    # The kernel speedup floor is absolute (same-machine ratio) and
    # keyed by build mode, so it gates even without a baseline file.
    floor = k["min_speedup"]["compiled" if k["compiled"] else "uncompiled"]
    failures = [
        f"kernel[{mode}]: {name} speedup {val}x fell below the "
        f"{floor}x floor"
        for name, val in (("single-bottleneck",
                           k["speedup_single_bottleneck"]),
                          ("parking-lot", k["speedup_parking_lot"]),
                          ("batched", k["batched_speedup"]))
        if val < floor]
    if BASELINE_PATH.exists():
        baseline = load_report(BASELINE_PATH)
        tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))
        failures += check_regression(report, baseline, tolerance=tolerance)
        report["baseline_check"] = {
            "baseline": str(BASELINE_PATH), "tolerance": tolerance,
            "failures": failures,
            "skipped": os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1"}
        if "pre_pr" in baseline:
            report["pre_pr"] = baseline["pre_pr"]

    out = Path(os.environ.get("BENCH_OUTPUT_DIR", ".")) / "BENCH_engine.json"
    write_report(report, out)
    print(f"\nwrote {out}")

    if failures:
        if os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1":
            print("PERF REGRESSION (gate skipped via REPRO_PERF_SMOKE_SKIP):")
            for f in failures:
                print(" ", f)
        else:
            raise AssertionError(
                "engine speed gate failed (floor or checked-in baseline; "
                "set REPRO_PERF_SMOKE_SKIP=1 on known-noisy hosts):\n  "
                + "\n  ".join(failures))


def profile_shapes(duration: float = 5.0, out_dir=".",
                   shapes=None, engines=("reference", "kernel")) -> list:
    """cProfile every shape x engine; write top-20 cumulative summaries.

    One ``BENCH_profile_<shape>_<engine>.txt`` per combination, sorted
    by cumulative time -- what "where does the event loop spend its
    time" questions start from.  Construction happens outside the
    profiled window, like :func:`~repro.eval.perf.measure_shape`.
    """
    import cProfile
    import pstats

    from repro.eval.perf import PERF_SHAPES, perf_scenarios
    from repro.eval.scenarios import build_scenario_simulation

    out_dir = Path(out_dir)
    paths = []
    for shape in shapes or PERF_SHAPES:
        for engine in engines:
            sims = [build_scenario_simulation(s)
                    for s in perf_scenarios(shape, duration=duration,
                                            engine=engine)]
            prof = cProfile.Profile()
            prof.enable()
            for sim in sims:
                sim.run_all()
            prof.disable()
            path = out_dir / f"BENCH_profile_{shape}_{engine}.txt"
            with path.open("w") as fh:
                fh.write(f"# shape={shape} engine={engine} "
                         f"duration={duration}s: top-20 by cumulative "
                         f"time\n")
                pstats.Stats(prof, stream=fh) \
                    .sort_stats("cumulative").print_stats(20)
            paths.append(path)
            print(f"wrote {path}")
    return paths


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Engine-speed utilities (the benchmark itself runs "
                    "under pytest; see the module docstring).")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile every perf shape under both engines; "
                             "write top-20 cumulative summaries to "
                             "BENCH_OUTPUT_DIR")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds per profiled cell")
    cli = parser.parse_args()
    if cli.profile:
        profile_shapes(duration=cli.duration,
                       out_dir=os.environ.get("BENCH_OUTPUT_DIR", "."))
    else:
        parser.error("nothing to do: pass --profile")
