"""Engine speed: events/sec + cells/sec across the standard perf shapes.

The repo's first perf-trajectory artifact (PR 5).  The discrete-event
hot path was rebuilt -- integer event dispatch through a handler table,
allocation-free tuple transits, streamed monitor-interval statistics,
block-drawn RNG, monotonic-deque filters in BBR/Copa -- under a
bit-identity guarantee (tests/test_golden_traces.py), and this
benchmark is what keeps the speed from silently rotting:

* measures every :data:`~repro.eval.perf.PERF_SHAPES` shape under both
  transit engines (warm, best-of-N) plus the full serial pipeline;
* measures the batched multi-cell dispatch shape (PR 8): a 16-cell
  short-duration grid through :class:`~repro.eval.parallel.ParallelRunner`
  under batch-per-worker vs cell-per-task dispatch, reporting cells/sec
  for both and the speedup (the checked-in baseline records >=1.5x);
* writes ``BENCH_engine.json`` (in ``BENCH_OUTPUT_DIR``, default the
  working directory) with raw events/sec, cells/sec, and
  machine-normalized events-per-calibration-op;
* compares the normalized numbers against the checked-in baseline
  ``benchmarks/BENCH_engine_baseline.json`` and fails on a >30%
  regression (``REPRO_PERF_SMOKE_SKIP=1`` skips the gate on known-noisy
  hosts; ``REPRO_PERF_TOLERANCE`` overrides the tolerance).

The baseline also carries the measured *pre-optimization* numbers
(``pre_pr``) so the speedup this PR bought stays on the record:
>=2x events/sec on the parking-lot (shared-hop) grid, ~2.3-2.7x on the
single-bottleneck and ack-congestion shapes.
"""

import os
from pathlib import Path

from conftest import print_table, run_once

from repro.eval.perf import (
    check_regression,
    engine_speed_report,
    load_report,
    write_report,
)

BASELINE_PATH = Path(__file__).parent / "BENCH_engine_baseline.json"


def bench_engine_speed(benchmark):
    """Measure the engine, write BENCH_engine.json, gate vs baseline."""
    duration = float(os.environ.get("ENGINE_BENCH_DURATION", "10.0"))
    repeats = int(os.environ.get("ENGINE_BENCH_REPEATS", "3"))

    report = run_once(benchmark, lambda: engine_speed_report(
        duration=duration, repeats=repeats, pipeline=True, batched=True))

    rows = [[s["shape"], s["transit"], s["events"], s["events_per_sec"],
             s["cells_per_sec"], s["events_per_calibration_op"]]
            for s in report["shapes"]]
    print_table("Engine speed (events/sec; normalized = per calibration op)",
                ["shape", "transit", "events", "events/s", "cells/s",
                 "normalized"], rows)
    print(f"pipeline: {report['pipeline_cells']} cells in "
          f"{report['pipeline_wall_s']}s -> "
          f"{report['pipeline_cells_per_sec']} cells/s, "
          f"{report['pipeline_events_per_sec']} events/s")
    b = report["batched"]
    print(f"batched dispatch: {b['cells']} cells x {b['duration']}s, "
          f"{b['n_workers']} workers: batch-per-worker "
          f"{b['batched_cells_per_sec']} cells/s vs cell-per-task "
          f"{b['per_cell_cells_per_sec']} cells/s -> {b['speedup']}x")

    for s in report["shapes"]:
        assert s["events"] > 0 and s["events_per_sec"] > 0, s
    assert report["pipeline_cells_per_sec"] > 0
    assert b["batched_cells_per_sec"] > 0 and b["per_cell_cells_per_sec"] > 0
    # The batching win itself (>= 1.5x measured at baseline time) is
    # gated against BENCH_engine_baseline.json by check_regression
    # below, tolerance-buffered like every other perf number.

    failures = []
    if BASELINE_PATH.exists():
        baseline = load_report(BASELINE_PATH)
        tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))
        failures = check_regression(report, baseline, tolerance=tolerance)
        report["baseline_check"] = {
            "baseline": str(BASELINE_PATH), "tolerance": tolerance,
            "failures": failures,
            "skipped": os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1"}
        if "pre_pr" in baseline:
            report["pre_pr"] = baseline["pre_pr"]

    out = Path(os.environ.get("BENCH_OUTPUT_DIR", ".")) / "BENCH_engine.json"
    write_report(report, out)
    print(f"\nwrote {out}")

    if failures:
        if os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1":
            print("PERF REGRESSION (gate skipped via REPRO_PERF_SMOKE_SKIP):")
            for f in failures:
                print(" ", f)
        else:
            raise AssertionError(
                "engine speed regressed vs checked-in baseline "
                "(set REPRO_PERF_SMOKE_SKIP=1 on known-noisy hosts):\n  "
                + "\n  ".join(failures))
