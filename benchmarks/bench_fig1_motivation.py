"""Fig. 1: the motivation experiments.

(a) Throughput timeline on a 20<->30 Mbps step link (OWD 20 ms, 0.02 %
    loss): learning-based CC tracks capacity better than CUBIC/Vegas.
(b) Throughput-latency 1-sigma ellipses: schemes trace a path from
    latency-optimised to throughput-optimised; MOCC spans a *range* by
    changing its weight vector.
(c) Re-training Aurora for a new objective takes a long time (the quick
    adaptation benches, Fig. 7, quantify MOCC's speedup against this).
"""

import numpy as np
from conftest import print_table, run_once

from repro.baselines import Cubic, Vegas
from repro.baselines.aurora import AuroraController
from repro.core.agent import MoccController
from repro.core.offline import train_single_objective
from repro.core.weights import LATENCY_WEIGHTS, THROUGHPUT_WEIGHTS
from repro.eval.gaussian import sigma_ellipse
from repro.eval.runner import EvalNetwork, run_scheme
from repro.netsim.traces import StepTrace
from repro.rl.parallel import EnvSpec
from repro.config import TRAINING_RANGES


def bench_fig1a_throughput_timeline(benchmark, aurora_throughput):
    """Fig. 1(a): 50 s on a 20<->30 Mbps square-wave bottleneck."""
    trace = StepTrace.from_mbps(20.0, 30.0, period=10.0)
    network = EvalNetwork(bandwidth_mbps=30.0, one_way_ms=20.0, buffer_bdp=1.0,
                          loss_rate=0.0002, trace=trace)

    def experiment():
        results = {}
        for name, ctrl in [
                ("CUBIC", Cubic()),
                ("Vegas", Vegas()),
                ("Aurora", AuroraController(aurora_throughput,
                                            initial_rate=network.bottleneck_pps / 2))]:
            record = run_scheme(ctrl, network, duration=50.0, seed=1)
            # 5-second throughput buckets (the paper's timeline).
            buckets = {}
            for s in record.records:
                buckets.setdefault(int(s.start // 5), []).append(s.throughput_mbps)
            timeline = [float(np.mean(buckets[k])) for k in sorted(buckets)]
            # Steady-state mean: drop the first 20 s (the RL agent ramps
            # from a cold start; the paper's runs are steady-state).
            steady = float(np.mean([s.throughput_mbps for s in record.records
                                    if s.start >= 20.0]))
            results[name] = (steady, timeline)
        return results

    results = run_once(benchmark, experiment)
    rows = [[name, mean] + [round(v, 1) for v in tl[:10]]
            for name, (mean, tl) in results.items()]
    print_table("Fig 1a: throughput on 20<->30 Mbps step link (cols: 5s buckets)",
                ["scheme", "steady-mean"] + [f"t{5*i}" for i in range(10)], rows)

    # Learning-based CC sustains higher steady-state throughput than the
    # delay heuristic under the varying link (the paper's Fig. 1a claim).
    assert results["Aurora"][0] > results["Vegas"][0] * 0.95
    assert results["Aurora"][0] > 0.6 * 25.0  # tracks a 20-30 Mbps link


def bench_fig1b_tradeoff_ellipses(benchmark, mocc_agent, aurora_throughput,
                                  aurora_latency):
    """Fig. 1(b): 1-sigma throughput/latency ellipses per scheme."""
    network = EvalNetwork(bandwidth_mbps=25.0, one_way_ms=20.0, buffer_bdp=2.0)

    def controllers(seed):
        start = network.bottleneck_pps / 3
        return [
            ("CUBIC", Cubic()),
            ("Vegas", Vegas()),
            ("Aurora-thr", AuroraController(aurora_throughput, initial_rate=start, seed=seed)),
            ("Aurora-lat", AuroraController(aurora_latency, initial_rate=start, seed=seed)),
            ("MOCC-thr", MoccController(mocc_agent, THROUGHPUT_WEIGHTS,
                                        initial_rate=start, seed=seed)),
            ("MOCC-lat", MoccController(mocc_agent, LATENCY_WEIGHTS,
                                        initial_rate=start, seed=seed)),
        ]

    def experiment():
        samples = {name: [] for name, _ in controllers(0)}
        for seed in range(3):
            for name, ctrl in controllers(seed):
                record = run_scheme(ctrl, network, duration=15.0, seed=seed + 1)
                rtt_ms = (record.mean_rtt or 0.0) * 1000.0
                samples[name].append((record.mean_throughput_mbps, rtt_ms))
        return {name: sigma_ellipse(np.array(pts)) for name, pts in samples.items()}

    ellipses = run_once(benchmark, experiment)
    rows = [[name, e.center[0], e.center[1], e.axes[0], e.axes[1]]
            for name, e in ellipses.items()]
    print_table("Fig 1b: 1-sigma ellipses (throughput Mbps vs RTT ms)",
                ["scheme", "thr_center", "rtt_center", "axis1", "axis2"], rows)

    # The MOCC range: the throughput-weighted variant delivers more
    # throughput, the latency-weighted variant lower delay.
    assert ellipses["MOCC-thr"].center[0] > ellipses["MOCC-lat"].center[0]
    assert ellipses["MOCC-lat"].center[1] < ellipses["MOCC-thr"].center[1]
    # Aurora variants sit at the extremes, as in the paper's figure.
    assert ellipses["Aurora-thr"].center[0] > ellipses["Aurora-lat"].center[0]


def bench_fig1c_retraining_cost(benchmark):
    """Fig. 1(c): training Aurora from scratch converges slowly."""
    spec = EnvSpec(ranges=TRAINING_RANGES, max_steps=64, seed=3)

    def experiment():
        _, trace, _ = train_single_objective(spec, (0.45, 0.45, 0.10), 40, seed=3)
        return trace

    trace = run_once(benchmark, experiment)
    smooth = np.convolve(trace, np.ones(5) / 5, mode="valid")
    print_table("Fig 1c: Aurora from-scratch training reward (every 5 iters)",
                ["iteration", "mean episode reward"],
                [[i * 5, float(smooth[min(i * 5, len(smooth) - 1)])]
                 for i in range(len(smooth) // 5 + 1)])
    # Training is still climbing well into the run: the late rewards
    # dominate the early ones (slow from-scratch convergence).
    assert smooth[-1] > smooth[0]
