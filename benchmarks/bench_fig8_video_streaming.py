"""Fig. 8: video streaming (MPC ABR over each transport).

The paper streams video over MOCC (w = <0.8, 0.1, 0.1>), CUBIC, BBR
and Vegas; MOCC's higher delivered throughput yields more top-quality
chunks (14 level-5 chunks vs 9/2/0).
"""

from conftest import print_table, run_once

from repro.apps.video import VideoSession
from repro.baselines import BBR, Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import THROUGHPUT_WEIGHTS
from repro.eval.runner import EvalNetwork, run_scheme
from repro.netsim.traces import RandomWalkTrace, mbps_to_pps

NETWORK = EvalNetwork(
    bandwidth_mbps=8.0, one_way_ms=25.0, buffer_bdp=2.0,
    trace=RandomWalkTrace(mbps_to_pps(3.0), mbps_to_pps(8.0),
                          interval=2.0, step=0.25, horizon=120.0, seed=5))


def bench_fig8_video(benchmark, mocc_agent):
    session = VideoSession()

    def experiment():
        start = NETWORK.bottleneck_pps / 3
        results = {}
        for name, ctrl in [
                ("MOCC", MoccController(mocc_agent, THROUGHPUT_WEIGHTS,
                                        initial_rate=start)),
                ("CUBIC", Cubic()),
                ("BBR", BBR(initial_rate=start)),
                ("Vegas", Vegas())]:
            record = run_scheme(ctrl, NETWORK, duration=90.0, seed=3)
            results[name] = session.stream(record, n_chunks=20)
        return results

    results = run_once(benchmark, experiment)
    rows = []
    for name, res in results.items():
        counts = res.quality_counts()
        rows.append([name, res.mean_throughput_mbps, res.mean_quality,
                     int(counts[5]), int(counts[4]), res.rebuffer_seconds])
    print_table("Fig 8: video streaming",
                ["scheme", "thr Mbps", "mean quality", "level-5", "level-4",
                 "rebuffer s"], rows)

    by = {r[0]: r for r in rows}
    # MOCC's throughput supports video quality on par with the kernel
    # heuristics (the paper's level-5 chunk ordering; our link leaves
    # every transport close to the ladder top, so parity is the claim).
    assert by["MOCC"][2] >= by["Vegas"][2] - 0.3
    assert by["MOCC"][1] > 0.5 * max(by["CUBIC"][1], by["BBR"][1])
    assert by["MOCC"][3] >= by["Vegas"][3] - 2
