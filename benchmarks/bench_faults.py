"""Fault-injection benchmark: scheme divergence + engine overhead.

The deterministic fault layer (``repro.netsim.faults``) exists to ask
"how do the schemes behave when the network misbehaves?" -- so this
benchmark runs the heuristic (cubic/bbr) and learning-based
(vivace/copa) line-ups across a fault grid (link flaps, Gilbert-
Elliott burst loss, and their mix on the shared hop) and asserts two
properties:

* **Divergence** -- every faulted cell's records differ from the
  clean cell's (same lineup, same seed): the schedules actually
  perturb the dynamics, they are not dead configuration.  This is a
  correctness assert and is never skipped.
* **Bounded overhead** -- the fault bookkeeping on the hot path
  (outage checks, capacity scaling, wire-loss draws) may not slow the
  engine beyond ``REPRO_FAULT_OVERHEAD_TOL`` (default: faulted runs
  keep >= 50% of the clean events/sec).  Perf gate only:
  ``REPRO_PERF_SMOKE_SKIP=1`` demotes a failure to a report line on
  known-noisy hosts.

Writes ``BENCH_faults.json`` (in ``BENCH_OUTPUT_DIR``, default the
working directory) with per-combo events/sec, utilization, and the
overhead ratios.  ``FAULT_BENCH_DURATION`` overrides the simulated
seconds per cell (default 6.0).
"""

import os
from pathlib import Path

from repro.eval.parallel import ParallelRunner
from repro.eval.perf import write_report
from repro.eval.resilience import records_digest
from repro.eval.scenarios import ScenarioSuite
from repro.netsim.faults import GilbertElliottLoss, LinkFlapSchedule
from repro.netsim.topology import parking_lot

FLAP = LinkFlapSchedule(period=0.8, down_time=0.05, start=0.3, jitter=0.02)
GE = GilbertElliottLoss(p_enter_bad=0.01, p_exit_bad=0.25, loss_bad=0.4)

LINEUPS = {
    "heuristic": ("cubic", "bbr"),
    "learned": ("vivace", "copa"),
}
FAULT_GRID = {
    "clean": None,
    "flap": {"hop0": (FLAP,)},
    "ge-loss": {"hop0": (GE,)},
    "flap+ge": {"hop0": (FLAP, GE)},
}
SEEDS = (0, 1)


def _suite(lineup_name: str, fault_name: str, duration: float) -> ScenarioSuite:
    return ScenarioSuite(
        name=f"bench-faults/{lineup_name}/{fault_name}",
        lineups={lineup_name: LINEUPS[lineup_name]},
        topologies=(parking_lot(2, bandwidth_mbps=6.0, delay_ms=8.0),),
        faults=(FAULT_GRID[fault_name],),
        duration=duration,
        seeds=SEEDS)


def fault_grid_report(duration: float) -> dict:
    """Run the lineup x fault grid serially; one combo entry each.

    Serial execution (``n_workers=1``, cache off) so per-cell wall
    times measure the engine, not pool scheduling -- the overhead
    ratio compares like with like.
    """
    runner = ParallelRunner(n_workers=1, use_cache=False)
    combos = {}
    for lineup_name in LINEUPS:
        for fault_name in FAULT_GRID:
            outcome = runner.run(_suite(lineup_name, fault_name, duration))
            events = sum(r.events for r in outcome)
            wall = sum(r.elapsed for r in outcome)
            combos[f"{lineup_name}/{fault_name}"] = {
                "lineup": lineup_name,
                "faults": fault_name,
                "cells": len(outcome),
                "events": events,
                "wall_s": round(wall, 4),
                "events_per_sec": round(events / wall, 1),
                "utilization": round(
                    outcome.table.mean("utilization"), 4),
                "loss_rate": round(outcome.table.mean("loss_rate"), 5),
                "digests": [records_digest(r.records) for r in outcome],
            }
    return {"duration": duration, "seeds": list(SEEDS), "combos": combos}


def bench_faults(benchmark):
    """Measure the fault grid, write BENCH_faults.json, gate overhead."""
    from conftest import print_table, run_once

    duration = float(os.environ.get("FAULT_BENCH_DURATION", "6.0"))
    tolerance = float(os.environ.get("REPRO_FAULT_OVERHEAD_TOL", "0.5"))

    report = run_once(benchmark, lambda: fault_grid_report(duration))
    combos = report["combos"]

    print_table(
        "Fault grid (per lineup x schedule; serial, cache off)",
        ["combo", "cells", "events", "events/s", "utilization", "loss"],
        [[name, c["cells"], c["events"], c["events_per_sec"],
          c["utilization"], c["loss_rate"]]
         for name, c in combos.items()])

    # Divergence: a fault schedule that never perturbs the dynamics is
    # dead configuration.  Correctness assert -- never skipped.
    for lineup_name in LINEUPS:
        clean = combos[f"{lineup_name}/clean"]["digests"]
        for fault_name in FAULT_GRID:
            if fault_name == "clean":
                continue
            faulted = combos[f"{lineup_name}/{fault_name}"]["digests"]
            assert faulted != clean, (
                f"{lineup_name}/{fault_name} produced bit-identical "
                f"records to the clean run: the schedule never fired")

    # Overhead: fault bookkeeping must not halve the engine (default
    # tolerance 0.5 = faulted keeps >= 50% of clean events/sec).
    failures = []
    overhead = {}
    for lineup_name in LINEUPS:
        clean_evps = combos[f"{lineup_name}/clean"]["events_per_sec"]
        for fault_name in FAULT_GRID:
            if fault_name == "clean":
                continue
            evps = combos[f"{lineup_name}/{fault_name}"]["events_per_sec"]
            ratio = evps / clean_evps
            overhead[f"{lineup_name}/{fault_name}"] = round(ratio, 3)
            if ratio < 1.0 - tolerance:
                failures.append(
                    f"{lineup_name}/{fault_name}: {evps} events/s is "
                    f"{ratio:.2f}x the clean {clean_evps} events/s "
                    f"(floor {1.0 - tolerance:.2f}x)")
    report["overhead_ratio_vs_clean"] = overhead
    report["overhead_check"] = {
        "tolerance": tolerance, "failures": failures,
        "skipped": os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1"}
    print("overhead (faulted events/s / clean events/s):",
          ", ".join(f"{k}={v}" for k, v in overhead.items()))

    out = Path(os.environ.get("BENCH_OUTPUT_DIR", ".")) / "BENCH_faults.json"
    write_report(report, out)
    print(f"\nwrote {out}")

    if failures:
        if os.environ.get("REPRO_PERF_SMOKE_SKIP") == "1":
            print("FAULT OVERHEAD (gate skipped via REPRO_PERF_SMOKE_SKIP):")
            for f in failures:
                print(" ", f)
        else:
            raise AssertionError(
                "fault-injection overhead gate failed (set "
                "REPRO_PERF_SMOKE_SKIP=1 on known-noisy hosts):\n  "
                + "\n  ".join(failures))
