"""Fig. 10: bulk data transfer (flow completion time).

The paper transfers a 100 MB file 50 times over a switch path with
0.5 % random loss; MOCC (greedy w ~ <1, 0, 0>) has the lowest mean FCT
and the smallest standard deviation; Vegas is worst.

Scaled: 2 MB x 6 transfers (the FCT *ordering* is the claim).
"""

from conftest import print_table, run_once

from repro.apps.bulk import run_bulk_transfers
from repro.baselines import BBR, Cubic, Vegas
from repro.core.agent import MoccController
from repro.core.weights import project_to_simplex
from repro.eval.runner import EvalNetwork

NETWORK = EvalNetwork(bandwidth_mbps=20.0, one_way_ms=5.0, buffer_bdp=2.0,
                      loss_rate=0.005)
GREEDY = project_to_simplex([1.0, 0.0, 0.0])


def bench_fig10_bulk(benchmark, mocc_agent):
    start = NETWORK.bottleneck_pps / 3

    def experiment():
        factories = {
            "MOCC": lambda: MoccController(mocc_agent, GREEDY,
                                           initial_rate=start * 1.5),
            "CUBIC": Cubic,
            "BBR": lambda: BBR(initial_rate=start),
            "Vegas": Vegas,
        }
        return {name: run_bulk_transfers(factory, NETWORK, file_mbytes=2.0,
                                         repeats=6, seed=8)
                for name, factory in factories.items()}

    results = run_once(benchmark, experiment)
    rows = [[name, r.mean_fct, r.std_fct] for name, r in results.items()]
    print_table("Fig 10: bulk transfer FCT (2 MB, 0.5% loss)",
                ["scheme", "mean FCT s", "std s"], rows)

    # The paper's margins are small (1.5-7.6 %); the robust claims are
    # (a) MOCC's FCT is the *most stable* across repeats (paper: std
    # 0.096 vs 0.123-0.421) and (b) its mean stays competitive.
    best = min(r.mean_fct for r in results.values())
    assert results["MOCC"].std_fct <= min(results["CUBIC"].std_fct,
                                          results["Vegas"].std_fct) + 1e-6
    assert results["MOCC"].mean_fct <= 1.8 * best
