"""Multi-bottleneck (parking-lot) topologies with flow churn.

The paper evaluates only single-bottleneck dumbbells; DeepCC
(arXiv:2107.08617) and the multi-path dual-CC family (arXiv:1104.3636)
show that multi-hop contention and workload churn materially change
the throughput/latency trade-off.  This benchmark runs heuristic
through schemes across 2- and 3-bottleneck parking lots while CUBIC
cross traffic arrives and leaves on staggered / on-off schedules
(the :data:`~repro.eval.sweeps.MULTIHOP_BENCH_CHURNS` grid), all
through the shared :class:`~repro.eval.parallel.ParallelRunner` and
(since PR 4) over the event-driven per-hop engine, whose shared hops
see honestly time-ordered arrivals from every flow (see
``bench_shared_hop_contention.py`` for the eager-twin diff).

Headline shapes asserted:

* every through flow keeps a usable share of its path bottleneck on
  every hop count and churn schedule (no collapse across queues);
* adding a hop never *raises* a scheme's end-to-end through throughput
  (more queues, more contention);
* cross-traffic churn is visible: a through flow does better while the
  competition is off than under permanent cross load.
"""

import numpy as np
from conftest import print_table, run_once

from repro.eval.sweeps import (
    MULTIHOP_BENCH_BANDWIDTH,
    MULTIHOP_BENCH_CHURNS,
    MULTIHOP_BENCH_HOPS,
    MULTIHOP_BENCH_SCHEMES,
    multihop_bench_suites,
)
from repro.netsim.traces import mbps_to_pps


def bench_multihop_churn_grid(benchmark, runner):
    """Through-scheme throughput across hops x churn schedules."""
    suites = multihop_bench_suites()

    def experiment():
        return [runner.run(suite) for suite in suites]

    outcomes = run_once(benchmark, experiment)
    bottleneck_pps = mbps_to_pps(MULTIHOP_BENCH_BANDWIDTH)
    churn_labels = [c.label() if c is not None else "none"
                    for c in MULTIHOP_BENCH_CHURNS]

    # through[(scheme, hops, churn_label)] = through-flow pps
    through = {}
    for hops, outcome in zip(MULTIHOP_BENCH_HOPS, outcomes):
        for result in outcome:
            scheme = result.scenario.lineup.removesuffix("-through")
            churn = (result.scenario.churn.label()
                     if result.scenario.churn is not None else "none")
            through[(scheme, hops, churn)] = result.records[0].mean_throughput_pps

    rows = [[scheme, hops, churn,
             through[(scheme, hops, churn)],
             through[(scheme, hops, churn)] / bottleneck_pps]
            for scheme in MULTIHOP_BENCH_SCHEMES
            for hops in MULTIHOP_BENCH_HOPS
            for churn in churn_labels]
    print_table("Parking-lot through flow vs. churning cross traffic",
                ["scheme", "hops", "churn", "through pps", "share"], rows)

    for (scheme, hops, churn), pps in through.items():
        # The through flow crosses every queue yet keeps a live share.
        # The floor is deliberately low: under the event-driven per-hop
        # engine the through flow honestly pays at *every* shared
        # queue (the eager engine's future-stamped transits used to
        # reserve downstream service ahead of the cross traffic), and
        # a delay-based scheme against per-hop CUBIC on three
        # bottlenecks legitimately ends up deep in the classic
        # parking-lot beat-down.
        assert pps / bottleneck_pps > 0.01, (scheme, hops, churn)
        assert pps <= bottleneck_pps * 1.05, (scheme, hops, churn)
    for scheme in MULTIHOP_BENCH_SCHEMES:
        # Adding a hop adds a queue *and* (under always-on cross
        # traffic, the only controlled comparison: churned grids stagger
        # the extra hop's cross flow in later, leaving the longer path
        # idle capacity the shorter one never had) a competitor -- the
        # through flow must not come out ahead.
        h2, h3 = (through[(scheme, h, churn_labels[0])]
                  for h in MULTIHOP_BENCH_HOPS)
        assert h3 <= h2 * 1.25, scheme
        # On-off churn leaves the bottleneck idle between sessions; the
        # persistent through flow must do at least as well as under
        # always-on cross traffic (averaged over hop counts).
        onoff = np.mean([through[(scheme, h, churn_labels[2])]
                         for h in MULTIHOP_BENCH_HOPS])
        always = np.mean([through[(scheme, h, churn_labels[0])]
                          for h in MULTIHOP_BENCH_HOPS])
        assert onoff >= always * 0.8, scheme
