"""Tests for repro.rl.optim (Adam, SGD, gradient clipping)."""

import numpy as np
import pytest

from repro.rl.nn import Parameter
from repro.rl.optim import Adam, SGD, clip_grad_norm


def _quadratic_params(start):
    return {"x": Parameter(np.array(start, dtype=np.float64))}


def _set_quadratic_grad(params, target):
    # f(x) = 0.5*||x - target||^2  =>  grad = x - target
    params["x"].grad[...] = params["x"].value - target


class TestSGD:
    def test_converges_on_quadratic(self):
        params = _quadratic_params([5.0, -3.0])
        target = np.array([1.0, 2.0])
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            _set_quadratic_grad(params, target)
            opt.step()
        np.testing.assert_allclose(params["x"].value, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([1.0])
        plain = _quadratic_params([10.0])
        heavy = _quadratic_params([10.0])
        opt_p = SGD(plain, lr=0.01)
        opt_m = SGD(heavy, lr=0.01, momentum=0.9)
        for _ in range(50):
            _set_quadratic_grad(plain, target)
            opt_p.step()
            _set_quadratic_grad(heavy, target)
            opt_m.step()
        assert abs(heavy["x"].value[0] - 1.0) < abs(plain["x"].value[0] - 1.0)

    def test_zero_grad(self):
        params = _quadratic_params([1.0])
        params["x"].grad[...] = 3.0
        SGD(params, lr=0.1).zero_grad()
        assert params["x"].grad[0] == 0.0


class TestAdam:
    def test_converges_on_quadratic(self):
        params = _quadratic_params([5.0, -3.0])
        target = np.array([1.0, 2.0])
        opt = Adam(params, lr=0.1)
        for _ in range(300):
            _set_quadratic_grad(params, target)
            opt.step()
        np.testing.assert_allclose(params["x"].value, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first step ~lr in size."""
        params = _quadratic_params([10.0])
        opt = Adam(params, lr=0.05)
        params["x"].grad[...] = 4.2  # any positive gradient
        opt.step()
        assert params["x"].value[0] == pytest.approx(10.0 - 0.05, abs=1e-6)

    def test_scale_invariance_direction(self):
        """Adam normalises per-coordinate scale: both coords move ~equally."""
        params = {"x": Parameter(np.array([0.0, 0.0]))}
        opt = Adam(params, lr=0.01)
        for _ in range(10):
            params["x"].grad[...] = np.array([1.0, 1000.0])
            opt.step()
        moved = -params["x"].value
        assert moved[0] == pytest.approx(moved[1], rel=0.05)

    def test_reset_state(self):
        params = _quadratic_params([1.0])
        opt = Adam(params, lr=0.1)
        params["x"].grad[...] = 1.0
        opt.step()
        opt.reset_state()
        assert opt._t == 0
        assert np.all(opt._m["x"] == 0.0)
        assert np.all(opt._v["x"] == 0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        params = _quadratic_params([0.0])
        params["x"].grad[...] = 0.3
        norm = clip_grad_norm(params, max_norm=1.0)
        assert norm == pytest.approx(0.3)
        assert params["x"].grad[0] == pytest.approx(0.3)

    def test_clips_above_threshold(self):
        params = {"a": Parameter(np.zeros(2)), "b": Parameter(np.zeros(2))}
        params["a"].grad[...] = [3.0, 0.0]
        params["b"].grad[...] = [0.0, 4.0]
        norm = clip_grad_norm(params, max_norm=1.0)  # global norm = 5
        assert norm == pytest.approx(5.0)
        total = np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params.values()))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_zero_max_norm_disables(self):
        params = _quadratic_params([0.0])
        params["x"].grad[...] = 100.0
        clip_grad_norm(params, max_norm=0.0)
        assert params["x"].grad[0] == pytest.approx(100.0)

    def test_preserves_direction(self):
        params = {"a": Parameter(np.zeros(3))}
        params["a"].grad[...] = [3.0, -4.0, 0.0]
        clip_grad_norm(params, max_norm=1.0)
        np.testing.assert_allclose(params["a"].grad, [0.6, -0.8, 0.0])
