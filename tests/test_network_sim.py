"""Integration tests for the discrete-event simulation engine."""

import numpy as np
import pytest

from repro.netsim.link import Link
from repro.netsim.network import FlowSpec, Simulation
from repro.netsim.sender import Controller, ExternalRateController
from repro.netsim.traces import ConstantTrace


def single_link(pps=100.0, delay=0.02, queue=50, loss=0.0, seed=0):
    return Link(ConstantTrace(pps), delay=delay, queue_size=queue,
                loss_rate=loss, rng=np.random.default_rng(seed))


class FixedWindow(Controller):
    kind = "window"
    name = "fixed-window"

    def __init__(self, cwnd):
        self._cwnd = cwnd

    def cwnd(self, now):
        return self._cwnd


class TestRateFlow:
    def test_conservation(self):
        """Every sent packet is eventually acked, lost, or in flight."""
        sim = Simulation(single_link(), [FlowSpec(ExternalRateController(80.0))],
                         duration=10.0, seed=1)
        sim.run_all()
        flow = sim.flows[0]
        assert flow.total_sent > 0
        assert flow.total_acked + flow.total_lost + flow.inflight == flow.total_sent

    def test_throughput_capped_by_link(self):
        sim = Simulation(single_link(pps=100.0),
                         [FlowSpec(ExternalRateController(500.0))],
                         duration=10.0, seed=2)
        record = sim.run_all()[0]
        assert record.mean_throughput_pps <= 100.0 * 1.05

    def test_under_capacity_no_loss_no_queue(self):
        sim = Simulation(single_link(pps=100.0),
                         [FlowSpec(ExternalRateController(50.0))],
                         duration=10.0, seed=3)
        record = sim.run_all()[0]
        assert record.loss_rate == 0.0
        assert record.mean_rtt == pytest.approx(0.04 + 0.01, abs=0.002)
        assert record.mean_throughput_pps == pytest.approx(50.0, rel=0.05)

    def test_overdrive_builds_queue_and_drops(self):
        sim = Simulation(single_link(pps=100.0, queue=20),
                         [FlowSpec(ExternalRateController(200.0))],
                         duration=10.0, seed=4)
        record = sim.run_all()[0]
        assert record.loss_rate > 0.3
        assert record.latency_ratio > 2.0

    def test_mi_records_cover_duration(self):
        sim = Simulation(single_link(), [FlowSpec(ExternalRateController(80.0),
                                                  mi_duration=0.1)],
                         duration=5.0, seed=5)
        record = sim.run_all()[0]
        assert len(record.records) == pytest.approx(50, abs=2)
        starts = [r.start for r in record.records]
        assert starts == sorted(starts)

    def test_random_loss_reflected(self):
        sim = Simulation(single_link(loss=0.1, queue=10**6),
                         [FlowSpec(ExternalRateController(80.0))],
                         duration=30.0, seed=6)
        record = sim.run_all()[0]
        assert record.loss_rate == pytest.approx(0.1, abs=0.03)


class TestWindowFlow:
    def test_inflight_respects_cwnd(self):
        ctrl = FixedWindow(cwnd=5)
        sim = Simulation(single_link(pps=100.0, queue=100), [FlowSpec(ctrl)],
                         duration=5.0, seed=7)
        # Run incrementally, checking the invariant as the sim advances.
        for t in np.arange(0.5, 5.0, 0.5):
            sim.run(until=float(t))
            assert sim.flows[0].inflight <= 5
        sim.run_all()

    def test_window_flow_delivers(self):
        ctrl = FixedWindow(cwnd=8)
        sim = Simulation(single_link(pps=100.0, delay=0.02), [FlowSpec(ctrl)],
                         duration=10.0, seed=8)
        record = sim.run_all()[0]
        # cwnd/RTT = 8/0.05 = 160 > capacity; link-limited at ~100.
        assert record.mean_throughput_pps == pytest.approx(100.0, rel=0.1)

    def test_small_window_self_clocked(self):
        ctrl = FixedWindow(cwnd=2)
        sim = Simulation(single_link(pps=1000.0, delay=0.05), [FlowSpec(ctrl)],
                         duration=10.0, seed=9)
        record = sim.run_all()[0]
        # Throughput ~ cwnd / base RTT.
        assert record.mean_throughput_pps == pytest.approx(2 / 0.1, rel=0.15)


class TestMultiFlow:
    def test_fair_share_identical_rate_flows(self):
        """Two identical paced flows split a bottleneck roughly evenly."""
        c1, c2 = ExternalRateController(100.0), ExternalRateController(100.0)
        sim = Simulation(single_link(pps=100.0, queue=30),
                         [FlowSpec(c1), FlowSpec(c2)], duration=40.0, seed=10)
        r1, r2 = sim.run_all()
        total = r1.mean_throughput_pps + r2.mean_throughput_pps
        assert total == pytest.approx(100.0, rel=0.1)
        # FIFO drop-tail with pacing jitter: roughly (not exactly) even.
        ratio = r1.mean_throughput_pps / r2.mean_throughput_pps
        assert 0.6 < ratio < 1.7

    def test_staggered_start_stop(self):
        c1, c2 = ExternalRateController(80.0), ExternalRateController(80.0)
        sim = Simulation(single_link(),
                         [FlowSpec(c1), FlowSpec(c2, start_time=5.0, stop_time=8.0)],
                         duration=10.0, seed=11)
        r1, r2 = sim.run_all()
        assert r2.records[0].start >= 5.0
        # MIs close on schedule until the stop; the final MI extends to
        # the last straggling ack (queue drain), never past the run.
        assert all(s.end <= 8.0 + 0.5 for s in r2.records[:-1])
        assert r2.records[-1].end <= 10.0
        assert r1.records[-1].end > 9.0

    def test_flow_ids_distinct(self):
        sim = Simulation(single_link(), [FlowSpec(ExternalRateController(10.0)),
                                         FlowSpec(ExternalRateController(10.0))],
                         duration=2.0, seed=12)
        records = sim.run_all()
        assert [r.flow_id for r in records] == [0, 1]


class TestEngineMechanics:
    def test_incremental_run_matches_full_run(self):
        def build():
            return Simulation(single_link(seed=13),
                              [FlowSpec(ExternalRateController(90.0))],
                              duration=5.0, seed=13)

        full = build()
        full.run_all()
        stepped = build()
        for t in np.arange(0.25, 5.01, 0.25):
            stepped.run(until=float(t))
        stepped._finalize()
        assert stepped.flows[0].total_acked == full.flows[0].total_acked
        assert stepped.flows[0].total_sent == full.flows[0].total_sent

    def test_same_seed_deterministic(self):
        def run_once():
            sim = Simulation(single_link(loss=0.05, seed=14),
                             [FlowSpec(ExternalRateController(90.0))],
                             duration=5.0, seed=14)
            record = sim.run_all()[0]
            return (record.mean_throughput_pps, record.loss_rate)

        assert run_once() == run_once()

    def test_rate_clamped_to_min(self):
        """A near-zero rate must not stall or divide by zero."""
        sim = Simulation(single_link(), [FlowSpec(ExternalRateController(1e-9))],
                         duration=3.0, seed=15)
        record = sim.run_all()[0]
        assert record is not None  # completed without error

    def test_needs_a_link(self):
        with pytest.raises(ValueError):
            Simulation([], [FlowSpec(ExternalRateController(1.0))], duration=1.0)

    def test_multi_link_path_base_rtt(self):
        links = [single_link(delay=0.01, seed=16), single_link(delay=0.02, seed=17)]
        sim = Simulation(links, [FlowSpec(ExternalRateController(50.0))],
                         duration=2.0, seed=16)
        assert sim.base_rtt == pytest.approx(0.06)
        record = sim.run_all()[0]
        assert record.mean_rtt >= 0.06

    def test_inflight_cap_respected(self):
        class CappedRate(ExternalRateController):
            def inflight_cap(self, now):
                return 3.0

        sim = Simulation(single_link(pps=100.0, delay=0.1, queue=1000),
                         [FlowSpec(CappedRate(1000.0))], duration=5.0, seed=18)
        for t in np.arange(0.2, 5.0, 0.2):
            sim.run(until=float(t))
            assert sim.flows[0].inflight <= 3
