"""Tests for the training pipeline: collectors, offline/online, DQN, zoo."""

import numpy as np
import pytest

from repro.config import DEFAULT_TRAINING, NetworkParams
from repro.core.agent import MoccAgent
from repro.core.offline import OfflineTrainer, train_individual, train_single_objective
from repro.core.online import OnlineAdapter
from repro.models.zoo import BUDGETS, ModelZoo, TrainingBudget
from repro.rl.dqn import DQNTrainer, QNetwork, ReplayBuffer, action_bins
from repro.rl.parallel import EnvSpec, ProcessCollector, SerialCollector, VectorCollector

SPEC = EnvSpec(params=NetworkParams(3.0, 20.0, 200, 0.0), max_steps=16, seed=2)
TINY = DEFAULT_TRAINING.replace(steps_per_iteration=48)


class TestCollectors:
    def _model(self):
        return MoccAgent(TINY).model

    def test_serial_collect_shapes(self):
        collector = SerialCollector(SPEC)
        buffers, boots, reward = collector.collect(
            self._model(), [0.5, 0.3, 0.2], 32, np.random.default_rng(0))
        assert len(buffers) == 1
        assert buffers[0].size == 32
        assert len(boots) == 1

    def test_vector_collect_splits_steps(self):
        collector = VectorCollector(SPEC, n_envs=2)
        buffers, boots, reward = collector.collect(
            self._model(), [0.5, 0.3, 0.2], 32, np.random.default_rng(0))
        assert len(buffers) == 2
        assert all(b.size == 16 for b in buffers)

    def test_process_collect_roundtrip(self):
        collector = ProcessCollector(SPEC, n_workers=2)
        try:
            buffers, boots, reward = collector.collect(
                self._model(), [0.5, 0.3, 0.2], 32, np.random.default_rng(0))
            assert len(buffers) == 2
            assert all(b.size == 16 for b in buffers)
            assert np.isfinite(reward)
        finally:
            collector.close()

    def test_env_spec_picklable(self):
        import pickle
        assert pickle.loads(pickle.dumps(SPEC)) == SPEC


class TestOfflineTrainer:
    def test_objective_log_records(self):
        trainer = OfflineTrainer(spec=SPEC, config=TINY, seed=1)
        trainer.train_objective([0.6, 0.3, 0.1], iterations=2)
        assert len(trainer.log) == 2
        assert trainer.log[0].objective == (0.6, 0.3, 0.1)

    def test_joint_training_logs_all_objectives(self):
        trainer = OfflineTrainer(spec=SPEC, config=TINY, seed=1)
        trainer.train_objectives_jointly([[0.6, 0.3, 0.1], [0.1, 0.6, 0.3]], 2)
        assert len(trainer.log) == 4  # 2 objectives x 2 iterations

    def test_two_phase_structure(self):
        trainer = OfflineTrainer(spec=SPEC, config=TINY, seed=1)
        result = trainer.train(omega=6, bootstrap_iters=1, traverse_iters=1, cycles=1)
        phases = {entry.phase for entry in result.log}
        assert phases == {"bootstrap", "traverse"}
        assert len(result.landmarks) == 6
        assert sorted(result.traversal) == list(range(6))
        assert result.wall_time > 0

    def test_parameters_change(self):
        trainer = OfflineTrainer(spec=SPEC, config=TINY, seed=1)
        before = trainer.agent.model.state_dict()
        trainer.train_objective([0.6, 0.3, 0.1], iterations=1)
        after = trainer.agent.model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_train_single_objective_trace(self):
        agent, trace, marks = train_single_objective(
            SPEC, (0.8, 0.1, 0.1), 3, config=TINY, seed=4, eval_every=2)
        assert agent.weight_dim == 0
        assert len(trace) == 3
        assert len(marks) == 2  # iterations 0 and 2

    def test_train_individual_separate_models(self):
        models = train_individual(SPEC, [(0.8, 0.1, 0.1), (0.1, 0.8, 0.1)],
                                  iterations=1, config=TINY, seed=5)
        assert len(models) == 2
        a, b = models.values()
        assert a is not b


class TestOnlineAdapter:
    def test_rejects_single_objective_agent(self):
        with pytest.raises(ValueError):
            OnlineAdapter(MoccAgent(TINY, weight_dim=0), SPEC, config=TINY)

    def test_adapt_produces_trace(self):
        agent = MoccAgent(TINY)
        adapter = OnlineAdapter(agent, SPEC, config=TINY, seed=6)
        adapter.seed_replay([[0.6, 0.3, 0.1]])
        trace = adapter.adapt([0.45, 0.45, 0.10], iterations=2, eval_every=1,
                              old_weights=[0.6, 0.3, 0.1])
        assert len(trace.rewards) == 2
        assert len(trace.new_marks) >= 1
        assert len(trace.old_marks) >= 1
        # The new objective joins the replay pool afterwards.
        assert len(adapter.replay) == 2

    def test_adapt_without_replay(self):
        agent = MoccAgent(TINY)
        adapter = OnlineAdapter(agent, SPEC, config=TINY, seed=7)
        trace = adapter.adapt([0.45, 0.45, 0.10], iterations=1, eval_every=0,
                              use_replay=False)
        assert len(trace.rewards) == 1


class TestDQN:
    def test_action_bins_symmetric(self):
        bins = action_bins(9, 2.0)
        assert len(bins) == 9
        assert bins[0] == -2.0 and bins[-1] == 2.0
        np.testing.assert_allclose(bins, -bins[::-1])

    def test_qnetwork_forward_shape(self):
        q = QNetwork(obs_dim=8, weight_dim=3, n_actions=5)
        out = q.forward(np.zeros((4, 8)), np.full((4, 3), 1 / 3))
        assert out.shape == (4, 5)

    def test_qnetwork_clone(self):
        q = QNetwork(obs_dim=8, weight_dim=3, n_actions=5)
        twin = q.clone()
        obs = np.ones((1, 8))
        w = np.full((1, 3), 1 / 3)
        np.testing.assert_allclose(q.forward(obs, w), twin.forward(obs, w))

    def test_replay_buffer_wraps(self):
        buf = ReplayBuffer(obs_dim=4, weight_dim=3, capacity=8)
        for i in range(12):
            buf.add(np.full(4, i), 0, 0.0, np.zeros(4), False, weights=np.full(3, 1 / 3))
        assert buf.size == 8

    def test_epsilon_decays(self):
        trainer = DQNTrainer(obs_dim=8, weight_dim=3, seed=1)
        e0 = trainer.epsilon()
        trainer.env_steps = 10_000
        assert trainer.epsilon() < e0

    def test_training_step_runs(self):
        trainer = DQNTrainer(obs_dim=StatDim.OBS, weight_dim=3, seed=1)
        env = SPEC.build()
        reward = trainer.train_objective(env, [0.5, 0.3, 0.2], steps=48)
        assert np.isfinite(reward)
        assert trainer.env_steps == 48


class StatDim:
    OBS = 40  # 4 features x history 10


class TestZoo:
    def test_cache_roundtrip(self, tmp_path):
        BUDGETS["tiny"] = TrainingBudget(
            bootstrap_iters=1, traverse_iters=1, cycles=1,
            single_objective_iters=1, steps_per_iteration=32, episode_steps=8)
        try:
            zoo = ModelZoo(cache_dir=tmp_path)
            a1 = zoo.aurora_for([0.5, 0.3, 0.2], tag="t", quality="tiny")
            files = list(tmp_path.glob("*.npz"))
            assert len(files) == 1
            # Second zoo instance loads from disk, same parameters.
            zoo2 = ModelZoo(cache_dir=tmp_path)
            a2 = zoo2.aurora_for([0.5, 0.3, 0.2], tag="t", quality="tiny")
            np.testing.assert_allclose(a1.model.log_std.value, a2.model.log_std.value)
        finally:
            BUDGETS.pop("tiny")

    def test_memory_cache(self, tmp_path):
        BUDGETS["tiny"] = TrainingBudget(1, 1, 1, 1, 32, 8)
        try:
            zoo = ModelZoo(cache_dir=tmp_path)
            a1 = zoo.aurora_for([0.5, 0.3, 0.2], tag="t", quality="tiny")
            a2 = zoo.aurora_for([0.5, 0.3, 0.2], tag="t", quality="tiny")
            assert a1 is a2
            zoo.clear()
            a3 = zoo.aurora_for([0.5, 0.3, 0.2], tag="t", quality="tiny")
            assert a3 is not a1
        finally:
            BUDGETS.pop("tiny")
