"""replint self-tests: the repo is clean, and every rule fires.

Three layers:

* the tier-1 gate -- the full default rule set over the installed
  ``repro`` package yields **zero** findings with the shipped (empty)
  baseline;
* fixture-backed rule tests -- each rule family fires on its minimal
  known-bad example under ``tests/fixtures/replint/`` (parsed, never
  imported);
* mechanism tests -- suppressions, the baseline, ``--changed-only``
  anchors, and the CLI's exit codes / JSON shape.
"""

import ast
import importlib.util
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.analysis import (Analyzer, Baseline, Finding, ProjectIndex,
                            all_rules, rules_by_id)
from repro.analysis.core import default_root, parse_suppressions
from repro.analysis.rules_batch import (
    BatchIsolationRule,
    BatchRngRule,
    BatchSharedMutableRule,
    check_batch_source,
    check_cell_isolation,
)
from repro.analysis.rules_dataflow import (ENV_ALLOWLIST, EnvTaintRule,
                                           RngStreamOwnershipRule,
                                           SignaturePurityRule)
from repro.analysis.rules_compiled import (
    CompiledDigestRule,
    check_handler_table,
    check_pool_fields,
)
from repro.analysis.rules_engine import check_engine_source
from repro.analysis.rules_fingerprint import (
    CoverageSpec,
    check_coverage,
    consumed_attrs,
    default_specs,
)
from repro.analysis.rules_resilience import (
    FaultSignatureCoverageRule,
    FaultStreamDeclarationRule,
    ResilienceRetryRule,
)
from repro.eval import scenarios

FIXTURES = Path(__file__).parent / "fixtures" / "replint"
REPO = Path(__file__).parent.parent
SRC_ROOT = REPO / "src" / "repro"


def run_rule(rule_id: str, fixture: str):
    """Run one AST rule directly on a fixture file (bypasses scoping)."""
    source = (FIXTURES / fixture).read_text()
    rule = rules_by_id()[rule_id]
    return rule.check(ast.parse(source), source, fixture)


class TestRepoClean:
    """The tier-1 gate: zero findings on the repo, empty baseline."""

    def test_default_analysis_is_clean(self):
        findings = Analyzer().analyze()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO / ".replint-baseline.json")
        assert len(baseline) == 0

    def test_real_engine_passes_event_table_check(self):
        source = (SRC_ROOT / "netsim" / "network.py").read_text()
        assert check_engine_source(source, "netsim/network.py") == []

    def test_default_fingerprint_specs_are_clean(self):
        for spec in default_specs():
            assert check_coverage(spec) == [], spec.cls.__name__


class TestDeterminismRules:
    def test_unseeded_rng_fires(self):
        findings = run_rule("unseeded-rng", "bad_unseeded_rng.py")
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_wall_clock_fires(self):
        findings = run_rule("wall-clock", "bad_wall_clock.py")
        assert [f.line for f in findings] == [7, 8]  # perf_counter not flagged

    def test_global_random_fires(self):
        findings = run_rule("global-random", "bad_global_random.py")
        assert len(findings) == 3
        names = " ".join(f.message for f in findings)
        assert "random.seed" in names and "np.random.rand" in names

    def test_unsorted_walk_fires_and_sorted_is_ok(self):
        findings = run_rule("unsorted-walk", "bad_unsorted_walk.py")
        assert len(findings) == 2
        assert all(f.line != 10 for f in findings)  # the sorted() walk

    def test_set_iteration_fires_and_sorted_is_ok(self):
        findings = run_rule("set-iteration", "bad_set_iteration.py")
        assert [f.line for f in findings] == [6, 8]

    def test_set_names_do_not_leak_across_scopes(self):
        source = (
            "def a():\n"
            "    items = {1, 2}\n"
            "    return sorted(items)\n"
            "def b(items):\n"
            "    for x in items:\n"  # a list here; must not be flagged
            "        print(x)\n"
        )
        rule = rules_by_id()["set-iteration"]
        assert rule.check(ast.parse(source), source, "x.py") == []


class TestEngineRules:
    def test_event_table_fixture_yields_all_three_defects(self):
        source = (FIXTURES / "bad_engine_table.py").read_text()
        findings = check_engine_source(source, "bad_engine_table.py")
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "range(2)" in messages
        assert "2 handlers" in messages
        assert "EV_C" in messages

    def test_heap_push_fires(self):
        findings = run_rule("heap-push-arity", "bad_heap_push.py")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "literal 0" in messages and "2-tuple" in messages

    def test_slots_fires_on_undeclared_self_and_packet_attrs(self):
        findings = run_rule("slots-attrs", "bad_slots.py")
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "Token.count" in messages
        assert "packet.retries" in messages  # packet.hop is a real slot

    def test_transmit_unpack_fires(self):
        findings = run_rule("transmit-unpack", "bad_transmit_unpack.py")
        assert [f.line for f in findings] == [5]
        assert "4-tuple" in findings[0].message


class TestRngRule:
    def test_adhoc_rng_fires_in_hot_path_not_init(self):
        findings = run_rule("adhoc-rng", "bad_adhoc_rng.py")
        assert len(findings) == 1
        assert "Controller.on_ack" in findings[0].message


class TestFingerprintCoverage:
    def test_fixture_dataclass_uncovered_field_is_flagged(self):
        spec_obj = importlib.util.spec_from_file_location(
            "replint_bad_fingerprint", FIXTURES / "bad_fingerprint.py")
        module = importlib.util.module_from_spec(spec_obj)
        spec_obj.loader.exec_module(module)
        spec = CoverageSpec(cls=module.BadSpec,
                            consumer=module.BadSpec.signature,
                            relpath="bad_fingerprint.py")
        findings = check_coverage(spec)
        assert len(findings) == 1
        assert "BadSpec.gamma" in findings[0].message

    def test_scenario_subclass_with_new_behavioural_field_is_flagged(self):
        """The drift regression the rule exists for: a new Scenario
        field that fingerprint() does not consume must be caught."""
        @dataclass(frozen=True)
        class AqmScenario(scenarios.Scenario):
            aqm: str = "fifo"  # behavioural, but unknown to fingerprint()

        spec = CoverageSpec(cls=AqmScenario,
                            consumer=scenarios.Scenario.fingerprint,
                            relpath="eval/scenarios.py",
                            exclusions=(("name", "label"), ("suite", "label"),
                                        ("lineup", "label"),
                                        ("churn", "rewritten onto flows")))
        findings = check_coverage(spec)
        assert len(findings) == 1
        assert "aqm" in findings[0].message

    def test_stale_exclusion_entry_is_flagged(self):
        spec = CoverageSpec(cls=scenarios.FlowDef,
                            consumer=scenarios.FlowDef.signature,
                            relpath="eval/scenarios.py",
                            exclusions=(("label", "display"),
                                        ("ghost_field", "does not exist")))
        findings = check_coverage(spec)
        assert len(findings) == 1
        assert "ghost_field" in findings[0].message

    def test_consumed_attrs_sees_any_receiver(self):
        attrs = consumed_attrs(scenarios._topology_signature)
        assert {"links", "paths", "default_path", "bandwidth_mbps",
                "ack_bytes"} <= attrs


class TestProjectIndex:
    """The whole-program layer resolves the chains the dataflow rules
    depend on -- checked against the live package."""

    @pytest.fixture(scope="class")
    def index(self):
        return ProjectIndex(SRC_ROOT)

    def test_function_level_import_resolves(self, index):
        # AgentRef.resolve imports default_zoo *inside* the method; the
        # env-taint chain for REPRO_MODEL_CACHE depends on this edge.
        callers = index.transitive_callers("models.zoo:_default_cache_dir")
        assert "eval.scenarios:AgentRef.resolve" in callers
        assert "models.zoo:ModelZoo.__init__" in callers

    def test_class_constructor_edge(self, index):
        # default_zoo() calls ModelZoo(...) -> __init__
        assert "models.zoo:ModelZoo.__init__" in \
            index.callees["models.zoo:default_zoo"]

    def test_self_method_edge(self, index):
        callees = index.callees["eval.scenarios:Scenario.fingerprint"]
        assert "eval.scenarios:_code_digest" in callees

    def test_cross_module_function_edge(self, index):
        # fingerprint() -> make_trace() lives two packages away
        assert "netsim.traces:make_trace" in \
            index.callees["eval.scenarios:Scenario.fingerprint"]

    def test_enclosing_function_lookup(self, index):
        fn = index.functions["netsim.link:Link.transmit"]
        mid = (fn.node.lineno + fn.node.end_lineno) // 2
        found = index.enclosing_function("netsim/link.py", mid)
        assert found is not None
        assert found.qualname == "netsim.link:Link.transmit"


class TestDataflowRules:
    """Each new rule family fires on its known-bad fixture."""

    def test_foreign_draw_fires(self):
        findings = run_rule("rng-foreign-draw", "bad_foreign_draw.py")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "link.rng.random" in messages
        assert "self.link.rng.uniform" in messages

    def test_shared_drain_fires_and_single_owner_is_clean(self):
        findings = run_rule("rng-shared-drain", "bad_shared_drain.py")
        assert len(findings) == 2
        messages = " | ".join(sorted(f.message for f in findings))
        assert "passed to 2 consumers" in messages
        assert "also drawn from locally" in messages
        # fine_single_consumer (line 19) must not be flagged
        assert all(f.line < 19 for f in findings)

    def test_mutable_global_fires_and_shadow_is_clean(self):
        findings = run_rule("mutable-global-state", "bad_mutable_global.py")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "_CACHE" in messages and "_SEEN" in messages
        assert "local_shadow" not in messages

    def test_stream_ownership_fires_on_every_declaration_defect(self):
        findings = RngStreamOwnershipRule().check_project(
            FIXTURES / "proj_rng_bad")
        messages = " | ".join(f.message for f in findings)
        assert "np.random.default_rng(...) constructs an undeclared" \
            in messages
        assert "'z.undeclared'" in messages
        assert "non-literal stream name" in messages
        assert "both derive raw seeds" in messages            # a.raw/b.raw
        assert "can overlap in domain 'env'" in messages      # c.affine/d.raw
        assert "below 0x10000" in messages                    # e.salted salt
        assert "never minted" in messages                     # g.stale
        assert "remove the stale note" in messages            # g.stale's note

    def test_env_taint_follows_the_call_chain(self):
        findings = EnvTaintRule().check_project(FIXTURES / "proj_env_bad")
        messages = " | ".join(f.message for f in findings)
        # read in a sensitive module
        assert "'SIM_SPEED_HACK'" in messages
        # read in a neutral module reached from eval.scenarios
        assert "'PROJ_CACHE_DIR' (in models.store:cache_dir)" in messages
        # dynamic variable name
        assert "non-literal variable name" in messages
        # no path into simulation: must stay clean
        assert "REPORT_COLOR" not in messages

    def test_stale_env_allowlist_entries_are_findings(self):
        # The fixture tree reads none of the allowlisted variables, so
        # every entry must be reported stale -- the same mechanism that
        # keeps the real allowlist honest.
        findings = EnvTaintRule().check_project(FIXTURES / "proj_env_bad")
        stale = {f.message.split("'")[1] for f in findings
                 if "stale ENV_ALLOWLIST" in f.message}
        assert stale == set(ENV_ALLOWLIST)

    def test_signature_purity_fires_incl_one_level_callees(self):
        findings = SignaturePurityRule().check_project(
            FIXTURES / "proj_sig_bad")
        messages = " | ".join(f.message for f in findings)
        assert "stores into 'self'" in messages
        assert "reads the environment" in messages
        assert "stores into parameter 'registry'" in messages
        # the defect lives in the callee, attributed to the caller
        assert "_helper_digest() performs write I/O via print(), and " \
               "Spec.fingerprint() calls it" in messages


class TestIsolationRules:
    """The batched-execution cross-cell isolation family."""

    def test_shared_mutable_fires_and_reports_stale_entry(self):
        findings = BatchSharedMutableRule().check_project(
            FIXTURES / "proj_batch_bad")
        messages = " | ".join(f.message for f in findings)
        assert "'SHARED_REGISTRY' is created outside the per-cell loop" \
            in messages
        assert "stale SHARED_IMMUTABLE_ALLOWLIST entry 'ghost_cache'" \
            in messages

    def test_missing_allowlist_declaration_is_a_finding(self):
        source = ("def build(scenarios, cache):\n"
                  "    for s in scenarios:\n"
                  "        build_scenario_simulation(s, cache)\n")
        messages = " | ".join(f.message
                              for f in check_batch_source(source))
        assert "no module-level SHARED_IMMUTABLE_ALLOWLIST" in messages
        assert "'cache'" in messages  # the unlisted shared binding too

    def test_per_iteration_bindings_are_clean(self):
        source = ("SHARED_IMMUTABLE_ALLOWLIST = ()\n"
                  "def build(scenarios):\n"
                  "    for s in scenarios:\n"
                  "        cache = {}\n"  # fresh per cell: fine
                  "        sim = build_scenario_simulation(s, cache)\n")
        assert check_batch_source(source) == []

    def test_rng_rule_fires_on_mint_and_drain(self):
        source = (FIXTURES / "proj_batch_bad" / "eval" / "batch.py") \
            .read_text()
        findings = BatchRngRule().check(ast.parse(source), source,
                                        "eval/batch.py")
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "mints an RNG stream in the batch layer" in messages
        assert "draws from an RNG stream in the batch layer" in messages

    def test_live_batch_layer_passes_static_rules(self):
        assert BatchSharedMutableRule().check_project(SRC_ROOT) == []
        source = (SRC_ROOT / "eval" / "batch.py").read_text()
        assert BatchRngRule().check(ast.parse(source), source,
                                    "eval/batch.py") == []

    def test_isolation_walker_flags_shared_dict_and_generator(self):
        import numpy as np

        class FakeState:
            def __init__(self, shared, rng):
                self.shared = shared
                self.rng = rng

        registry = {"x": [1]}
        rng = np.random.default_rng(3)
        findings = check_cell_isolation(
            [FakeState(registry, rng), FakeState(registry, rng)])
        messages = " | ".join(f.message for f in findings)
        assert "mutable builtins.dict is reachable from 2 cells" in messages
        assert "Generator is reachable from 2 cells" in messages
        assert "cell-indexed stream" in messages

    def test_isolation_walker_accepts_frozen_shared_trace(self):
        from repro.netsim.traces import freeze_trace, make_trace

        class FakeState:
            def __init__(self, trace):
                self.trace = trace
                self.own = {"per-cell": []}  # mutable but unshared

        trace = freeze_trace(make_trace("wifi-walk"))
        findings = check_cell_isolation([FakeState(trace),
                                         FakeState(trace)])
        assert findings == []

    def test_live_two_cell_probe_is_clean(self):
        assert BatchIsolationRule().check_project(default_root()) == []

    def test_probe_skips_foreign_roots(self):
        # Fixture trees are covered by the static rules; the live probe
        # must not attribute installed-tree results to them.
        assert BatchIsolationRule().check_project(
            FIXTURES / "proj_batch_bad") == []


class TestCompiledCoreRules:
    """The kernel engine's sync rules: field table, handler arity,
    and the live digest probe."""

    def test_pool_fixture_yields_all_four_defects(self):
        from repro.netsim.packet import Packet
        source = (FIXTURES / "bad_kernel_pool.py").read_text()
        findings = check_pool_fields(source, "bad_kernel_pool.py",
                                     packet_slots=tuple(Packet.__slots__))
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 4
        assert "ack_recovered" in messages and "checksum" in messages
        assert "__init__" in messages and "send_time" in messages
        assert "grow" in messages and "extend" in messages
        assert "alloc" in messages and "stale" in messages

    def test_table_fixture_flags_short_handler_tuple(self):
        source = (FIXTURES / "bad_kernel_table.py").read_text()
        (finding,) = check_handler_table(source, "bad_kernel_table.py", 8)
        assert "7 slots" in finding.message
        assert "8 EV_*" in finding.message

    def test_real_kernel_passes_static_checks(self):
        from repro.netsim.packet import Packet
        source = (SRC_ROOT / "netsim" / "kernel.py").read_text()
        assert check_pool_fields(
            source, "netsim/kernel.py",
            packet_slots=tuple(Packet.__slots__)) == []
        assert check_handler_table(source, "netsim/kernel.py", 8) == []

    def test_worker_scoping(self):
        # No POOL_FIELDS literal: not kernel-shaped, nothing to check.
        assert check_pool_fields("x = 1\n", "other.py",
                                 packet_slots=("a",)) == []
        # The table worker is only ever pointed at kernel.py, where a
        # missing _handlers tuple is itself the defect.
        (finding,) = check_handler_table("x = 1\n", "kernel.py", 8)
        assert "no _handlers table" in finding.message

    def test_live_digest_probe_is_clean(self):
        assert CompiledDigestRule().check_project(default_root()) == []

    def test_digest_probe_skips_foreign_roots(self):
        assert CompiledDigestRule().check_project(FIXTURES) == []


class TestSuppressionsAndBaseline:
    def test_inline_suppression_silences_finding(self):
        rule = rules_by_id()["unseeded-rng"]
        rule.packages = ()  # fixtures live outside the scoped packages
        analyzer = Analyzer(root=FIXTURES, rules=[rule])
        # the same defect fires without the disable comment...
        assert analyzer.analyze([FIXTURES / "bad_unseeded_rng.py"])
        # ...and is silenced by it
        assert analyzer.analyze([FIXTURES / "suppressed.py"]) == []

    def test_parse_suppressions_shapes(self):
        per_line, file_wide = parse_suppressions(
            "x = 1  # replint: disable=unseeded-rng,wall-clock\n"
            "# replint: disable-file=set-iteration\n"
            "y = 2  # replint: disable=all\n")
        assert per_line[1] == {"unseeded-rng", "wall-clock"}
        assert per_line[3] == {"all"}
        assert file_wide == {"set-iteration"}

    def test_baseline_roundtrip_and_split(self, tmp_path):
        f1 = Finding("a.py", 3, 0, "unseeded-rng", "msg one")
        f2 = Finding("b.py", 9, 4, "wall-clock", "msg two")
        path = tmp_path / "baseline.json"
        Baseline.write(path, [f1])
        kept, n_baselined = Baseline.load(path).split([f1, f2])
        assert kept == [f2] and n_baselined == 1
        # drifted line number, same (rule, path, message): still accepted
        moved = Finding("a.py", 99, 7, "unseeded-rng", "msg one")
        kept, n_baselined = Baseline.load(path).split([moved])
        assert kept == [] and n_baselined == 1

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        analyzer = Analyzer(root=tmp_path, rules=all_rules())
        findings = analyzer.analyze()
        assert [f.rule for f in findings] == ["parse-error"]


class TestAnalyzerScoping:
    def test_package_scoped_rule_skips_other_packages(self):
        rule = rules_by_id()["unseeded-rng"]
        assert rule.applies_to("netsim/link.py")
        assert rule.applies_to("eval/parallel.py")
        assert not rule.applies_to("rl/policy.py")

    def test_prefix_anchor_matches_any_file_under_directory(self):
        rule = rules_by_id()["rng-stream-ownership"]
        assert rule.anchors == ("netsim/",)
        assert rule.anchored_by({"netsim/link.py"})
        assert rule.anchored_by({"netsim/rngstreams.py", "rl/policy.py"})
        assert not rule.anchored_by({"eval/parallel.py"})
        # "netsim/" must not match a *file* named netsim elsewhere
        assert not rule.anchored_by({"rl/netsim.py"})

    def test_explicit_file_list_skips_unanchored_project_rules(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        other = pkg / "other.py"
        other.write_text("x = 1\n")
        analyzer = Analyzer(root=pkg, rules=all_rules())
        # fingerprint/event-table project rules are anchored on files
        # not in this list, so analyzing it must not import/introspect
        assert analyzer.analyze([other]) == []


def _run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd or REPO, env=env)


class TestCli:
    def test_repo_run_is_clean_json(self):
        proc = _run_cli("--format=json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0

    def test_findings_fail_with_exit_one(self):
        # transmit-unpack applies to every package, so it fires even
        # though the fixture tree is outside netsim/baselines/eval
        proc = _run_cli("--format=json", "--no-baseline",
                        str(FIXTURES / "bad_transmit_unpack.py"),
                        "--root", str(FIXTURES))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["summary"]["total"] == 1
        assert payload["findings"][0]["rule"] == "transmit-unpack"

    def test_list_rules_groups_by_family(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for family in ("determinism", "fingerprint", "engine", "rng",
                       "rng-ownership", "env-taint", "global-state",
                       "signature-purity", "isolation"):
            assert f"{family}:" in proc.stdout
        # rule lines are indented under their family header
        assert "\n  unseeded-rng" in proc.stdout
        assert "\n  rng-stream-ownership" in proc.stdout
        assert "\n  batch-cell-isolation" in proc.stdout

    def test_unknown_select_is_usage_error(self):
        proc = _run_cli("--select", "no-such-rule")
        assert proc.returncode == 2
        assert "no-such-rule" in proc.stderr

    def test_select_accepts_family_glob(self):
        proc = _run_cli("--select", "rng-*", "--list-rules")
        assert proc.returncode == 0
        listed = {line.split()[0] for line in proc.stdout.splitlines()
                  if line.startswith("  ")}
        assert listed == {"rng-foreign-draw", "rng-shared-drain",
                          "rng-stream-ownership"}

    def test_glob_matching_nothing_is_usage_error(self):
        proc = _run_cli("--select", "zzz-*")
        assert proc.returncode == 2
        assert "matches no rule id" in proc.stderr

    def test_ignore_glob_drops_family(self):
        proc = _run_cli("--ignore", "batch-*", "--list-rules")
        assert proc.returncode == 0
        assert "isolation:" not in proc.stdout

    def test_script_entry_point_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "replint.py"),
             "--list-rules"],
            capture_output=True, text=True, cwd=REPO)
        assert proc.returncode == 0
        assert "unseeded-rng" in proc.stdout

    def test_changed_only_smoke(self):
        proc = _run_cli("--changed-only")
        # Exit 0 both when the worktree is clean ("no changed files")
        # and when changed files carry no findings.
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestSarif:
    """SARIF 2.1.0 output: structurally valid, one result per finding,
    suppressions excluded (no jsonschema dependency -- structural
    checks mirror what GitHub code scanning requires)."""

    @staticmethod
    def _validate(payload):
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-2.1.0.json")
        assert len(payload["runs"]) == 1
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "replint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["message"]["text"]
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
        return run

    def test_clean_repo_sarif_validates_with_empty_results(self):
        proc = _run_cli("--format=sarif")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        run = self._validate(json.loads(proc.stdout))
        assert run["results"] == []
        # driver metadata still lists the full rule set
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"rng-stream-ownership", "env-taint",
                "signature-purity"} <= ids

    def test_one_result_per_finding_with_repo_relative_uris(self):
        proc = _run_cli("--format=sarif", "--no-baseline",
                        str(FIXTURES / "bad_transmit_unpack.py"),
                        "--root", str(FIXTURES))
        assert proc.returncode == 1
        run = self._validate(json.loads(proc.stdout))
        assert len(run["results"]) == 1
        result = run["results"][0]
        assert result["ruleId"] == "transmit-unpack"
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        # --root two levels under the repo -> repo-relative prefix
        assert uri.endswith("replint/bad_transmit_unpack.py")

    def test_suppressed_findings_are_excluded(self):
        rule_path = str(FIXTURES / "suppressed.py")
        proc = _run_cli("--format=sarif", "--no-baseline", rule_path,
                        "--root", str(FIXTURES))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        run = self._validate(json.loads(proc.stdout))
        assert run["results"] == []


class TestChangedOnlyRegression:
    """Satellite regression: project-scope rules must run under
    --changed-only whenever an anchor file is in the git diff, and
    untracked files must count as changed."""

    @pytest.fixture()
    def temp_repo(self, tmp_path):
        (tmp_path / "src" / "pkg" / "netsim").mkdir(parents=True)
        root = tmp_path / "src" / "pkg"
        registry = root / "netsim" / "rngstreams.py"
        registry.write_text(
            "class StreamDef:\n"
            "    pass\n"
            "STREAMS = ()\n")
        engine = root / "netsim" / "engine.py"
        engine.write_text("x = 1\n")

        def git(*args):
            proc = subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                 *args], cwd=tmp_path, capture_output=True, text=True)
            assert proc.returncode == 0, proc.stderr
            return proc

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        return tmp_path, root, engine

    def _replint(self, tmp_path, root, *args):
        return _run_cli("--changed-only", "--no-baseline",
                        "--select=rng-stream-ownership",
                        "--root", str(root), *args, cwd=tmp_path)

    def test_clean_worktree_analyzes_nothing(self, temp_repo):
        tmp_path, root, _ = temp_repo
        proc = self._replint(tmp_path, root)
        assert proc.returncode == 0
        assert "no changed files" in proc.stdout

    def test_modified_anchor_file_triggers_project_rule(self, temp_repo):
        tmp_path, root, engine = temp_repo
        engine.write_text(
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed)\n")
        proc = self._replint(tmp_path, root)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "rng-stream-ownership" in proc.stdout

    def test_untracked_anchor_file_triggers_project_rule(self, temp_repo):
        # A brand-new file is invisible to `git diff HEAD` until staged;
        # the ls-files fallback must still pick it up.
        tmp_path, root, _ = temp_repo
        fresh = root / "netsim" / "fresh.py"
        fresh.write_text(
            "import numpy as np\n"
            "def mint(seed):\n"
            "    return np.random.default_rng(seed)\n")
        proc = self._replint(tmp_path, root)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "rng-stream-ownership" in proc.stdout
        assert "fresh.py" in proc.stdout

    def test_non_anchor_change_skips_project_rule(self, temp_repo):
        tmp_path, root, _ = temp_repo
        (root / "other.py").write_text("y = 2\n")
        proc = self._replint(tmp_path, root)
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestFixturesStayBad:
    """Guard the fixtures themselves: every bad_* file must keep
    producing at least one finding for its rule (a fixture silently
    going clean would turn its rule test meaningless)."""

    CASES = [
        ("unseeded-rng", "bad_unseeded_rng.py"),
        ("wall-clock", "bad_wall_clock.py"),
        ("global-random", "bad_global_random.py"),
        ("unsorted-walk", "bad_unsorted_walk.py"),
        ("set-iteration", "bad_set_iteration.py"),
        ("heap-push-arity", "bad_heap_push.py"),
        ("slots-attrs", "bad_slots.py"),
        ("transmit-unpack", "bad_transmit_unpack.py"),
        ("adhoc-rng", "bad_adhoc_rng.py"),
        ("rng-foreign-draw", "bad_foreign_draw.py"),
        ("rng-shared-drain", "bad_shared_drain.py"),
        ("mutable-global-state", "bad_mutable_global.py"),
    ]

    @pytest.mark.parametrize("rule_id,fixture", CASES)
    def test_fixture_fires(self, rule_id, fixture):
        assert run_rule(rule_id, fixture), f"{fixture} no longer trips {rule_id}"


class TestFaultResilienceRules:
    """The fault-injection / resilient-runtime rule family."""

    def test_fault_signature_coverage_fires(self):
        findings = FaultSignatureCoverageRule().check_project(
            FIXTURES / "proj_faults_bad")
        messages = " | ".join(f.message for f in findings)
        assert "field 'secret_knob' of fault spec LeakySpec is missing " \
               "from _signature_fields" in messages
        assert "stale _signature_fields entry 'ghost_field'" in messages
        assert "fault spec UnsignedSpec declares no _signature_fields" \
            in messages

    def test_fault_stream_declaration_fires(self):
        findings = FaultStreamDeclarationRule().check_project(
            FIXTURES / "proj_faults_bad")
        messages = " | ".join(f.message for f in findings)
        assert "'link.fault-undeclared' is minted here but not declared" \
            in messages
        assert "'link.fault-flap' must derive 'salted-indexed'" in messages
        assert "shares salt 0x464c4150 with stream 'link.loss'" in messages

    def test_retry_rule_fires_on_unlisted_stale_and_inline(self):
        findings = ResilienceRetryRule().check_project(
            FIXTURES / "proj_resilience_bad")
        messages = " | ".join(f.message for f in findings)
        assert "'repro.eval.sweep._unlisted_task' is not on " \
               "IDEMPOTENT_TASKS" in messages
        assert "must be a module-level function named on " \
               "IDEMPOTENT_TASKS, not an inline expression" in messages
        assert "stale IDEMPOTENT_TASKS entry " \
               "'repro.eval.vanished._run_cell'" in messages
        assert "'repro.eval.sweep._noop_task' has an empty justification" \
            in messages
        # the listed, used, existing entry itself raises nothing extra
        assert "'repro.eval.sweep._noop_task' is not on" not in messages

    def test_missing_allowlist_with_call_sites_is_a_finding(self, tmp_path):
        (tmp_path / "eval").mkdir(parents=True)
        (tmp_path / "eval" / "runner.py").write_text(
            "def task(arg):\n    return arg\n\n"
            "pool = ResilientPool(2, task)\n")
        messages = " | ".join(
            f.message
            for f in ResilienceRetryRule().check_project(tmp_path))
        assert "no module-level IDEMPOTENT_TASKS is declared" in messages

    def test_family_is_clean_on_the_live_tree(self):
        for rule in (FaultSignatureCoverageRule(),
                     FaultStreamDeclarationRule(), ResilienceRetryRule()):
            assert rule.check_project(SRC_ROOT) == [], rule.id
