"""Tests for declarative scenarios, suites, and the trace registry."""

import numpy as np
import pytest

from repro.core.agent import MoccAgent
from repro.config import DEFAULT_TRAINING
from repro.eval.runner import EvalNetwork, run_competition, run_scheme, scheme_factory
from repro.eval.scenarios import (
    AgentRef,
    _digest_files,
    _simulation_code_digest,
    ChurnSchedule,
    FlowDef,
    Scenario,
    ScenarioSuite,
    _agent_signature,
    run_scenario,
)
from repro.netsim.topology import dumbbell, dumbbell_asymmetric, parking_lot
from repro.netsim.traces import (
    ConstantTrace,
    StepTrace,
    make_trace,
    register_trace,
    trace_names,
)

NET = EvalNetwork(bandwidth_mbps=8.0, one_way_ms=10.0, buffer_bdp=1.0)


class TestTraceRegistry:
    def test_builtin_traces_registered(self):
        assert "fig1-step" in trace_names()
        assert isinstance(make_trace("fig1-step"), StepTrace)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown trace"):
            make_trace("no-such-trace")

    def test_duplicate_registration_guard(self):
        register_trace("test-dup", lambda: ConstantTrace(100.0))
        with pytest.raises(ValueError, match="already registered"):
            register_trace("test-dup", lambda: ConstantTrace(200.0))
        register_trace("test-dup", lambda: ConstantTrace(300.0), overwrite=True)
        assert make_trace("test-dup").pps == 300.0

    def test_factories_return_fresh_instances(self):
        assert make_trace("fig1-step") is not make_trace("fig1-step")


class TestFlowDef:
    def test_coerce_str(self):
        flow = FlowDef.coerce("cubic")
        assert flow.scheme == "cubic" and flow.display_label() == "cubic"

    def test_coerce_passthrough_and_error(self):
        flow = FlowDef("bbr", label="probe")
        assert FlowDef.coerce(flow) is flow
        with pytest.raises(TypeError):
            FlowDef.coerce(42)


class TestScenario:
    def test_named_trace_builds_network(self):
        scenario = Scenario(name="t", network=NET, flows=("cubic",),
                            trace="fig1-step", duration=2.0)
        built = scenario.build_network()
        assert isinstance(built.trace, StepTrace)
        assert scenario.network.trace is None  # original untouched

    def test_trace_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Scenario(name="t", flows=("cubic",), trace="fig1-step",
                     network=EvalNetwork(trace=ConstantTrace(100.0)))

    def test_fingerprint_ignores_name_and_suite(self):
        a = Scenario(name="a", suite="s1", network=NET, flows=("cubic",))
        b = Scenario(name="b", suite="s2", network=NET, flows=("cubic",))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sensitive_to_content(self):
        base = Scenario(name="x", network=NET, flows=("cubic",))
        prints = {
            base.fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",), seed=1).fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",), duration=9.0).fingerprint(),
            Scenario(name="x", network=NET, flows=("vegas",)).fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",),
                     trace="fig1-step").fingerprint(),
        }
        assert len(prints) == 5

    def test_fingerprint_tracks_named_trace_content(self):
        register_trace("fp-trace", lambda: ConstantTrace(100.0))
        scenario = Scenario(name="x", network=NET, flows=("cubic",),
                            trace="fp-trace")
        before = scenario.fingerprint()
        # Re-registering the same name with different content must
        # invalidate cached results for scenarios using it.
        register_trace("fp-trace", lambda: ConstantTrace(200.0), overwrite=True)
        assert scenario.fingerprint() != before

    def test_live_agent_signatures_differ_by_parameters(self):
        a1 = MoccAgent(DEFAULT_TRAINING, seed=1)
        a2 = MoccAgent(DEFAULT_TRAINING, seed=2)
        assert _agent_signature(a1) == _agent_signature(a1)
        assert _agent_signature(a1) != _agent_signature(a2)
        assert _agent_signature(None) == "none"
        assert _agent_signature(AgentRef()).startswith("ref:")

    def test_run_matches_legacy_single_flow(self):
        scenario = Scenario(name="parity", network=NET, flows=("cubic",),
                            duration=4.0, seed=3)
        record = run_scenario(scenario)[0]
        legacy = run_scheme(scheme_factory("cubic", NET, seed=3), NET,
                            duration=4.0, seed=3)
        assert record.mean_throughput_pps == legacy.mean_throughput_pps
        assert record.mean_rtt == legacy.mean_rtt
        assert record.loss_rate == legacy.loss_rate

    def test_run_matches_legacy_competition(self):
        scenario = Scenario(
            name="parity2", network=NET,
            flows=(FlowDef("cubic", start=0.0), FlowDef("vegas", start=2.0)),
            duration=6.0, seed=5)
        records = run_scenario(scenario)
        legacy = run_competition(
            [scheme_factory("cubic", NET, seed=5), scheme_factory("vegas", NET, seed=5)],
            NET, duration=6.0, start_times=[0.0, 2.0], seed=5)
        for mine, theirs in zip(records, legacy):
            assert mine.mean_throughput_pps == theirs.mean_throughput_pps

    def test_rate_frac_overrides_initial_rate(self):
        scenario = Scenario(name="r", network=NET,
                            flows=(FlowDef("bbr", rate_frac=0.5),), duration=1.0)
        # Equivalent hand-built controller: BBR at half the bottleneck.
        record = run_scenario(scenario)[0]
        legacy = run_scheme(
            scheme_factory("bbr", NET, seed=0, initial_rate=NET.bottleneck_pps / 2),
            NET, duration=1.0, seed=0)
        assert record.mean_throughput_pps == legacy.mean_throughput_pps


class TestChurnSchedule:
    def test_staggered_windows(self):
        churn = ChurnSchedule("staggered", gap=3.0, offset=1.0)
        assert churn.windows(3, 20.0) == [(1.0, float("inf")),
                                          (4.0, float("inf")),
                                          (7.0, float("inf"))]

    def test_departures_windows(self):
        churn = ChurnSchedule("departures", gap=5.0)
        assert churn.windows(2, 20.0) == [(0.0, 20.0), (0.0, 15.0)]

    def test_on_off_windows_default_on_time(self):
        churn = ChurnSchedule("on-off", gap=4.0)
        assert churn.windows(2, 20.0) == [(0.0, 4.0), (4.0, 8.0)]

    def test_skip_leaves_leading_flows_alone(self):
        churn = ChurnSchedule("on-off", gap=4.0, on_time=6.0, skip=1)
        flows = (FlowDef("bbr"), FlowDef("cubic"), FlowDef("cubic"))
        out = churn.apply(flows, 20.0)
        assert out[0] == flows[0]
        assert (out[1].start, out[1].stop) == (0.0, 6.0)
        assert (out[2].start, out[2].stop) == (4.0, 10.0)

    def test_scenario_applies_churn_to_flows(self):
        scenario = Scenario(name="c", network=NET,
                            flows=("cubic", "cubic"), duration=10.0,
                            churn=ChurnSchedule("staggered", gap=2.0))
        assert [f.start for f in scenario.flows] == [0.0, 2.0]

    def test_invalid_kind_and_params(self):
        with pytest.raises(ValueError, match="unknown churn kind"):
            ChurnSchedule("bursty")
        with pytest.raises(ValueError):
            ChurnSchedule(gap=-1.0)
        with pytest.raises(ValueError):
            ChurnSchedule("on-off", on_time=0.0)

    def test_label_is_stable(self):
        assert ChurnSchedule("on-off", gap=3.0, on_time=4.0, skip=1).label() \
            == "on-off-g3-on4-s1"
        assert ChurnSchedule("on-off", gap=3.0, period=8.0,
                             duty=0.25).label() == "on-off-g3-p8-d0.25"


class TestPeriodicChurn:
    def test_periodic_windows_repeat_until_duration(self):
        churn = ChurnSchedule("on-off", gap=2.0, on_time=1.5, period=5.0)
        wins = churn.all_windows(2, 12.0)
        assert wins[0] == [(0.0, 1.5), (5.0, 6.5), (10.0, 11.5)]
        assert wins[1] == [(2.0, 3.5), (7.0, 8.5)]
        # windows() keeps its single-window contract: the first repeat.
        assert churn.windows(2, 12.0) == [(0.0, 1.5), (2.0, 3.5)]

    def test_duty_sizes_the_window(self):
        churn = ChurnSchedule("on-off", gap=0.0, period=4.0, duty=0.5)
        assert churn.all_windows(1, 8.0)[0] == [(0.0, 2.0), (4.0, 6.0)]

    def test_apply_expands_repeats_into_fresh_sessions(self):
        churn = ChurnSchedule("on-off", gap=1.0, offset=1.0, on_time=2.0,
                              period=6.0, skip=1)
        flows = (FlowDef("bbr", label="dl"), FlowDef("cubic", label="ul"))
        out = churn.apply(flows, 14.0)
        assert out[0] == flows[0]  # skipped flow untouched
        churned = out[1:]
        assert [(f.start, f.stop) for f in churned] == \
            [(1.0, 3.0), (7.0, 9.0), (13.0, 15.0)]
        assert [f.display_label() for f in churned] == ["ul", "ul~r1", "ul~r2"]
        assert all(f.scheme == "cubic" for f in churned)

    def test_non_periodic_apply_shape_unchanged(self):
        churn = ChurnSchedule("on-off", gap=2.0, on_time=3.0)
        flows = (FlowDef("cubic"), FlowDef("cubic"))
        assert len(churn.apply(flows, 10.0)) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="only apply to on-off"):
            ChurnSchedule("staggered", period=5.0)
        with pytest.raises(ValueError, match="period must be positive"):
            ChurnSchedule("on-off", period=0.0)
        with pytest.raises(ValueError, match="needs a period"):
            ChurnSchedule("on-off", duty=0.5)
        with pytest.raises(ValueError, match="not both"):
            ChurnSchedule("on-off", period=5.0, duty=0.5, on_time=1.0)
        with pytest.raises(ValueError, match="duty must be in"):
            ChurnSchedule("on-off", period=5.0, duty=1.5)
        with pytest.raises(ValueError, match="exceed period"):
            ChurnSchedule("on-off", period=2.0, on_time=3.0)

    def test_scenario_runs_repeating_sessions(self):
        scenario = Scenario(
            name="rep", network=NET, flows=("bbr", "cubic"), duration=10.0,
            churn=ChurnSchedule("on-off", gap=0.0, on_time=2.0, period=4.0,
                                skip=1))
        # bbr persists; cubic gets sessions [0,2), [4,6), [8,10).
        assert len(scenario.flows) == 4
        records = run_scenario(scenario)
        assert len(records) == 4
        session = records[2]  # cubic's second session
        assert session.records[0].start >= 4.0
        assert all(s.end <= 10.0 for s in session.records)
        assert session.mean_throughput_pps > 0


class TestTopologyScenarios:
    def test_flow_path_requires_topology(self):
        with pytest.raises(ValueError, match="need a topology"):
            Scenario(name="t", network=NET,
                     flows=(FlowDef("cubic", path="through"),))

    def test_unknown_path_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown path"):
            Scenario(name="t", network=NET, topology=parking_lot(2),
                     flows=(FlowDef("cubic", path="cross9"),))

    def test_topology_and_trace_conflict(self):
        with pytest.raises(ValueError, match="their own traces"):
            Scenario(name="t", network=NET, topology=dumbbell(),
                     flows=("cubic",), trace="fig1-step")

    def test_dumbbell_topology_matches_single_link_network(self):
        """A dumbbell spec mirroring NET reproduces the single-link
        scenario exactly (same queue sizing, same seeded streams)."""
        topo = dumbbell(bandwidth_mbps=NET.bandwidth_mbps,
                        delay_ms=NET.one_way_ms)
        a = run_scenario(Scenario(name="a", network=NET, flows=("cubic",),
                                  topology=topo, duration=4.0, seed=3))[0]
        b = run_scenario(Scenario(name="b", network=NET, flows=("cubic",),
                                  duration=4.0, seed=3))[0]
        assert a.mean_throughput_pps == b.mean_throughput_pps
        assert a.mean_rtt == b.mean_rtt
        assert a.base_rtt == b.base_rtt

    def test_fingerprint_sensitive_to_topology_content(self):
        base = Scenario(name="x", network=NET, flows=("cubic",),
                        topology=parking_lot(2))
        prints = {
            base.fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",),
                     topology=parking_lot(3)).fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",),
                     topology=parking_lot(2, bandwidth_mbps=9.0)).fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",),
                     topology=parking_lot(2, delay_ms=5.0)).fingerprint(),
            Scenario(name="x", network=NET, flows=("cubic",),
                     topology=parking_lot(2, trace="fig1-step")).fingerprint(),
            Scenario(name="x", network=NET,
                     flows=(FlowDef("cubic", path="cross0"),),
                     topology=parking_lot(2)).fingerprint(),
        }
        assert len(prints) == 6

    def test_fingerprint_ignores_topology_rename(self):
        a = parking_lot(2)
        b = parking_lot(2, name="same-shape-other-name")
        fp = lambda t: Scenario(name="x", network=NET, flows=("cubic",),
                                topology=t).fingerprint()
        assert fp(a) == fp(b)

    def test_fingerprint_sensitive_to_churn_schedule(self):
        fp = lambda churn: Scenario(
            name="x", network=NET, flows=("cubic", "cubic"), duration=10.0,
            churn=churn).fingerprint()
        assert len({fp(None),
                    fp(ChurnSchedule("staggered", gap=2.0)),
                    fp(ChurnSchedule("staggered", gap=3.0)),
                    fp(ChurnSchedule("on-off", gap=2.0))}) == 4

    def test_fingerprint_ignores_superseded_network_axes(self):
        """With a topology, the single-link bandwidth axis is inert and
        must not fork cache entries."""
        other = EvalNetwork(bandwidth_mbps=40.0, one_way_ms=5.0)
        fp = lambda net: Scenario(name="x", network=net, flows=("cubic",),
                                  topology=parking_lot(2)).fingerprint()
        assert fp(NET) == fp(other)

    def test_parking_lot_run_produces_per_path_records(self):
        scenario = Scenario(
            name="pl", network=NET, topology=parking_lot(2, bandwidth_mbps=8.0),
            flows=(FlowDef("bbr", path="through"),
                   FlowDef("cubic", path="cross0"),
                   FlowDef("cubic", path="cross1")),
            duration=4.0, seed=1)
        records = run_scenario(scenario)
        assert len(records) == 3
        # through crosses two 10 ms hops; cross flows see one.
        assert records[0].base_rtt == pytest.approx(0.04)
        assert records[1].base_rtt == pytest.approx(0.02)
        assert all(r.mean_throughput_pps > 0 for r in records)


class TestAgentRef:
    def test_keys_distinguish_models(self):
        keys = {AgentRef().key(),
                AgentRef(quality="full").key(),
                AgentRef(kind="aurora", flavor="latency").key(),
                AgentRef(kind="aurora_for", flavor="rtc",
                         weights=(0.2, 0.3, 0.5)).key()}
        assert len(keys) == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown agent kind"):
            AgentRef(kind="bogus").resolve()

    def test_aurora_for_requires_weights(self):
        with pytest.raises(ValueError, match="weight vector"):
            AgentRef(kind="aurora_for").resolve()


class TestScenarioSuite:
    def test_grid_size_and_names(self):
        suite = ScenarioSuite(name="grid", lineups=("cubic", "vegas"),
                              bandwidths_mbps=(5.0, 10.0), losses=(0.0, 0.01),
                              seeds=(0, 1), duration=1.0)
        scenarios = suite.expand()
        assert len(scenarios) == len(suite) == 16
        assert len({s.name for s in scenarios}) == 16
        assert all(s.suite == "grid" for s in scenarios)
        # Singleton axes are not in the name; varying ones are.
        assert "rtt=" not in scenarios[0].name
        assert "bw=" in scenarios[0].name and "seed=" in scenarios[0].name

    def test_rtt_axis_is_round_trip(self):
        suite = ScenarioSuite(name="r", lineups=("cubic",), rtts_ms=(50.0,))
        assert suite.expand()[0].network.one_way_ms == 25.0

    def test_buffer_axis_semantics(self):
        suite = ScenarioSuite(name="b", lineups=("cubic",), buffers=(2.0, 1500))
        bdp, pkts = suite.expand()
        assert bdp.network.buffer_bdp == 2.0 and bdp.network.queue_packets is None
        assert pkts.network.queue_packets == 1500

    def test_buffer_axis_accepts_numpy_integers(self):
        suite = ScenarioSuite(name="b", lineups=("cubic",),
                              buffers=tuple(np.array([500, 1500])))
        for scenario in suite.expand():
            assert scenario.network.queue_packets in (500, 1500)

    def test_expand_records_lineup_label(self):
        suite = ScenarioSuite(name="l", lineups={"probe": ("cubic", "vegas")},
                              rtts_ms=(20.0, 40.0))
        assert all(s.lineup == "probe" for s in suite.expand())

    def test_multiflow_lineups_and_labels(self):
        suite = ScenarioSuite(
            name="duo",
            lineups={"pair": (FlowDef("cubic"), FlowDef("vegas", start=3.0))},
            duration=1.0)
        scenario = suite.expand()[0]
        assert scenario.name == "duo/pair"
        assert [f.scheme for f in scenario.flows] == ["cubic", "vegas"]
        assert scenario.flows[1].start == 3.0

    def test_duplicate_labels_disambiguated(self):
        suite = ScenarioSuite(name="dup", lineups=("cubic", "cubic"))
        names = [s.name for s in suite.expand()]
        assert len(set(names)) == 2

    def test_trace_axis(self):
        suite = ScenarioSuite(name="tr", lineups=("cubic",),
                              traces=(None, "fig1-step"))
        plain, stepped = suite.expand()
        assert plain.trace is None and stepped.trace == "fig1-step"
        assert isinstance(stepped.build_network().trace, StepTrace)

    def test_topology_axis(self):
        suite = ScenarioSuite(name="tp", lineups=("cubic",),
                              topologies=(None, dumbbell(), parking_lot(2)))
        plain, dumb, lot = suite.expand()
        assert len(suite) == 3
        assert plain.topology is None and "topo=None" in plain.name
        assert dumb.topology.name == "dumbbell"
        assert "topo=parking-lot2" in lot.name

    def test_churn_axis(self):
        suite = ScenarioSuite(
            name="ch", lineups={"duo": ("cubic", "cubic")},
            churns=(None, ChurnSchedule("staggered", gap=2.0)), duration=8.0)
        plain, churned = suite.expand()
        assert len(suite) == 2
        assert [f.start for f in plain.flows] == [0.0, 0.0]
        assert [f.start for f in churned.flows] == [0.0, 2.0]
        assert "churn=staggered-g2" in churned.name

    def test_topology_supersedes_trace_axis(self):
        suite = ScenarioSuite(name="ts", lineups=("cubic",),
                              traces=("fig1-step",),
                              topologies=(parking_lot(2),))
        scenario = suite.expand()[0]
        assert scenario.trace is None and scenario.topology is not None

    def test_transit_axis(self):
        suite = ScenarioSuite(name="tw", lineups=("cubic",),
                              transits=("event", "eager"))
        event, eager = suite.expand()
        assert len(suite) == 2
        assert event.transit == "event" and "transit=event" in event.name
        assert eager.transit == "eager" and "transit=eager" in eager.name
        # A single-entry axis stays out of scenario names (and the
        # default is the event engine).
        only, = ScenarioSuite(name="tw1", lineups=("cubic",)).expand()
        assert only.transit == "event" and "transit=" not in only.name

    def test_fingerprint_sensitive_to_path_ack_bytes(self):
        def with_ack(ack):
            spec = dumbbell_asymmetric(16.0, ack_bytes=ack)
            return Scenario(name="x", network=NET, flows=("cubic",),
                            topology=spec).fingerprint()

        assert with_ack(None) != with_ack(600)
        assert with_ack(600) == with_ack(600)


class TestReversePathsAxis:
    TWIN = {"through": None, "reverse": None}

    def suite(self, **kwargs):
        kwargs.setdefault("duration", 2.0)
        return ScenarioSuite(
            name="rp", lineups={"dl": (FlowDef("cubic", path="through"),
                                       FlowDef("cubic", path="reverse"))},
            topologies=(dumbbell_asymmetric(16.0, delay_ms=8.0),),
            reverse_paths=(None, self.TWIN), **kwargs)

    def test_axis_expands_wired_and_twin_cells(self):
        suite = self.suite()
        assert len(suite) == 2
        wired, twin = suite.expand()
        assert wired.topology.path("through").reverse_links == ("rev",)
        assert twin.topology.path("through").reverse_links is None
        assert twin.topology.path("through").return_delay_ms == pytest.approx(8.0)
        assert "rev=None" in wired.name
        assert "rev=reverse:prop,through:prop" in twin.name

    def test_axis_needs_topology(self):
        with pytest.raises(ValueError, match="must be a TopologySpec"):
            ScenarioSuite(name="x", lineups=("cubic",),
                          reverse_paths=(None, self.TWIN))

    def test_fingerprint_sensitive_to_reverse_wiring(self):
        wired, twin = self.suite().expand()
        assert wired.fingerprint() != twin.fingerprint()

    def test_congested_reverse_raises_mean_rtt_vs_twin(self):
        """The acceptance shape: same propagation, same load -- the
        wired cell's download RTT is measurably higher because its acks
        queue behind the upload; the twin is blind to it."""
        wired, twin = self.suite(duration=5.0, seeds=(4,)).expand()
        rtt_wired = run_scenario(wired)[0].mean_rtt
        rtt_twin = run_scenario(twin)[0].mean_rtt
        assert rtt_wired > 1.3 * rtt_twin


class TestCodeDigest:
    """The code digest must agree across hosts: platform-independent
    file order, path-relative labels, LF-normalized content."""

    @staticmethod
    def _tree(tmp_path, files):
        root = tmp_path / "pkg"
        root.mkdir(parents=True, exist_ok=True)
        paths = []
        for name, content in files:
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(content)
            paths.append(path)
        return root, paths

    def test_order_independent(self, tmp_path):
        root, paths = self._tree(tmp_path, [("a.py", b"a = 1\n"),
                                            ("b.py", b"b = 2\n")])
        assert _digest_files(paths, root) == _digest_files(paths[::-1], root)

    def test_crlf_checkout_hashes_identically(self, tmp_path):
        root, (path,) = self._tree(tmp_path, [("a.py", b"x = 1\ny = 2\n")])
        lf = _digest_files([path], root)
        path.write_bytes(b"x = 1\r\ny = 2\r\n")
        assert _digest_files([path], root) == lf

    def test_sensitive_to_content_and_relative_path(self, tmp_path):
        root, (path,) = self._tree(tmp_path, [("a.py", b"x = 1\n")])
        base = _digest_files([path], root)
        path.write_bytes(b"x = 2\n")
        assert _digest_files([path], root) != base
        # same bytes under a different relative path is a different tree
        path.write_bytes(b"x = 1\n")
        root2, (path2,) = self._tree(tmp_path, [("sub/a.py", b"x = 1\n")])
        assert _digest_files([path2], root2) != base

    def test_same_basename_in_two_dirs_does_not_collide(self, tmp_path):
        root, paths = self._tree(tmp_path, [("one/__init__.py", b"v = 1\n"),
                                            ("two/__init__.py", b"v = 2\n")])
        swapped, others = self._tree(tmp_path / "swap",
                                     [("one/__init__.py", b"v = 2\n"),
                                      ("two/__init__.py", b"v = 1\n")])
        assert _digest_files(paths, root) != _digest_files(others, swapped)

    def test_live_digest_is_stable_and_short(self):
        assert _simulation_code_digest() == _simulation_code_digest()
        assert len(_simulation_code_digest()) == 16
