"""Golden-trace bit-identity for the optimized event engine.

PR 5 rebuilt the discrete-event hot path (integer dispatch,
allocation-free transit, flat-buffer MI statistics, block-drawn RNG)
under a hard guarantee: **the floats do not move**.  These tests pin
that guarantee to goldens generated from the *pre-optimization* engine
(see ``scripts/make_engine_goldens.py``): a seeded multi-flow,
multi-hop, wired-reverse grid is re-run on the current engine, under
both transit modes, and every scenario's full result rows (per-MI
records included) must digest-identically match.

The digest covers every float the result cache persists, serialized
via JSON ``repr`` (shortest round-trip -- exact for float64).  A
mismatch therefore means the engine's arithmetic changed, not a
formatting burp.

Cross-platform note: the simulator's statistics use numpy reductions
(pairwise-summation ``mean``, BLAS ``dot``) whose last-bit rounding is
stable on any one platform but can differ across exotic BLAS builds.
``REPRO_GOLDEN_RELAXED=1`` downgrades the digest assertion to a tight
numeric comparison of the per-flow summary statistics for such hosts.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.eval.parallel import ParallelRunner, _record_to_json
from repro.eval.scenarios import ChurnSchedule, FlowDef, ScenarioSuite
from repro.netsim.topology import dumbbell_asymmetric, parking_lot

GOLDEN_PATH = Path(__file__).parent / "goldens" / "engine_golden.json"


def golden_suites() -> tuple:
    """The pinned grid: single-bottleneck x loss x trace, a churned
    parking lot, and a wired-reverse asymmetric dumbbell -- every cell
    under both transit engines.  Heuristic schemes only (no model zoo),
    fixed seeds, short durations."""
    lot = parking_lot(2, bandwidth_mbps=12.0, delay_ms=6.0)
    asym = dumbbell_asymmetric(bandwidth_mbps=12.0, delay_ms=6.0,
                               reverse_bandwidth_mbps=1.2)
    single = ScenarioSuite(
        name="golden-single",
        lineups={"duo": ("cubic", "bbr"),
                 "trio": ("copa", "vivace", "vegas")},
        bandwidths_mbps=(8.0,), losses=(0.0, 0.02),
        traces=(None, "fig1-step"), transits=("event", "eager"),
        duration=4.0, seeds=(11,))
    lot_suite = ScenarioSuite(
        name="golden-lot",
        lineups={f"{s}-through": (
            FlowDef(s, path="through", label=f"{s}-through"),
            FlowDef("cubic", path="cross0", label="cross0"),
            FlowDef("cubic", path="cross1", label="cross1"))
            for s in ("cubic", "bbr")},
        topologies=(lot,),
        churns=(None, ChurnSchedule("on-off", gap=1.0, on_time=1.5,
                                    period=2.5, skip=1)),
        transits=("event", "eager"), duration=4.0, seeds=(11,))
    ack_suite = ScenarioSuite(
        name="golden-ack",
        lineups={f"{s}-dl": (
            FlowDef(s, path="through", label=f"{s}-dl"),
            FlowDef("cubic", path="reverse", label="ul0"))
            for s in ("cubic", "vivace")},
        topologies=(asym,), transits=("event", "eager"),
        duration=4.0, seeds=(11,))
    return single, lot_suite, ack_suite


def compute_goldens() -> dict:
    """Run the golden grid; return per-scenario digests + summaries."""
    runner = ParallelRunner(n_workers=1, use_cache=False)
    scenarios = {}
    for suite in golden_suites():
        for result in runner.run(suite):
            rows = [_record_to_json(r) for r in result.records]
            blob = json.dumps(rows, sort_keys=True)
            scenarios[result.scenario.name] = {
                "digest": hashlib.sha256(blob.encode()).hexdigest(),
                "summary": [[r.scheme, r.mean_throughput_pps, r.mean_rtt,
                             r.loss_rate] for r in result.records],
            }
    return scenarios


@pytest.fixture(scope="module")
def goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(f"golden file missing: {GOLDEN_PATH}; regenerate with "
                    f"scripts/make_engine_goldens.py")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def fresh() -> dict:
    return compute_goldens()


class TestGoldenTraces:
    def test_grid_shape_unchanged(self, goldens, fresh):
        assert sorted(fresh) == sorted(goldens["scenarios"]), \
            "golden grid changed; regenerate scripts/make_engine_goldens.py"

    def test_digest_identical_to_pre_optimization_engine(self, goldens, fresh):
        relaxed = os.environ.get("REPRO_GOLDEN_RELAXED") == "1"
        mismatched = []
        for name, entry in goldens["scenarios"].items():
            got = fresh[name]
            if got["digest"] != entry["digest"]:
                mismatched.append(name)
                if relaxed:
                    for want_row, got_row in zip(entry["summary"],
                                                 got["summary"]):
                        assert want_row[0] == got_row[0], name
                        for want, got_v in zip(want_row[1:], got_row[1:]):
                            if want is None or got_v is None:
                                assert want == got_v, (name, want_row)
                            else:
                                assert got_v == pytest.approx(
                                    want, rel=1e-9, abs=1e-12), (name,
                                                                 want_row)
        if not relaxed:
            assert not mismatched, (
                f"{len(mismatched)} scenario(s) diverged from the "
                f"pre-optimization goldens: {mismatched[:5]}")

    def test_both_transit_modes_covered(self, goldens):
        names = list(goldens["scenarios"])
        assert any("transit=event" in n for n in names)
        assert any("transit=eager" in n for n in names)
