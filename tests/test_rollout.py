"""Tests for returns, advantages and the rollout buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.rollout import RolloutBuffer, discounted_returns, gae_advantages


class TestDiscountedReturns:
    def test_single_step(self):
        out = discounted_returns(np.array([3.0]), np.array([True]), 0.9)
        assert out[0] == pytest.approx(3.0)

    def test_two_steps(self):
        out = discounted_returns(np.array([1.0, 2.0]), np.array([False, True]), 0.5)
        assert out[1] == pytest.approx(2.0)
        assert out[0] == pytest.approx(1.0 + 0.5 * 2.0)

    def test_episode_boundary_blocks_flow(self):
        rewards = np.array([1.0, 100.0])
        dones = np.array([True, True])
        out = discounted_returns(rewards, dones, 0.99)
        assert out[0] == pytest.approx(1.0)  # no leak from next episode

    def test_bootstrap_value(self):
        out = discounted_returns(np.array([1.0]), np.array([False]), 0.9,
                                 bootstrap_value=10.0)
        assert out[0] == pytest.approx(1.0 + 0.9 * 10.0)

    def test_bootstrap_ignored_after_done(self):
        out = discounted_returns(np.array([1.0]), np.array([True]), 0.9,
                                 bootstrap_value=10.0)
        assert out[0] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 30), gamma=st.floats(0.5, 0.999))
    def test_constant_reward_geometric_sum(self, n, gamma):
        rewards = np.ones(n)
        dones = np.zeros(n, dtype=bool)
        dones[-1] = True
        out = discounted_returns(rewards, dones, gamma)
        expected = (1 - gamma ** n) / (1 - gamma)
        assert out[0] == pytest.approx(expected, rel=1e-9)


class TestGAE:
    def test_lambda_one_equals_mc_advantage(self):
        """GAE(1) must reproduce the paper's Eq. 4 advantage exactly."""
        rng = np.random.default_rng(0)
        rewards = rng.normal(size=12)
        values = rng.normal(size=12)
        dones = np.zeros(12, dtype=bool)
        dones[5] = True
        dones[-1] = True
        adv = gae_advantages(rewards, values, dones, 0.97, 1.0)
        returns = discounted_returns(rewards, dones, 0.97)
        np.testing.assert_allclose(adv, returns - values, atol=1e-10)

    def test_lambda_zero_is_td_error(self):
        rewards = np.array([1.0, 2.0])
        values = np.array([0.5, 0.25])
        dones = np.array([False, True])
        adv = gae_advantages(rewards, values, dones, 0.9, 0.0)
        assert adv[1] == pytest.approx(2.0 - 0.25)
        assert adv[0] == pytest.approx(1.0 + 0.9 * 0.25 - 0.5)

    def test_perfect_critic_gives_zero_advantage(self):
        rewards = np.array([1.0, 1.0, 1.0])
        dones = np.array([False, False, True])
        values = discounted_returns(rewards, dones, 0.9)
        adv = gae_advantages(rewards, values, dones, 0.9, 1.0)
        np.testing.assert_allclose(adv, 0.0, atol=1e-12)

    def test_bootstrap_used_when_truncated(self):
        rewards = np.array([0.0])
        values = np.array([0.0])
        dones = np.array([False])
        adv = gae_advantages(rewards, values, dones, 0.9, 0.95, bootstrap_value=2.0)
        assert adv[0] == pytest.approx(0.9 * 2.0)


class TestRolloutBuffer:
    def _filled(self, n=8, weight_dim=3):
        buf = RolloutBuffer(obs_dim=4, weight_dim=weight_dim, act_dim=1, capacity=n)
        for i in range(n):
            buf.add(obs=np.full(4, i), action=[0.1 * i], log_prob=-1.0,
                    value=0.5, reward=1.0, done=(i == n - 1),
                    weights=np.full(3, 1 / 3) if weight_dim else None)
        return buf

    def test_fills_to_capacity(self):
        buf = self._filled(5)
        assert buf.full
        assert buf.size == 5

    def test_overflow_raises(self):
        buf = self._filled(3)
        with pytest.raises(RuntimeError):
            buf.add(np.zeros(4), [0.0], 0.0, 0.0, 0.0, False, weights=np.zeros(3))

    def test_missing_weights_raises(self):
        buf = RolloutBuffer(4, 3, 1, 2)
        with pytest.raises(ValueError):
            buf.add(np.zeros(4), [0.0], 0.0, 0.0, 0.0, False, weights=None)

    def test_weightless_buffer(self):
        buf = RolloutBuffer(4, 0, 1, 2)
        buf.add(np.zeros(4), [0.0], 0.0, 0.0, 0.0, False)
        obs, weights, actions, log_probs, values = buf.batch()
        assert weights is None
        assert len(obs) == 1

    def test_reset(self):
        buf = self._filled(4)
        buf.reset()
        assert buf.size == 0
        assert not buf.full

    def test_compute_normalises_advantages_on_request(self):
        buf = self._filled(8)
        returns, adv = buf.compute(gamma=0.99, lam=0.95, normalize=True)
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, abs=1e-6)

    def test_compute_raw_by_default(self):
        buf = self._filled(8)
        _, adv_raw = buf.compute(gamma=0.99, lam=0.95)
        _, adv_norm = buf.compute(gamma=0.99, lam=0.95, normalize=True)
        assert not np.allclose(adv_raw, adv_norm)

    def test_returns_equal_adv_plus_value_shape(self):
        buf = self._filled(6)
        returns, adv = buf.compute(gamma=0.9, lam=1.0)
        assert returns.shape == (6,)
        assert adv.shape == (6,)

    def test_batch_views_not_copies(self):
        buf = self._filled(4)
        obs, *_ = buf.batch()
        obs[0, 0] = 123.0
        assert buf.obs[0, 0] == 123.0
