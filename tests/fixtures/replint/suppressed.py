"""Self-test: an inline suppression silences a real finding."""
import numpy as np


def entropy_stream():
    # Deliberately unseeded -- this fixture documents the suppression
    # syntax; real code must justify every disable comment like this.
    return np.random.default_rng()  # replint: disable=unseeded-rng
