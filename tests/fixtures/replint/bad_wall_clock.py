"""Known-bad: wall-clock reads in simulation code (rule ``wall-clock``)."""
import time
from datetime import datetime


def stamp():
    started = time.time()           # BAD: host clock
    label = datetime.now()          # BAD: host clock
    elapsed = time.perf_counter()   # ok: wall-time measurement only
    return started, label, elapsed
