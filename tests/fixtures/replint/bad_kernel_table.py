"""Known-bad kernel handler table: one slot short of the EV_* count
declared by the reference engine (8) -- compiled-handler-table flags it.

Never imported; parsed by tests/test_analysis.py.
"""


class KernelSimulation:
    def __init__(self):
        self._handlers = (self._handle_start, self._fused_only,
                          self._fused_only, self._fused_only,
                          self._fused_only, self._fused_only,
                          self._handle_rto)  # 7 slots for 8 kinds

    def _handle_start(self, flow, packet=None):
        pass

    def _fused_only(self, flow, packet=None):
        raise RuntimeError("fused")

    def _handle_rto(self, flow, packet=None):
        pass
