"""Fixture: impure fingerprint/signature functions."""

import os


def _helper_digest(payload):
    print("digesting", payload)   # write I/O in a direct callee
    return repr(payload)


class Spec:
    def fingerprint(self):
        self._memo = "x"                        # attribute store
        salt = os.environ.get("SPEC_SALT")      # env read
        return _helper_digest((salt, self._memo))


def _topology_signature(spec, registry):
    registry[spec] = True                       # stores into a parameter
    return str(spec)
