"""Known-bad: undeclared ``__slots__`` attributes (rule ``slots-attrs``)."""


class Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def bump(self):
        self.count = 1  # BAD: not in __slots__ -> AttributeError at runtime


def relabel(packet):
    packet.retries = 3  # BAD: 'retries' is not a Packet slot
    packet.hop = 0      # ok: declared Packet slot
