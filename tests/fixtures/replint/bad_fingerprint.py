"""Known-bad: a dataclass field its signature forgets
(rule ``fingerprint-coverage``).

Loaded in isolation by the self-tests, then fed to
``check_coverage``: ``gamma`` shapes results but never reaches
``signature()`` and is not on an exclusion list.
"""
from dataclasses import dataclass


@dataclass(frozen=True)
class BadSpec:
    alpha: float = 0.0
    beta: float = 1.0
    gamma: str = "fifo"  # BAD: behavioural, but missing from signature()

    def signature(self):
        return [self.alpha, self.beta]
