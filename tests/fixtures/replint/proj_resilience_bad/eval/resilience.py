"""Known-bad resilience layer: stale and unjustified allowlist entries."""

IDEMPOTENT_TASKS = (
    ("repro.eval.vanished._run_cell",
     "module no longer exists, so this entry is stale"),
    ("repro.eval.sweep._noop_task", ""),
)


class ResilientPool:
    def __init__(self, n_workers, fn, initializer=None, retry=None):
        self.fn = fn

    def execute(self, tasks):
        return []
