"""Known-bad pool call sites: unlisted and inline task functions."""

from .resilience import ResilientPool


def _noop_task(arg):
    return arg


def _unlisted_task(arg):
    return arg


def run_all(batches):
    listed = ResilientPool(2, _noop_task)
    unlisted = ResilientPool(2, _unlisted_task)
    inline = ResilientPool(2, lambda arg: arg)
    return listed, unlisted, inline
