"""Known-bad: unseeded RNG construction (rule ``unseeded-rng``)."""
import numpy as np


def make_stream():
    return np.random.default_rng()  # BAD: draws OS entropy
