"""Fixture: sensitive module pulling a tainted value in."""

from proj_env_bad.models.store import cache_dir


def build():
    return cache_dir()
