"""Fixture: env read in a neutral module, reached from eval."""

import os


def cache_dir():
    # tainted only because eval.scenarios (sensitive) calls this
    return os.environ.get("PROJ_CACHE_DIR")
