"""Fixture: env read with no path into simulation -- must stay clean."""

import os


def use_color():
    return os.environ.get("REPORT_COLOR") == "1"
