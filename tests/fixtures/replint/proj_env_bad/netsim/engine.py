"""Fixture: env reads inside a sensitive (simulation) module."""

import os


def speed_hack():
    # tainted: read in a netsim module, not allowlisted
    return os.environ.get("SIM_SPEED_HACK")


def lookup(key):
    # tainted and unverifiable: the variable name is dynamic
    return os.getenv(key)
