"""rng-shared-drain: one local generator fanned out to consumers."""

import numpy as np


def build_pair(seed):
    rng = np.random.default_rng(seed)
    first = Link(rng=rng)     # consumer 1
    second = Link(rng=rng)    # consumer 2: the streams interleave
    return first, second


def build_and_draw(seed):
    rng = np.random.default_rng(seed)
    jitter = rng.uniform(0.0, 1.0)   # local draw shifts the consumer's view
    return Link(rng=rng), jitter


def fine_single_consumer(seed):
    rng = np.random.default_rng(seed)
    return Link(rng=rng)             # one owner: no finding
