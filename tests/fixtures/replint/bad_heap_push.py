"""Known-bad: inconsistent heap entries (rule ``heap-push-arity``)."""
from heapq import heappush


def schedule(heap, t, seq, flow, pkt):
    heappush(heap, (t, seq, 0, flow, pkt))       # BAD: literal event kind
    heappush(heap, (t, seq))                     # BAD: arity differs
    heappush(heap, (t, seq, EV_SEND, flow, pkt))  # noqa: F821
    heappush(heap, (t, seq, EV_ACK, flow, pkt))   # noqa: F821
