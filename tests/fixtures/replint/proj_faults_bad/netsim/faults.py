"""Known-bad fault layer: undeclared streams, uncovered spec fields."""

from dataclasses import dataclass

from .rngstreams import stream_rng


@dataclass(frozen=True)
class LeakySpec:
    period: float
    down_time: float
    secret_knob: float = 0.0  # absent from _signature_fields: cache poison

    _signature_fields = ("period", "down_time", "ghost_field")


@dataclass(frozen=True)
class UnsignedSpec:
    start: float
    duration: float


class FaultProcess:
    def __init__(self, seed, index):
        self._flap_rng = stream_rng("link.fault-flap", seed, index=index)
        self._loss_rng = stream_rng("link.fault-undeclared", seed,
                                    index=index)
