"""Known-bad registry: wrong derivation and a colliding salt."""


class StreamDef:
    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)


STREAMS = (
    StreamDef(
        name="link.loss",
        owner="netsim.topology",
        domain="scenario",
        derive="salted", salt=0x464C4150,
        reason="collides with link.fault-flap's salt below"),
    StreamDef(
        name="link.fault-flap",
        owner="netsim.faults.FaultProcess._flap_rng",
        domain="scenario",
        derive="indexed", salt=0x464C4150,
        reason="wrong derivation: must be salted-indexed"),
)


def stream_rng(name, seed, index=None):
    return None
