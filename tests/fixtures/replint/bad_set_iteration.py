"""Known-bad: iteration in set (hash) order (rule ``set-iteration``)."""


def resolve(items):
    refs = {item.ref for item in items}
    for ref in refs:                # BAD: hash order
        ref.resolve()
    doubled = [r + r for r in {1, 2, 3}]  # BAD: hash order
    for ref in sorted(refs):        # ok: deterministic order
        ref.resolve()
    return doubled
