"""Known-bad: process-global RNG state (rule ``global-random``)."""
import random

import numpy as np


def jitter():
    random.seed(0)              # BAD: mutates the process-wide stream
    a = random.random()         # BAD: reads the process-wide stream
    b = np.random.rand()        # BAD: legacy numpy global stream
    rng = np.random.default_rng(0)  # ok: seeded generator API
    return a, b, rng.random()
