"""Known-bad: event table drift (rule ``event-handler-table``).

Three declared kinds, a range of two, a two-entry handler table, and
one kind no push site ever schedules.
"""

EV_A, EV_B, EV_C = range(2)  # BAD: 3 kinds unpacked from range(2)


class Engine:
    def __init__(self):
        self._handlers = (self._a, self._b)  # BAD: 2 handlers for 3 kinds

    def _a(self, ev):
        self.push(EV_A)

    def _b(self, ev):
        self.push(EV_B)
    # BAD: EV_C is never referenced by any push site
