"""Fixture consumers: construction-site defects."""

import numpy as np

from proj_rng_bad.netsim.rngstreams import stream_rng


def build(seed, dynamic_name):
    rogue = np.random.default_rng(seed)        # undeclared construction
    streams = [
        stream_rng("a.raw", seed),
        stream_rng("b.raw", seed),
        stream_rng("c.affine", seed),
        stream_rng("d.raw", seed),
        stream_rng("e.salted", seed),
        stream_rng("f.indexed", seed, index=0),
    ]
    ghost = stream_rng("z.undeclared", seed)   # not in the registry
    dyn = stream_rng(dynamic_name, seed)       # unverifiable name
    return rogue, streams, ghost, dyn
