"""Fixture registry: every declaration-level defect in one table."""

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamDef:
    name: str
    owner: str = ""
    domain: str = ""
    derive: str = "raw"
    salt: int | None = None
    mul: int | None = None
    add: int | None = None
    collision_note: str | None = None
    reason: str = ""


STREAMS = (
    StreamDef(name="a.raw", domain="sim", derive="raw"),
    # raw/raw in one domain: identical bitstreams for every seed
    StreamDef(name="b.raw", domain="sim", derive="raw"),
    StreamDef(name="c.affine", domain="env", derive="affine", mul=3, add=1),
    # int-valued overlap with c.affine, neither carries a collision_note
    StreamDef(name="d.raw", domain="env", derive="raw"),
    # salt below the index floor while f.indexed shares the domain
    StreamDef(name="e.salted", domain="sim", derive="salted", salt=7),
    StreamDef(name="f.indexed", domain="sim", derive="indexed"),
    # never minted anywhere + a collision_note with no possible partner
    StreamDef(name="g.stale", domain="lonely", derive="raw",
              collision_note="justifies nothing"),
)
