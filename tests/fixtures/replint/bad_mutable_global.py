"""mutable-global-state: module containers written from functions."""

_CACHE: dict = {}
_SEEN = []
_FROZEN = ("a", "b")  # immutable: never tracked


def remember(key, value):
    _CACHE[key] = value


def mark(item):
    _SEEN.append(item)


def local_shadow():
    _CACHE = {}          # rebinding a local of the same name
    _CACHE["x"] = 1      # writes the local: no finding
    return _CACHE
