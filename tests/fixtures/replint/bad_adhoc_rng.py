"""Known-bad: RNG construction in a hot-path method (rule ``adhoc-rng``)."""
import numpy as np


class Controller:
    def __init__(self, seed):
        self.rng = np.random.default_rng(seed)  # ok: construction time

    def on_ack(self, pkt):
        jitter = np.random.default_rng(42)  # BAD: mints a stream per ack
        return jitter.random()
