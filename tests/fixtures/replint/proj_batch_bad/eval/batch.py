"""Known-bad batch layer: shares a mutable dict across cells, carries a
stale allowlist entry, and mints + drains an RNG stream in the batch
loop.  Parsed by the isolation-family tests, never imported."""

import numpy as np

from repro.eval.scenarios import build_scenario_simulation

SHARED_REGISTRY = {}

SHARED_IMMUTABLE_ALLOWLIST = (
    ("ghost_cache", "claims a binding no cell build actually receives"),
)


def build_cells(scenarios):
    rng = np.random.default_rng(0)  # minted in the batch layer
    cells = []
    for scenario in scenarios:
        jitter = rng.uniform()  # drained in the batch layer
        sim = build_scenario_simulation(scenario, SHARED_REGISTRY)
        cells.append((sim, jitter))
    return cells
