"""Known-bad kernel pool: drifted field table, coverage gaps, and an
out-of-place grow -- the compiled-pool-fields rule must flag all four.

Never imported; parsed by tests/test_analysis.py.
"""

# "checksum" is not a Packet slot and "ack_recovered" is missing.
POOL_FIELDS = ("flow_id", "seq", "send_time", "size_bytes",
               "arrival_time", "ack_time", "dropped", "drop_kind",
               "queue_delay", "ack_queue_delay", "hop", "reversing",
               "ack_dropped", "checksum")


class PacketPool:
    __slots__ = POOL_FIELDS + ("free", "capacity")

    def __init__(self, capacity=8):
        self.capacity = capacity
        self.flow_id = [0] * capacity
        self.seq = [0] * capacity
        # BUG: send_time never initialised -- no array backs the field.
        self.size_bytes = [0] * capacity
        self.arrival_time = [None] * capacity
        self.ack_time = [None] * capacity
        self.dropped = [False] * capacity
        self.drop_kind = [None] * capacity
        self.queue_delay = [0.0] * capacity
        self.ack_queue_delay = [0.0] * capacity
        self.hop = [0] * capacity
        self.reversing = [False] * capacity
        self.ack_dropped = [False] * capacity
        self.checksum = [0] * capacity
        self.free = list(range(capacity - 1, -1, -1))

    def grow(self):
        cap = self.capacity
        self.flow_id.extend([0] * cap)
        # BUG: rebuilds instead of extending -- hoisted references in
        # the fused loop would keep reading the abandoned array.
        self.seq = self.seq + [0] * cap
        self.free.extend(range(2 * cap - 1, cap - 1, -1))
        self.capacity = 2 * cap

    def alloc(self, flow_id, seq, send_time, size_bytes):
        idx = self.free.pop()
        self.flow_id[idx] = flow_id
        self.seq[idx] = seq
        # BUG: the remaining fields keep the recycled slot's stale state.
        return idx
