"""Known-bad: wrong-arity transmit() unpack (rule ``transmit-unpack``)."""


def forward(link, t):
    delivered, kind, depart = link.transmit(t)  # BAD: contract is a 4-tuple
    delivered, kind, depart, q_delay = link.transmit(t)  # ok
    return delivered, kind, depart, q_delay
