"""Known-bad: filesystem-order directory walks (rule ``unsorted-walk``)."""
import os
from pathlib import Path


def scan(directory):
    for name in os.listdir(directory):          # BAD: filesystem order
        print(name)
    files = list(Path(directory).glob("*.json"))  # BAD: filesystem order
    ok = sorted(Path(directory).rglob("*.py"))    # ok: sorted wrapper
    return files, ok
