"""rng-foreign-draw: draining another object's generator."""


class Scheduler:
    def __init__(self, link):
        self.link = link

    def jitter(self):
        # draining self.link's stream couples it to scheduler call order
        return self.link.rng.uniform(0.0, 1.0)


def loss_draw(link):
    return link.rng.random()
