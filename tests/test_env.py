"""Tests for the gym-style environments (repro.netsim.env)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NetworkParams, TRAINING_RANGES
from repro.netsim.env import (
    CongestionControlEnv,
    MoccEnv,
    RewardComponents,
    apply_action,
    components_from_stats,
)
from repro.netsim.sender import MonitorIntervalStats
from repro.netsim.traces import StepTrace

PARAMS = NetworkParams(bandwidth_mbps=4.0, latency_ms=30.0,
                       queue_packets=500, loss_rate=0.0)


class TestApplyAction:
    """Eq. 1: multiplicative rate adjustment."""

    def test_positive_action(self):
        assert apply_action(100.0, 1.0, 0.025) == pytest.approx(102.5)

    def test_negative_action(self):
        assert apply_action(100.0, -1.0, 0.025) == pytest.approx(100 / 1.025)

    def test_zero_action(self):
        assert apply_action(100.0, 0.0, 0.025) == 100.0

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(1.0, 1e4), action=st.floats(-5, 5))
    def test_positive_rate_preserved(self, rate, action):
        assert apply_action(rate, action, 0.025) > 0

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(1.0, 1e4), action=st.floats(0.01, 5))
    def test_inverse_symmetry(self, rate, action):
        """+a then -a returns to the original rate (Eq. 1 is reversible)."""
        up = apply_action(rate, action, 0.025)
        back = apply_action(up, -action, 0.025)
        assert back == pytest.approx(rate, rel=1e-9)

    @given(action=st.floats(-3, 3))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_action(self, action):
        assert (apply_action(100.0, action + 0.1, 0.025)
                > apply_action(100.0, action, 0.025))


class TestRewardComponents:
    def _stats(self, acked=50, sent=50, lost=0, mean_rtt=0.06):
        return MonitorIntervalStats(
            flow_id=0, start=0.0, end=1.0, sent=sent, acked=acked, lost=lost,
            mean_rtt=mean_rtt, min_rtt=mean_rtt, latency_gradient=0.0,
            capacity_pps=100.0, base_rtt=0.06, packet_bytes=1500, rate_pps=50.0)

    def test_perfect_interval(self):
        comps = components_from_stats(self._stats(acked=100, sent=100))
        assert comps.o_thr == pytest.approx(1.0)
        assert comps.o_lat == pytest.approx(1.0)
        assert comps.o_loss == pytest.approx(1.0)

    def test_half_utilization(self):
        comps = components_from_stats(self._stats(acked=50))
        assert comps.o_thr == pytest.approx(0.5)

    def test_latency_penalty(self):
        comps = components_from_stats(self._stats(mean_rtt=0.12))
        assert comps.o_lat == pytest.approx(0.5)

    def test_loss_penalty(self):
        comps = components_from_stats(self._stats(acked=50, sent=100, lost=50))
        assert comps.o_loss == pytest.approx(0.5)

    def test_no_acks(self):
        comps = components_from_stats(self._stats(acked=0, mean_rtt=None))
        assert comps.o_lat == 0.0

    def test_weighted(self):
        comps = RewardComponents(1.0, 0.5, 0.25)
        reward = comps.weighted([0.5, 0.3, 0.2])
        assert reward == pytest.approx(0.5 + 0.15 + 0.05)

    def test_components_bounded(self):
        comps = components_from_stats(self._stats(acked=1000, mean_rtt=0.001))
        assert 0.0 <= comps.o_thr <= 1.0
        assert 0.0 <= comps.o_lat <= 1.0


class TestCongestionControlEnv:
    def test_reset_returns_state(self):
        env = CongestionControlEnv(params=PARAMS, seed=0)
        obs = env.reset()
        assert obs.shape == (40,)

    def test_custom_history_length(self):
        env = CongestionControlEnv(params=PARAMS, history_length=4, seed=0)
        assert env.reset().shape == (16,)
        assert env.observation_dim == 16

    def test_step_before_reset_raises(self):
        env = CongestionControlEnv(params=PARAMS)
        with pytest.raises(RuntimeError):
            env.step(0.0)

    def test_episode_terminates(self):
        env = CongestionControlEnv(params=PARAMS, max_steps=5, seed=1)
        env.reset()
        done = False
        for i in range(5):
            _, _, done, _ = env.step(0.0)
        assert done

    def test_positive_actions_raise_rate(self):
        env = CongestionControlEnv(params=PARAMS, max_steps=50, seed=2)
        env.reset()
        _, _, _, info0 = env.step(0.0)
        for _ in range(20):
            _, _, _, info = env.step(1.0)
        assert info["rate_pps"] > info0["rate_pps"]

    def test_reward_components_in_range(self):
        env = CongestionControlEnv(params=PARAMS, max_steps=20, seed=3)
        env.reset()
        for _ in range(20):
            _, comps, _, _ = env.step(0.5)
            assert 0.0 <= comps.o_thr <= 1.0
            assert 0.0 <= comps.o_lat <= 1.0
            assert 0.0 <= comps.o_loss <= 1.0

    def test_randomized_reset_draws_new_conditions(self):
        env = CongestionControlEnv(ranges=TRAINING_RANGES, max_steps=4, seed=4)
        env.reset()
        p1 = env._active_params
        env.reset()
        p2 = env._active_params
        assert (p1.bandwidth_mbps, p1.latency_ms) != (p2.bandwidth_mbps, p2.latency_ms)

    def test_trace_override(self):
        env = CongestionControlEnv(trace=StepTrace(100.0, 200.0, 5.0),
                                   max_steps=5, seed=5)
        obs = env.reset()
        assert obs.shape == (40,)
        _, comps, _, info = env.step(0.0)
        assert info["stats"].capacity_pps in (100.0, 200.0)

    def test_deterministic_given_seed(self):
        def run():
            env = CongestionControlEnv(params=PARAMS, max_steps=10, seed=9)
            env.reset()
            rewards = []
            for _ in range(10):
                _, comps, _, _ = env.step(0.3)
                rewards.append(comps.o_thr)
            return rewards

        assert run() == run()


class TestMoccEnv:
    def test_reset_returns_obs_and_weights(self):
        env = MoccEnv(CongestionControlEnv(params=PARAMS, seed=0))
        obs, w = env.reset([0.8, 0.1, 0.1])
        assert obs.shape == (40,)
        np.testing.assert_allclose(w, [0.8, 0.1, 0.1])

    def test_invalid_weights_rejected(self):
        env = MoccEnv(CongestionControlEnv(params=PARAMS))
        with pytest.raises(ValueError):
            env.reset([0.8, 0.1])
        with pytest.raises(ValueError):
            env.reset([0.5, 0.5, 0.5])

    def test_reward_is_weighted_components(self):
        env = MoccEnv(CongestionControlEnv(params=PARAMS, max_steps=3, seed=1))
        env.reset([0.5, 0.3, 0.2])
        _, _, reward, comps, _, _ = env.step(0.0)
        assert reward == pytest.approx(comps.weighted([0.5, 0.3, 0.2]))

    def test_weight_dim(self):
        env = MoccEnv(CongestionControlEnv(params=PARAMS))
        assert env.weight_dim == 3

    def test_different_weights_change_reward_only(self):
        """Same seed/actions: weights change the reward, not the dynamics."""
        def run(weights):
            env = MoccEnv(CongestionControlEnv(params=PARAMS, max_steps=5, seed=2))
            env.reset(weights)
            comps_seen, rewards = [], []
            for _ in range(5):
                _, _, r, comps, _, _ = env.step(0.2)
                comps_seen.append(comps.as_array())
                rewards.append(r)
            return np.array(comps_seen), np.array(rewards)

        c1, r1 = run([0.8, 0.1, 0.1])
        c2, r2 = run([0.1, 0.8, 0.1])
        np.testing.assert_allclose(c1, c2)
        assert not np.allclose(r1, r2)
